//! Integration tests for the Chord protocol substrate driven through
//! the umbrella crate, including the paper's standing assumptions
//! (active backup, fast joins, tick-sized maintenance).

use autobal::chord::{NetConfig, Network};
use autobal::id::sha1::sha1_id_of_u64;
use autobal::stats::seeded_rng;
use autobal::Id;
use rand::Rng;

#[test]
fn lookups_agree_with_oracle_across_sizes() {
    for n in [2usize, 3, 10, 100] {
        let mut rng = seeded_rng(n as u64);
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        for k in 0..50u64 {
            let key = sha1_id_of_u64(k);
            let truth = net.owner_of(key).unwrap();
            let from = net.node_ids()[k as usize % n];
            assert_eq!(net.lookup(from, key).unwrap().owner, truth, "n={n} k={k}");
        }
    }
}

#[test]
fn hop_counts_scale_logarithmically() {
    let mut rng = seeded_rng(7);
    let mut mean_hops = Vec::new();
    for n in [64usize, 512] {
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        let stats = autobal::chord::routing::measure_hops(&mut net, 200, &mut rng);
        assert_eq!(stats.failed, 0);
        mean_hops.push(stats.mean());
    }
    // 8x more nodes must cost far less than 8x more hops.
    assert!(mean_hops[1] < mean_hops[0] * 3.0, "{mean_hops:?}");
}

#[test]
fn replication_survives_targeted_killing_of_loaded_nodes() {
    let mut rng = seeded_rng(8);
    let mut net = Network::bootstrap(NetConfig::default(), 40, &mut rng);
    for k in 0..400u64 {
        net.insert_key(sha1_id_of_u64(k));
    }
    net.maintenance_cycle();
    // Kill the three most-loaded nodes simultaneously.
    let mut by_load: Vec<(usize, Id)> = net
        .node_ids()
        .into_iter()
        .map(|id| (net.node(id).unwrap().load(), id))
        .collect();
    by_load.sort_unstable_by_key(|&(load, _)| std::cmp::Reverse(load));
    for &(_, id) in by_load.iter().take(3) {
        net.fail(id).unwrap();
    }
    for _ in 0..3 {
        net.maintenance_cycle();
    }
    assert_eq!(net.total_keys(), 400, "every key recovered from replicas");
    assert!(net.is_consistent());
}

#[test]
fn sustained_churn_with_traffic() {
    let mut rng = seeded_rng(9);
    let mut net = Network::bootstrap(NetConfig::default(), 32, &mut rng);
    for k in 0..200u64 {
        net.insert_key(sha1_id_of_u64(k));
    }
    net.maintenance_cycle();
    for round in 0..30 {
        // Random churn event.
        match rng.gen_range(0..3) {
            0 => {
                let ids = net.node_ids();
                if ids.len() > 8 {
                    net.fail(ids[rng.gen_range(0..ids.len())]).unwrap();
                }
            }
            1 => {
                let contact = net.node_ids()[0];
                net.join(Id::random(&mut rng), contact).unwrap();
            }
            _ => {
                let ids = net.node_ids();
                if ids.len() > 8 {
                    net.leave(ids[rng.gen_range(0..ids.len())]).unwrap();
                }
            }
        }
        net.maintenance_cycle();
        // Traffic continues to route mid-churn.
        let from = net.node_ids()[0];
        let key = sha1_id_of_u64(round);
        let res = net.lookup(from, key);
        assert!(res.is_ok(), "round {round}: lookup failed {res:?}");
    }
    for _ in 0..3 {
        net.maintenance_cycle();
    }
    assert_eq!(net.total_keys(), 200);
    assert!(net.is_consistent());
}

#[test]
fn successor_list_length_is_respected() {
    for len in [3usize, 10] {
        let cfg = NetConfig {
            successor_list_len: len,
            predecessor_list_len: len,
            replication_factor: len,
            ..NetConfig::default()
        };
        let mut rng = seeded_rng(10 + len as u64);
        let mut net = Network::bootstrap(cfg, 30, &mut rng);
        net.maintenance_cycle();
        for id in net.node_ids() {
            let node = net.node(id).unwrap();
            assert!(node.successors.len() <= len);
            assert!(node.predecessors.len() <= len);
            assert!(!node.successors.is_empty());
        }
    }
}

#[test]
fn graceful_leave_of_half_the_network() {
    let mut rng = seeded_rng(11);
    let mut net = Network::bootstrap(NetConfig::default(), 20, &mut rng);
    for k in 0..100u64 {
        net.insert_key(sha1_id_of_u64(k));
    }
    let ids = net.node_ids();
    for id in ids.iter().step_by(2) {
        net.leave(*id).unwrap();
    }
    assert_eq!(net.len(), 10);
    assert_eq!(net.total_keys(), 100);
    net.maintenance_cycle();
    assert!(net.is_consistent());
}

#[test]
fn message_counters_reflect_the_work_done() {
    let mut rng = seeded_rng(12);
    let mut net = Network::bootstrap(NetConfig::default(), 16, &mut rng);
    let before = net.stats.clone();
    assert_eq!(before.total(), 0, "bootstrap is free (oracle wiring)");
    for k in 0..20u64 {
        net.insert_key(sha1_id_of_u64(k));
    }
    net.maintenance_cycle();
    assert!(net.stats.stabilize >= 16);
    assert!(net.stats.replica_push > 0);
    let contact = net.node_ids()[0];
    let hops_before = net.stats.find_successor_hops;
    net.join(Id::random(&mut rng), contact).unwrap();
    assert!(net.stats.key_transfer > 0);
    assert!(net.stats.find_successor_hops >= hops_before);
}

/// Regression test: a node that inherits keys from a dead neighbor must
/// re-replicate them in the same maintenance cycle. If the push happens
/// before the promotion, a cascading failure (the inheritor dying the
/// next round) silently loses the inherited keys.
#[test]
fn cascading_failures_do_not_lose_inherited_keys() {
    let mut rng = seeded_rng(40);
    let mut net = Network::bootstrap(NetConfig::default(), 40, &mut rng);
    for k in 0..300u64 {
        net.insert_key(sha1_id_of_u64(k));
    }
    net.maintenance_cycle();
    for round in 0..25 {
        // Two failures + two joins per round, like a live swarm.
        for _ in 0..2 {
            let ids = net.node_ids();
            net.fail(ids[rng.gen_range(0..ids.len())]).unwrap();
        }
        for _ in 0..2 {
            let contact = net.node_ids()[0];
            net.join(Id::random(&mut rng), contact).unwrap();
        }
        net.maintenance_cycle();
        assert_eq!(
            net.total_keys(),
            300,
            "keys lost by round {round} — promotion must precede replica push"
        );
    }
    assert!(net.is_consistent());
}
