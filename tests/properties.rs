//! Property-based tests (proptest) on the core data structures and
//! invariants: identifier arithmetic, ring-arc geometry, SHA-1
//! streaming, ring task bookkeeping, statistics, and simulator
//! conservation laws.

use autobal::id::{ring, sha1, Id};
use autobal::sim::{Ring, Sim, SimConfig, StrategyKind};
use autobal::stats::{gini, jain_index, Summary};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = Id> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c)| Id::from_limbs(a, b, c))
}

proptest! {
    // ---- 160-bit arithmetic --------------------------------------

    #[test]
    fn add_sub_roundtrip(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        prop_assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
    }

    #[test]
    fn add_is_commutative(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn bytes_roundtrip(a in arb_id()) {
        prop_assert_eq!(Id::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_id()) {
        prop_assert_eq!(Id::from_hex(&a.to_hex()), Some(a));
    }

    #[test]
    fn shl_shr_inverse_for_small_values(v in any::<u64>(), n in 0u32..96) {
        // Shifting a 64-bit value left then right loses nothing while it
        // stays inside 160 bits.
        let id = Id::from(v);
        prop_assert_eq!(id.shl(n).shr(n), id);
    }

    // ---- ring-arc geometry ---------------------------------------

    #[test]
    fn complementary_arcs_partition(a in arb_id(), b in arb_id(), x in arb_id()) {
        prop_assume!(a != b);
        prop_assert!(ring::in_arc(a, b, x) ^ ring::in_arc(b, a, x));
    }

    #[test]
    fn arc_contains_its_endpoint(a in arb_id(), b in arb_id()) {
        prop_assert!(ring::in_arc(a, b, b));
        prop_assert!(!ring::in_open_arc(a, b, b));
    }

    #[test]
    fn midpoint_lies_inside_the_arc(a in arb_id(), b in arb_id()) {
        prop_assume!(a != b);
        let d = ring::distance(a, b);
        prop_assume!(d > Id::ONE); // arcs of width 1 have no interior
        let m = ring::midpoint(a, b);
        prop_assert!(ring::in_arc(a, b, m));
        // The midpoint bisects: both halves within one unit of each other.
        let left = ring::distance(a, m);
        let right = ring::distance(m, b);
        let diff = if left > right { left.wrapping_sub(right) } else { right.wrapping_sub(left) };
        prop_assert!(diff <= Id::ONE);
    }

    #[test]
    fn distance_triangle_identity(a in arb_id(), b in arb_id(), c in arb_id()) {
        // Walking a→b→c clockwise covers the same ground as a→c plus
        // possibly whole laps; modulo 2^160 they are equal.
        let ab = ring::distance(a, b);
        let bc = ring::distance(b, c);
        let ac = ring::distance(a, c);
        prop_assert_eq!(ab.wrapping_add(bc), ac);
    }

    // ---- SHA-1 ----------------------------------------------------

    #[test]
    fn sha1_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                     split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = sha1::Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha1::digest(&data));
    }

    #[test]
    fn sha1_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(sha1::digest(&data), sha1::digest(&data));
    }

    // ---- statistics ------------------------------------------------

    #[test]
    fn gini_bounds_hold(v in proptest::collection::vec(0u64..10_000, 1..200)) {
        let g = gini(&v);
        prop_assert!((0.0..1.0).contains(&g), "gini {}", g);
    }

    #[test]
    fn jain_bounds_hold(v in proptest::collection::vec(0u64..10_000, 1..200)) {
        let j = jain_index(&v);
        let n = v.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }

    #[test]
    fn summary_orderings(v in proptest::collection::vec(0u64..100_000, 1..300)) {
        let s = Summary::from_u64s(&v).unwrap();
        prop_assert!(s.min as f64 <= s.median);
        prop_assert!(s.median <= s.max as f64);
        prop_assert!(s.p25 <= s.median && s.median <= s.p75);
        prop_assert!(s.p75 <= s.p95 && s.p95 <= s.p99);
        prop_assert!(s.min as f64 <= s.mean && s.mean <= s.max as f64);
        prop_assert_eq!(s.total, v.iter().sum::<u64>());
    }

    // ---- ring task bookkeeping -------------------------------------

    #[test]
    fn ring_insert_remove_conserves_tasks(
        vnode_seeds in proptest::collection::vec(any::<u64>(), 2..20),
        task_seeds in proptest::collection::vec(any::<u64>(), 0..200),
        split_seed in any::<u64>(),
    ) {
        let mut ring = Ring::new();
        let mut inserted = 0usize;
        for (i, s) in vnode_seeds.iter().enumerate() {
            if ring.insert_vnode(sha1::sha1_id_of_u64(*s), i).is_ok() {
                inserted += 1;
            }
        }
        prop_assume!(inserted >= 2);
        let keys: Vec<Id> = task_seeds.iter().map(|&s| sha1::sha1_id_of_u64(s ^ 0xdead)).collect();
        let total = keys.len() as u64;
        ring.assign_tasks(keys);
        prop_assert_eq!(ring.total_tasks(), total);
        ring.check_invariants().unwrap();

        // Split somewhere new, then remove it again.
        let pos = sha1::sha1_id_of_u64(split_seed ^ 0xbeef);
        if ring.insert_vnode(pos, 99).is_ok() {
            prop_assert_eq!(ring.total_tasks(), total);
            ring.check_invariants().unwrap();
            ring.remove_vnode(pos).unwrap();
        }
        prop_assert_eq!(ring.total_tasks(), total);
        ring.check_invariants().unwrap();
    }

    // ---- Chord protocol --------------------------------------------

    #[test]
    fn chord_lookup_always_agrees_with_oracle(
        n in 2usize..40,
        net_seed in any::<u64>(),
        key_seeds in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        use autobal::chord::{NetConfig, Network};
        let mut rng = autobal::stats::seeded_rng(net_seed);
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        let ids = net.node_ids();
        for (i, ks) in key_seeds.iter().enumerate() {
            let key = sha1::sha1_id_of_u64(*ks);
            let truth = net.owner_of(key).unwrap();
            let from = ids[i % ids.len()];
            let res = net.lookup(from, key).unwrap();
            prop_assert_eq!(res.owner, truth);
            prop_assert_eq!(res.path.first(), Some(&from));
        }
    }

    #[test]
    fn chord_join_preserves_key_placement(
        n in 2usize..20,
        seed in any::<u64>(),
        newcomer_seed in any::<u64>(),
    ) {
        use autobal::chord::{NetConfig, Network};
        let mut rng = autobal::stats::seeded_rng(seed);
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        for k in 0..50u64 {
            net.insert_key(sha1::sha1_id_of_u64(k));
        }
        let newcomer = sha1::sha1_id_of_u64(newcomer_seed);
        prop_assume!(!net.contains(newcomer));
        let contact = net.node_ids()[0];
        net.join(newcomer, contact).unwrap();
        prop_assert_eq!(net.total_keys(), 50);
        prop_assert!(net.is_consistent());
    }
}

proptest! {
    // Fewer cases: each case is a complete simulation run.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- simulator conservation law --------------------------------

    #[test]
    fn simulation_conserves_tasks(
        nodes in 5usize..40,
        tasks in 100u64..2_000,
        strat_idx in 0usize..6,
        seed in any::<u64>(),
    ) {
        let strategy = StrategyKind::ALL[strat_idx];
        let cfg = SimConfig {
            nodes,
            tasks,
            strategy,
            churn_rate: if strategy == StrategyKind::Churn { 0.02 } else { 0.0 },
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, seed).run();
        prop_assert!(res.completed);
        prop_assert_eq!(res.work_per_tick.iter().sum::<u64>(), tasks);
        prop_assert!(res.runtime_factor >= 0.99, "cannot beat ideal: {}", res.runtime_factor);
    }
}

proptest! {
    // Event-driven overlay and KV layer properties (moderate case count:
    // each case builds a network).
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn eventnet_lookups_agree_with_oracle(
        n in 2usize..64,
        seed in any::<u64>(),
        key_seeds in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        use autobal::chord::{EventConfig, EventNet};
        let mut rng = autobal::stats::seeded_rng(seed);
        let mut net = EventNet::bootstrap(EventConfig::default(), n, &mut rng);
        let origin = net.node_ids()[0];
        let mut expect = Vec::new();
        for ks in &key_seeds {
            let key = sha1::sha1_id_of_u64(*ks);
            let truth = net.owner_of(key).unwrap();
            let req = net.lookup(origin, key).unwrap();
            expect.push((req, truth));
        }
        net.run_until(30_000);
        let done = net.take_completed();
        for (req, truth) in expect {
            let hit = done.iter().find(|l| l.req == req);
            prop_assert!(hit.is_some(), "lookup {req} never completed");
            prop_assert_eq!(hit.unwrap().owner, Some(truth));
        }
    }

    #[test]
    fn kv_roundtrip_under_random_membership_changes(
        n in 4usize..24,
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        use autobal::chord::{NetConfig, Network};
        use rand::Rng;
        let mut rng = autobal::stats::seeded_rng(seed);
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        let from = net.node_ids()[0];
        for i in 0..30u64 {
            net.put(from, sha1::sha1_id_of_u64(i), bytes::Bytes::from(vec![i as u8])).unwrap();
        }
        net.maintenance_cycle();
        for op in ops {
            match op % 3 {
                0 => {
                    let ids = net.node_ids();
                    if ids.len() > 3 {
                        net.fail(ids[rng.gen_range(0..ids.len())]).unwrap();
                    }
                }
                1 => {
                    let contact = net.node_ids()[0];
                    let _ = net.join(Id::random(&mut rng), contact);
                }
                _ => {
                    let ids = net.node_ids();
                    if ids.len() > 3 {
                        let _ = net.leave(ids[rng.gen_range(0..ids.len())]);
                    }
                }
            }
            net.maintenance_cycle();
        }
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        let from = net.node_ids()[0];
        for i in 0..30u64 {
            let got = net.get(from, sha1::sha1_id_of_u64(i)).unwrap();
            prop_assert_eq!(got, Some(bytes::Bytes::from(vec![i as u8])), "value {} lost", i);
        }
    }
}
