//! Tests for the §VII future-work extensions: strength-aware invitation
//! and chosen-ID (task-median) Sybil placement.

use autobal::sim::{Heterogeneity, SimConfig, StrategyKind, WorkMeasurement};
use autobal::workload::trials::run_and_summarize;

fn base(strategy: StrategyKind) -> SimConfig {
    SimConfig {
        nodes: 150,
        tasks: 15_000,
        strategy,
        ..SimConfig::default()
    }
}

/// Strength-aware helper selection must not hurt homogeneous networks
/// (all strengths equal ⇒ identical behavior modulo tie-breaks).
#[test]
fn strength_aware_is_neutral_when_homogeneous() {
    let vanilla = run_and_summarize(&base(StrategyKind::Invitation), 6, 1);
    let aware = run_and_summarize(
        &SimConfig {
            strength_aware_invitation: true,
            ..base(StrategyKind::Invitation)
        },
        6,
        1,
    );
    let diff = (vanilla.mean_runtime_factor - aware.mean_runtime_factor).abs();
    assert!(diff < 0.6, "homogeneous difference should be noise: {diff}");
}

/// The paper's §VII hypothesis: considering node strength should help
/// heterogeneous strength-consuming networks, where the published
/// strategy "fared much worse". Measured effect is small (eligible
/// helpers are idle nodes, and strong nodes idle sooner, so the vanilla
/// rule already favors them indirectly); assert it does not regress and
/// trends helpful across seeds.
#[test]
fn strength_aware_invitation_does_not_hurt_heterogeneous_networks() {
    let het = SimConfig {
        heterogeneity: Heterogeneity::Heterogeneous,
        work_measurement: WorkMeasurement::StrengthPerTick,
        ..base(StrategyKind::Invitation)
    };
    let mut vanilla_sum = 0.0;
    let mut aware_sum = 0.0;
    for seed in [2u64, 12, 22] {
        vanilla_sum += run_and_summarize(&het, 8, seed).mean_runtime_factor;
        aware_sum += run_and_summarize(
            &SimConfig {
                strength_aware_invitation: true,
                ..het.clone()
            },
            8,
            seed,
        )
        .mean_runtime_factor;
    }
    assert!(
        aware_sum < vanilla_sum + 0.5,
        "strength-aware {aware_sum} should not regress vs vanilla {vanilla_sum}"
    );
}

/// Chosen-ID placement guarantees each targeted split takes half the
/// victim's remaining work, so smart neighbor injection should improve
/// (or at least not regress) versus midpoint placement.
#[test]
fn chosen_ids_do_not_hurt_smart_neighbor() {
    let vanilla = run_and_summarize(&base(StrategyKind::SmartNeighbor), 10, 3);
    let chosen = run_and_summarize(
        &SimConfig {
            chosen_ids: true,
            ..base(StrategyKind::SmartNeighbor)
        },
        10,
        3,
    );
    assert!(
        chosen.mean_runtime_factor <= vanilla.mean_runtime_factor + 0.3,
        "chosen {} vs vanilla {}",
        chosen.mean_runtime_factor,
        vanilla.mean_runtime_factor
    );
}

/// Chosen-ID placement helps the invitation strategy, whose victims are
/// by definition heavily loaded.
#[test]
fn chosen_ids_help_invitation() {
    let vanilla = run_and_summarize(&base(StrategyKind::Invitation), 10, 4);
    let chosen = run_and_summarize(
        &SimConfig {
            chosen_ids: true,
            ..base(StrategyKind::Invitation)
        },
        10,
        4,
    );
    assert!(
        chosen.mean_runtime_factor <= vanilla.mean_runtime_factor + 0.2,
        "chosen {} vs vanilla {}",
        chosen.mean_runtime_factor,
        vanilla.mean_runtime_factor
    );
}

/// Both extensions still conserve every task.
#[test]
fn extensions_conserve_tasks() {
    for cfg in [
        SimConfig {
            chosen_ids: true,
            ..base(StrategyKind::SmartNeighbor)
        },
        SimConfig {
            strength_aware_invitation: true,
            heterogeneity: Heterogeneity::Heterogeneous,
            work_measurement: WorkMeasurement::StrengthPerTick,
            ..base(StrategyKind::Invitation)
        },
    ] {
        let s = run_and_summarize(&cfg, 3, 5);
        assert_eq!(s.incomplete, 0);
    }
}

/// Old serialized configs (without the new fields) still parse.
#[test]
fn legacy_config_json_still_parses() {
    let legacy = r#"{
        "nodes": 10, "tasks": 100, "strategy": "None",
        "churn_rate": 0.0, "sybil_threshold": 0, "max_sybils": 5,
        "num_successors": 5, "heterogeneity": "Homogeneous",
        "work_measurement": "OnePerTick", "check_interval": 5,
        "overload_factor": 2.0, "snapshot_ticks": [], "max_ticks": null
    }"#;
    let cfg: SimConfig = serde_json::from_str(legacy).unwrap();
    assert!(!cfg.strength_aware_invitation);
    assert!(!cfg.chosen_ids);
}

/// Session churn drives the active population toward
/// `up/(up+down)` of the total and still finishes the job.
#[test]
fn session_churn_reaches_equilibrium_and_completes() {
    use autobal::sim::ChurnModel;
    let cfg = SimConfig {
        nodes: 200,
        tasks: 40_000,
        strategy: StrategyKind::Churn,
        churn_model: ChurnModel::Sessions {
            mean_uptime: 60.0,
            mean_downtime: 20.0,
        },
        ..SimConfig::default()
    };
    let res = autobal::sim::Sim::new(cfg, 77).run();
    assert!(res.completed);
    assert_eq!(res.work_per_tick.iter().sum::<u64>(), 40_000);
    // Population 400 total; equilibrium active ≈ 400·(60/80) = 300.
    let active = res.final_active_workers as f64;
    assert!(
        (200.0..=390.0).contains(&active),
        "active workers at end: {active}"
    );
    // Churn events actually happened in both directions.
    assert!(res.messages.churn_leaves > 50);
    assert!(res.messages.churn_joins > 50);
}

/// Asymmetric sessions with long downtime shrink the network and slow
/// the job relative to symmetric churn at the same uptime.
#[test]
fn long_downtime_hurts_runtime() {
    use autobal::sim::ChurnModel;
    let mk = |down: f64| SimConfig {
        nodes: 150,
        tasks: 15_000,
        strategy: StrategyKind::Churn,
        churn_model: ChurnModel::Sessions {
            mean_uptime: 50.0,
            mean_downtime: down,
        },
        ..SimConfig::default()
    };
    let quick = autobal::workload::trials::run_and_summarize(&mk(10.0), 6, 3);
    let slow = autobal::workload::trials::run_and_summarize(&mk(500.0), 6, 3);
    assert!(
        quick.mean_runtime_factor < slow.mean_runtime_factor,
        "short downtime {} should beat long downtime {}",
        quick.mean_runtime_factor,
        slow.mean_runtime_factor
    );
}

/// The classic static virtual-servers baseline: log₂ n positions per
/// worker flatten the workload and cut the no-strategy runtime factor
/// dramatically — the setup-time alternative to the paper's dynamic
/// Sybils.
#[test]
fn static_virtual_servers_flatten_the_baseline() {
    let plain = SimConfig {
        nodes: 200,
        tasks: 20_000,
        ..SimConfig::default()
    };
    let vs = SimConfig {
        virtual_nodes_per_worker: 8, // ≈ log2(200)
        ..plain.clone()
    };
    let base = autobal::sim::Sim::new(plain, 11).run();
    let flat = autobal::sim::Sim::new(vs, 11).run();
    assert!(flat.completed);
    assert_eq!(flat.work_per_tick.iter().sum::<u64>(), 20_000);
    assert!(
        flat.runtime_factor < base.runtime_factor / 2.0,
        "virtual servers {} should crush the plain baseline {}",
        flat.runtime_factor,
        base.runtime_factor
    );
    // And they combine with churn without losing tasks.
    let vs_churn = SimConfig {
        virtual_nodes_per_worker: 4,
        strategy: StrategyKind::Churn,
        churn_rate: 0.02,
        nodes: 100,
        tasks: 5_000,
        ..SimConfig::default()
    };
    let r = autobal::sim::Sim::new(vs_churn, 12).run();
    assert!(r.completed);
    assert_eq!(r.work_per_tick.iter().sum::<u64>(), 5_000);
}

/// Static virtual servers and random injection stack: injection still
/// helps from a flattened start, approaching the ideal runtime.
#[test]
fn virtual_servers_plus_random_injection_approach_ideal() {
    let cfg = SimConfig {
        nodes: 150,
        tasks: 15_000,
        virtual_nodes_per_worker: 4,
        strategy: StrategyKind::RandomInjection,
        ..SimConfig::default()
    };
    let res = autobal::sim::Sim::new(cfg, 13).run();
    assert!(res.completed);
    assert!(
        res.runtime_factor < 1.75,
        "stacked balancing factor {}",
        res.runtime_factor
    );
}
