//! Integration tests for the `autobal-cli` binary, driven as a real
//! subprocess (cargo exposes the built path via `CARGO_BIN_EXE_*`).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autobal-cli"))
}

#[test]
fn run_subcommand_reports_a_factor() {
    let out = cli()
        .args([
            "run",
            "--nodes",
            "50",
            "--tasks",
            "2000",
            "--strategy",
            "random",
            "--trials",
            "3",
            "--seed",
            "7",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("runtime factor"), "{stdout}");
    assert!(stdout.contains("random | 50 nodes, 2000 tasks"));
}

#[test]
fn json_output_is_parseable() {
    let out = cli()
        .args([
            "run",
            "--nodes",
            "40",
            "--tasks",
            "1000",
            "--strategy",
            "churn",
            "--churn",
            "0.02",
            "--trials",
            "2",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON on --json");
    assert_eq!(v["strategy"], "churn");
    assert_eq!(v["nodes"], 40);
    assert!(v["mean_runtime_factor"].as_f64().unwrap() > 0.9);
    assert_eq!(v["incomplete"], 0);
}

#[test]
fn strategies_subcommand_lists_all() {
    let out = cli().arg("strategies").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for s in [
        "none",
        "churn",
        "random",
        "neighbor",
        "smart",
        "invitation",
        "oracle",
    ] {
        assert!(stdout.contains(s), "missing {s} in {stdout}");
    }
}

#[test]
fn spec_subcommand_runs_a_json_experiment() {
    let dir = std::env::temp_dir().join("autobal_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("spec.json");
    let spec = autobal::workload::ExperimentSpec::new(
        "cli-spec-test",
        autobal::sim::SimConfig {
            nodes: 30,
            tasks: 600,
            strategy: autobal::sim::StrategyKind::Invitation,
            ..autobal::sim::SimConfig::default()
        },
        2,
        11,
    );
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let out = cli()
        .args(["spec", spec_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("experiment: cli-spec-test"));
    assert!(stdout.contains("invitation | 30 nodes, 600 tasks"));
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = cli().args(["run", "--strategy", "bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));

    let out = cli()
        .args(["spec", "/nonexistent/path.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn invalid_config_is_rejected_cleanly() {
    let out = cli()
        .args(["run", "--nodes", "0", "--tasks", "10"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid config"));
}
