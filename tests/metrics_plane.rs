//! The streaming metrics plane, tested end to end across substrates:
//! the incremental Fenwick-backed fairness statistics are bit-equal to
//! the batch recompute under arbitrary op soups, same-seed metrics
//! JSONL is byte-identical and independent of harness thread count on
//! all three substrates, the committed golden fixture pins the sample
//! wire schema, and every dump renders a valid Prometheus exposition.

use autobal::event_sim::{run_event_sim, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal::sim::{Sim, SimConfig, StrategyKind};
use autobal_metrics::expo::{render_exposition, validate_exposition};
use autobal_metrics::names as metric_names;
use autobal_metrics::sample::{parse_jsonl, timeseries_csv, to_jsonl, validate_samples};
use autobal_metrics::LoadDist;
use proptest::prelude::*;
use rayon::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 41;

fn oracle_cfg() -> SimConfig {
    SimConfig {
        nodes: 16,
        tasks: 800,
        strategy: StrategyKind::RandomInjection,
        check_interval: 1,
        churn_rate: 0.02,
        record_metrics: true,
        metrics_interval: Some(1),
        metrics_ring: true,
        ..SimConfig::default()
    }
}

fn chord_cfg() -> ProtocolSimConfig {
    ProtocolSimConfig {
        nodes: 16,
        tasks: 800,
        strategy: StrategyKind::RandomInjection,
        check_interval: 1,
        record_metrics: true,
        metrics_interval: Some(1),
        metrics_ring: true,
        ..ProtocolSimConfig::default()
    }
}

fn oracle_jsonl(seed: u64) -> String {
    to_jsonl(&Sim::new(oracle_cfg(), seed).run().metrics)
}

fn chord_jsonl(seed: u64) -> String {
    to_jsonl(&run_protocol_sim(&chord_cfg(), seed).metrics)
}

fn event_jsonl(seed: u64) -> String {
    let cfg = EventSimConfig {
        proto: chord_cfg(),
        ..EventSimConfig::default()
    };
    to_jsonl(&run_event_sim(&cfg, seed).metrics)
}

/// One mutation of the tracked load multiset, mirroring what the
/// simulators do to it: a join inserts a worker's load, a crash or
/// churn leave removes one, task/transfer movement updates in place.
#[derive(Debug, Clone)]
enum Op {
    Join(u16),
    Leave(usize),
    Crash(usize),
    Update(usize, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u8>(), any::<usize>(), any::<u16>()).prop_map(|(which, i, v)| match which % 4 {
        0 => Op::Join(v),
        1 => Op::Leave(i),
        2 => Op::Crash(i),
        _ => Op::Update(i, v),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole contract: after ANY churn/join/crash op soup, every
    /// aggregate the incremental structure reports — including the two
    /// floats, compared bit-for-bit — equals a from-scratch batch
    /// recompute over the surviving loads.
    #[test]
    fn incremental_stats_match_batch_under_op_soup(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut dist = LoadDist::new();
        let mut mirror: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Join(v) => {
                    dist.insert(v as u64);
                    mirror.push(v as u64);
                }
                Op::Leave(i) | Op::Crash(i) if !mirror.is_empty() => {
                    let v = mirror.swap_remove(i % mirror.len());
                    dist.remove(v);
                }
                Op::Update(i, new) if !mirror.is_empty() => {
                    let at = i % mirror.len();
                    dist.update(mirror[at], new as u64);
                    mirror[at] = new as u64;
                }
                _ => {}
            }
        }
        let mut sorted = mirror.clone();
        sorted.sort_unstable();
        let total: u128 = sorted.iter().map(|&v| v as u128).sum();
        let weighted: u128 = sorted.iter().enumerate().map(|(i, &v)| (i as u128 + 1) * v as u128).sum();
        prop_assert_eq!(dist.len() as usize, sorted.len());
        prop_assert_eq!(dist.total(), total);
        prop_assert_eq!(dist.weighted(), weighted);
        prop_assert_eq!(dist.max(), sorted.last().copied().unwrap_or(0));
        prop_assert_eq!(
            dist.gini().to_bits(),
            autobal::stats::fairness::gini_sorted(&sorted).to_bits(),
            "gini drifted from the batch recompute"
        );
        prop_assert_eq!(
            dist.imbalance().to_bits(),
            autobal::stats::fairness::imbalance_sorted(&sorted).to_bits(),
            "imbalance drifted from the batch recompute"
        );
        for p in [50u64, 90, 99] {
            prop_assert_eq!(
                dist.percentile(p),
                autobal::stats::fairness::percentile_sorted(&sorted, p),
                "p{} drifted", p
            );
        }
    }
}

#[test]
fn same_seed_metrics_are_byte_identical_on_all_substrates() {
    for (name, dump) in [
        ("oracle", oracle_jsonl as fn(u64) -> String),
        ("chord", chord_jsonl),
        ("event", event_jsonl),
    ] {
        let a = dump(SEED);
        let b = dump(SEED);
        assert!(!a.is_empty(), "{name}: no samples recorded");
        assert_eq!(a, b, "{name}: metrics JSONL must be byte-stable");
        let samples = parse_jsonl(&a).expect("samples parse");
        validate_samples(&samples).expect("samples validate");
        assert_eq!(to_jsonl(&samples), a, "{name}: parse/serialize round-trips");
    }
}

#[test]
fn metrics_bytes_do_not_depend_on_thread_count() {
    // The sample stream is integer-only and stamped from the virtual
    // clock, so harness parallelism cannot move a byte: the same four
    // seeded runs, executed serially and on the rayon pool, must agree
    // on every substrate.
    for dump in [oracle_jsonl as fn(u64) -> String, chord_jsonl, event_jsonl] {
        let seeds: Vec<u64> = (0..4).map(|i| SEED + i).collect();
        let serial: Vec<String> = seeds.iter().map(|&s| dump(s)).collect();
        let parallel: Vec<String> = seeds.into_par_iter().map(dump).collect();
        assert_eq!(serial, parallel, "thread count leaked into metrics bytes");
    }
}

#[test]
fn final_sample_agrees_with_the_run_summary() {
    let run = run_protocol_sim(&chord_cfg(), SEED);
    let last = run.metrics.last().expect("at least one sample");
    assert_eq!(
        last.counter(metric_names::TICKS),
        Some(run.ticks),
        "ticks counter disagrees with the run result"
    );
    assert_eq!(
        last.gauge(metric_names::TASKS_REMAINING),
        Some(0),
        "completed run must sample an empty backlog"
    );
    assert!(last.counter(metric_names::TASKS_DONE).unwrap_or(0) >= 800);
    assert!(!last.ring.is_empty(), "metrics_ring must record ring slots");
}

#[test]
fn golden_metrics_pins_the_sample_schema() {
    // A small pinned run whose metrics JSONL is committed at
    // `tests/data/golden_metrics.jsonl`. This is also the lint rule T
    // anchor for the metric-name vocabulary: the registry emits every
    // declared series in every sample, so any name change moves these
    // bytes. Regenerate deliberately with:
    //     UPDATE_GOLDEN=1 cargo test --test metrics_plane golden
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_metrics.jsonl");
    let fresh = {
        let res = Sim::new(
            SimConfig {
                nodes: 6,
                tasks: 60,
                strategy: StrategyKind::RandomInjection,
                check_interval: 1,
                record_metrics: true,
                metrics_interval: Some(1),
                metrics_ring: true,
                ..SimConfig::default()
            },
            0x601D,
        )
        .run();
        to_jsonl(&res.metrics)
    };
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &fresh).expect("write golden");
    }
    let committed = std::fs::read_to_string(&path).expect("golden fixture committed");
    assert_eq!(
        fresh, committed,
        "metrics wire format drifted from the golden fixture; \
         regenerate with UPDATE_GOLDEN=1 if the change is intentional"
    );

    // The fixture honors the schema and spans the registry vocabulary.
    let samples = parse_jsonl(&committed).expect("golden parses");
    validate_samples(&samples).expect("golden validates");
    let first = samples.first().expect("nonempty");
    for &(name, kind, _) in autobal_metrics::names::ALL {
        let present = match kind {
            autobal_metrics::registry::Kind::Counter => first.counter(name).is_some(),
            autobal_metrics::registry::Kind::Gauge => first.gauge(name).is_some(),
            autobal_metrics::registry::Kind::Histogram => first.hist(name).is_some(),
        };
        assert!(present, "metric `{name}` missing from the golden fixture");
    }
}

#[test]
fn every_dump_renders_a_valid_exposition() {
    for (name, text) in [
        ("oracle", oracle_jsonl(SEED)),
        ("chord", chord_jsonl(SEED)),
        ("event", event_jsonl(SEED)),
    ] {
        let samples = parse_jsonl(&text).expect("samples parse");
        let last = samples.last().expect("nonempty");
        let expo = render_exposition(last);
        validate_exposition(&expo).unwrap_or_else(|e| panic!("{name}: invalid exposition: {e}"));
        // And the CSV derivation covers every sample.
        let csv = timeseries_csv(&samples);
        assert_eq!(csv.lines().count(), samples.len() + 1, "{name}: csv rows");
    }
}
