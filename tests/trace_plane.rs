//! The unified telemetry plane, tested end to end across substrates:
//! same-seed traces are byte-identical, trace bytes do not depend on
//! how many threads the harness runs (`--test-threads=1` vs default),
//! the committed golden fixture pins the wire schema, and the
//! `autobal-trace`-style diff reports the first causal divergence
//! between the oracle and Chord substrates with worker and tick.

use autobal::chord::EventConfig;
use autobal::event_sim::{run_event_sim, run_event_sim_with_placement, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, run_protocol_sim_with_placement, ProtocolSimConfig};
use autobal::sim::{Sim, SimConfig, StrategyKind};
use autobal::stats::rng::{domains, substream, DetRng};
use autobal::Id;
use autobal_telemetry::{
    check_framing, diff_traces, parse_jsonl, render_divergence, summarize, to_jsonl,
    validate_jsonl, Divergence, TraceBody,
};
use rayon::prelude::*;
use std::path::PathBuf;

const NODES: usize = 16;
const TASKS: u64 = 800;
const SEED: u64 = 41;

/// The `tests/differential.rs` starting conditions: half the ring
/// starts empty, so the first check tick produces decisions on
/// bit-identical local views.
fn placement() -> (Vec<Id>, Vec<Id>) {
    let mut rng: DetRng = substream(0xD1FF, 0, domains::PLACEMENT);
    let mut ids: Vec<Id> = Vec::new();
    while ids.len() < NODES {
        let id = Id::random(&mut rng);
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    let mut sorted = ids.clone();
    sorted.sort();
    let loaded: Vec<Id> = sorted.iter().copied().step_by(2).collect();
    let owner = |key: Id| -> Id {
        sorted
            .iter()
            .copied()
            .find(|&n| key <= n)
            .unwrap_or(sorted[0])
    };
    let mut keys = Vec::new();
    while (keys.len() as u64) < TASKS {
        let k = Id::random(&mut rng);
        if loaded.contains(&owner(k)) {
            keys.push(k);
        }
    }
    (ids, keys)
}

fn oracle_cfg() -> SimConfig {
    SimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: StrategyKind::RandomInjection,
        check_interval: 1,
        record_trace: true,
        ..SimConfig::default()
    }
}

fn oracle_jsonl(seed: u64) -> String {
    let (ids, keys) = placement();
    let res = Sim::with_placement(oracle_cfg(), seed, ids, keys).run();
    to_jsonl(res.trace.records())
}

fn chord_jsonl(seed: u64) -> String {
    let (ids, keys) = placement();
    let res = run_protocol_sim_with_placement(
        &ProtocolSimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_trace: true,
            ..ProtocolSimConfig::default()
        },
        seed,
        ids,
        keys,
    );
    to_jsonl(res.trace.records())
}

#[test]
fn same_seed_traces_are_byte_identical_on_both_substrates() {
    let a = oracle_jsonl(SEED);
    let b = oracle_jsonl(SEED);
    assert!(!a.is_empty());
    assert_eq!(a, b, "oracle trace must be byte-stable across runs");

    let c = chord_jsonl(SEED);
    let d = chord_jsonl(SEED);
    assert!(!c.is_empty());
    assert_eq!(c, d, "chord trace must be byte-stable across runs");

    // Both dumps are well-formed on the wire and well-framed in memory.
    for text in [&a, &c] {
        let n = validate_jsonl(text).expect("trace validates against the schema");
        let records = parse_jsonl(text).expect("trace parses");
        assert_eq!(records.len(), n);
        check_framing(&records).expect("trace is well-framed");
        assert_eq!(to_jsonl(&records), *text, "parse/serialize round-trips");
    }
}

#[test]
fn trace_bytes_do_not_depend_on_thread_count() {
    // The recorder stamps virtual time from a single-threaded event
    // loop, so the bytes cannot depend on scheduling — this is what
    // makes `--test-threads=1` and the default parallel harness agree.
    // Strongest in-process form: the same four seeded runs, executed
    // serially and on the rayon pool, produce identical dumps.
    let seeds: Vec<u64> = (0..4).map(|i| SEED + i).collect();
    let serial: Vec<String> = seeds.iter().map(|&s| oracle_jsonl(s)).collect();
    let parallel: Vec<String> = seeds.into_par_iter().map(oracle_jsonl).collect();
    assert_eq!(serial, parallel, "thread count leaked into trace bytes");
}

#[test]
fn golden_trace_pins_the_wire_schema() {
    // A small pinned run whose JSONL is committed at
    // `tests/data/golden_trace.jsonl`. Any schema or determinism drift
    // shows up as a byte diff here. Regenerate deliberately with:
    //     UPDATE_GOLDEN=1 cargo test --test trace_plane golden
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_trace.jsonl");
    let fresh = {
        let res = Sim::new(
            SimConfig {
                nodes: 6,
                tasks: 60,
                strategy: StrategyKind::RandomInjection,
                check_interval: 1,
                record_trace: true,
                ..SimConfig::default()
            },
            0x601D,
        )
        .run();
        to_jsonl(res.trace.records())
    };
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &fresh).expect("write golden");
    }
    let committed = std::fs::read_to_string(&path).expect("golden fixture committed");
    assert_eq!(
        fresh, committed,
        "trace wire format drifted from the golden fixture; \
         regenerate with UPDATE_GOLDEN=1 if the change is intentional"
    );

    // The fixture itself honors the schema and the framing invariants.
    validate_jsonl(&committed).expect("golden validates");
    let records = parse_jsonl(&committed).expect("golden parses");
    check_framing(&records).expect("golden is well-framed");
    assert!(matches!(
        records.first().map(|r| &r.body),
        Some(TraceBody::RunStart { substrate, .. }) if substrate == "oracle"
    ));
    assert!(matches!(
        records.last().map(|r| &r.body),
        Some(TraceBody::RunEnd { completed: true })
    ));
}

fn chord_cfg() -> ProtocolSimConfig {
    ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: StrategyKind::RandomInjection,
        check_interval: 1,
        record_trace: true,
        ..ProtocolSimConfig::default()
    }
}

#[test]
fn golden_event_trace_pins_the_wire_schema() {
    // The event-time sibling of `golden_trace_pins_the_wire_schema`:
    // the same small pinned run, executed on the asynchronous overlay
    // under real (default) message latency, committed at
    // `tests/data/golden_event_trace.jsonl`. Any drift in the event
    // loop's timer cadence, wire billing, or retry accounting moves
    // these bytes. Regenerate deliberately with:
    //     UPDATE_GOLDEN=1 cargo test --test trace_plane golden
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_event_trace.jsonl");
    let fresh = {
        let res = run_event_sim(
            &EventSimConfig {
                proto: ProtocolSimConfig {
                    nodes: 6,
                    tasks: 60,
                    strategy: StrategyKind::RandomInjection,
                    check_interval: 1,
                    record_trace: true,
                    ..ProtocolSimConfig::default()
                },
                ..EventSimConfig::default()
            },
            0x601D,
        );
        to_jsonl(res.trace.records())
    };
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &fresh).expect("write golden");
    }
    let committed = std::fs::read_to_string(&path).expect("golden fixture committed");
    assert_eq!(
        fresh, committed,
        "event trace drifted from the golden fixture; \
         regenerate with UPDATE_GOLDEN=1 if the change is intentional"
    );

    validate_jsonl(&committed).expect("golden validates");
    let records = parse_jsonl(&committed).expect("golden parses");
    check_framing(&records).expect("golden is well-framed");
    assert!(matches!(
        records.first().map(|r| &r.body),
        Some(TraceBody::RunStart { substrate, .. }) if substrate == "event"
    ));
    assert!(matches!(
        records.last().map(|r| &r.body),
        Some(TraceBody::RunEnd { completed: true })
    ));
}

#[test]
fn golden_byzantine_trace_pins_the_adversary_vocabulary() {
    // Third golden fixture: a small pinned run with Byzantine reporters
    // AND the cross-checking defense live, committed at
    // `tests/data/golden_byzantine_trace.jsonl`. It pins the adversary
    // telemetry vocabulary — `lied`, `probe_agree`, `probe_conflict`,
    // `quarantined` — on the wire, so any drift in lie application
    // order, relay selection, or suspicion bookkeeping moves these
    // bytes. Regenerate deliberately with:
    //     UPDATE_GOLDEN=1 cargo test --test trace_plane golden
    use autobal::chord::{AdversaryPlan, LiePolicy};
    use autobal_core::strategy::crosscheck::CrossCheckConfig;
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_byzantine_trace.jsonl");
    let fresh = {
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                nodes: 8,
                tasks: 120,
                strategy: StrategyKind::SmartNeighbor,
                check_interval: 1,
                record_trace: true,
                // Over-reporting by gain 4 always trips the tolerance
                // check against an honest median, so the fixture is
                // guaranteed to exercise conflicts and quarantines.
                adversary: AdversaryPlan::lying(0x601D, 0.3, LiePolicy::OverReport),
                cross_check: CrossCheckConfig::with_budget(2),
                ..ProtocolSimConfig::default()
            },
            0x601D,
        );
        to_jsonl(res.trace.records())
    };
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &fresh).expect("write golden");
    }
    let committed = std::fs::read_to_string(&path).expect("golden fixture committed");
    assert_eq!(
        fresh, committed,
        "byzantine trace drifted from the golden fixture; \
         regenerate with UPDATE_GOLDEN=1 if the change is intentional"
    );

    validate_jsonl(&committed).expect("golden validates");
    let records = parse_jsonl(&committed).expect("golden parses");
    check_framing(&records).expect("golden is well-framed");
    // The fixture must actually exercise the new vocabulary.
    let decisions: Vec<&str> = records
        .iter()
        .filter_map(|r| match &r.body {
            TraceBody::Decision { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for name in ["lied", "probe_conflict", "quarantined"] {
        assert!(
            decisions.contains(&name),
            "fixture never recorded a `{name}` decision"
        );
    }
    assert!(matches!(
        records.last().map(|r| &r.body),
        Some(TraceBody::RunEnd { completed: true })
    ));
}

#[test]
fn degenerate_event_trace_diffs_clean_against_protocol() {
    // The tentpole's correctness anchor, stated on the telemetry plane:
    // with zero wire latency and inert faults, the event substrate's
    // decision trace diffs clean against the synchronous protocol
    // substrate — `autobal-trace diff` reports zero causal divergence —
    // for every decentralized strategy.
    for kind in [
        StrategyKind::None,
        StrategyKind::RandomInjection,
        StrategyKind::NeighborInjection,
        StrategyKind::SmartNeighbor,
        StrategyKind::Invitation,
    ] {
        let (ids, keys) = placement();
        let mut pcfg = chord_cfg();
        pcfg.strategy = kind;
        let proto = run_protocol_sim_with_placement(&pcfg, SEED, ids.clone(), keys.clone());
        let event = run_event_sim_with_placement(
            &EventSimConfig {
                proto: pcfg,
                event: EventConfig {
                    latency: 0,
                    ..EventConfig::default()
                },
                ..EventSimConfig::default()
            },
            SEED,
            ids,
            keys,
        );
        let div = diff_traces(proto.trace.records(), event.trace.records());
        let report = render_divergence(&div);
        match div {
            Divergence::None { decisions } => {
                // The paper's baseline network decides nothing; every
                // active strategy must produce a nonempty stream.
                assert!(
                    decisions > 0 || kind == StrategyKind::None,
                    "{kind:?}: empty decision stream"
                );
                assert!(report.contains("no divergence"), "{kind:?}: {report}");
            }
            Divergence::Diverged(_) => {
                panic!("{kind:?}: degenerate event run diverged from protocol:\n{report}");
            }
        }
    }
}

#[test]
fn tick_vs_event_diff_localizes_the_latency_skew() {
    // The measurement the event substrate exists for: under real
    // message latency the strategies see stale loads and late replies,
    // so the decision stream eventually leaves the tick-time oracle's.
    // The diff must localize that skew — or report clean agreement —
    // exactly as it does between the two synchronous substrates.
    let (ids, keys) = placement();
    let oracle = Sim::with_placement(oracle_cfg(), SEED, ids.clone(), keys.clone()).run();
    let event = run_event_sim_with_placement(
        &EventSimConfig {
            proto: chord_cfg(),
            ..EventSimConfig::default()
        },
        SEED,
        ids,
        keys,
    );
    let div = diff_traces(oracle.trace.records(), event.trace.records());
    let report = render_divergence(&div);
    match &div {
        Divergence::None { decisions } => {
            assert!(*decisions > 0);
            assert!(report.contains("no divergence"), "{report}");
        }
        Divergence::Diverged(p) => {
            assert!(p.index >= 8, "diverged too early: {report}");
            assert!(
                report.contains("first divergence at decision #"),
                "{report}"
            );
            assert!(report.contains("worker="), "{report}");
            assert!(report.contains("t="), "{report}");
            assert!(report.contains("in span["), "{report}");
        }
    }
}

#[test]
fn diff_reports_first_divergence_with_worker_and_tick() {
    // The acceptance demonstration: diff two same-seed traces from the
    // two substrates. The strategy decisions agree while the local
    // views provably coincide (differential.rs), then task-consumption
    // order skews the key sets — the diff must either report full
    // agreement or name the first divergent decision with its worker,
    // virtual time, and enclosing span.
    let (ids, keys) = placement();
    let oracle = Sim::with_placement(oracle_cfg(), SEED, ids.clone(), keys.clone()).run();
    let chord = run_protocol_sim_with_placement(
        &ProtocolSimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_trace: true,
            ..ProtocolSimConfig::default()
        },
        SEED,
        ids,
        keys,
    );

    let div = diff_traces(oracle.trace.records(), chord.trace.records());
    let report = render_divergence(&div);
    match &div {
        Divergence::None { decisions } => {
            assert!(*decisions > 0);
            assert!(report.contains("no divergence"), "{report}");
        }
        Divergence::Diverged(p) => {
            // Both substrates decided in lockstep for a nonempty prefix
            // (8 empty workers act on tick 1), and the report carries
            // the who/when a human needs.
            assert!(p.index >= 8, "diverged too early: {report}");
            assert!(
                report.contains("first divergence at decision #"),
                "{report}"
            );
            assert!(report.contains("worker="), "{report}");
            assert!(report.contains("t="), "{report}");
            assert!(report.contains("in span["), "{report}");
        }
    }
}

#[test]
fn golden_schema_fixture_spans_the_vocabulary() {
    // `tests/data/golden_schema.jsonl` is the lint rule T anchor: it
    // must stay a valid trace AND mention every decision name and
    // message status, so a vocabulary change forces the fixture (and
    // therefore this test plus the lint gate) to move in lockstep.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_schema.jsonl");
    let text = std::fs::read_to_string(&path).expect("golden schema fixture committed");
    let n = validate_jsonl(&text).expect("golden schema validates");
    let records = parse_jsonl(&text).expect("golden schema parses");
    assert_eq!(records.len(), n);
    check_framing(&records).expect("golden schema is well-framed");

    let summary = summarize(&records);
    let names = [
        "sybil_created",
        "sybils_retired",
        "worker_left",
        "worker_crashed",
        "worker_joined",
        "invitation_sent",
        "invitation_refused",
        "invitation_honored",
        "load_queried",
        "neighbor_gap_split",
        "lied",
        "probe_agree",
        "probe_conflict",
        "quarantined",
    ];
    for name in names {
        assert_eq!(
            summary.decisions_by_name.get(name),
            Some(&1),
            "decision name `{name}` missing from the golden schema fixture"
        );
    }
    assert_eq!(summary.decisions, names.len() as u64);
    assert_eq!(summary.messages.delivered, 1);
    assert_eq!(summary.messages.dropped, 1);
    assert_eq!(summary.messages.timed_out, 1);
    assert_eq!(summary.messages.unreachable, 1);
    assert!(summary.completed);
}
