//! Differential test between the two substrates (the PR's central
//! claim): the *same* `Strategy` trait object, fed the same local
//! views, makes the same spawn/retire decisions whether the view is
//! backed by the oracle ring or by the real Chord protocol.
//!
//! Both substrates get bit-identical starting conditions (explicit node
//! ids and task keys, same seed ⇒ same strategy RNG stream) and record
//! their decision traces. The traces are compared in lockstep. The two
//! substrates consume tasks in different orders (the oracle ring pops a
//! pseudo-random task to keep remaining keys spread, a Chord node pops
//! its smallest key), so the *key sets* — and therefore the task count
//! a Sybil acquires — may drift apart even while the *load counts* seen
//! by the strategy stay identical. The test therefore asserts exact
//! decision equality (tick, worker, position) for as long as every
//! previously observed `acquired` matched — i.e. for as long as the
//! local views provably coincide — and requires a guaranteed nonempty
//! prefix by starting half the workers empty, so the first check tick
//! produces identical decisions on untouched state.

use autobal::protocol_sim::{run_protocol_sim_with_placement, ProtocolSimConfig};
use autobal::sim::{Sim, SimConfig, SimEvent, StrategyKind};
use autobal::stats::rng::{domains, substream, DetRng};
use autobal::Id;

const NODES: usize = 16;
const TASKS: u64 = 800;
const SEED: u64 = 41;

/// Explicit placement: 16 random node ids; all task keys constrained to
/// the arcs owned by the "loaded" half of the ring, so the other 8
/// workers start at load 0 and must act on the very first check tick,
/// before any substrate-specific task consumption can tell them apart.
fn placement() -> (Vec<Id>, Vec<Id>) {
    let mut rng: DetRng = substream(0xD1FF, 0, domains::PLACEMENT);
    let mut ids: Vec<Id> = Vec::new();
    while ids.len() < NODES {
        let id = Id::random(&mut rng);
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    let mut sorted = ids.clone();
    sorted.sort();
    let loaded: Vec<Id> = sorted.iter().copied().step_by(2).collect();
    let owner = |key: Id| -> Id {
        sorted
            .iter()
            .copied()
            .find(|&n| key <= n)
            .unwrap_or(sorted[0])
    };
    let mut keys = Vec::new();
    while (keys.len() as u64) < TASKS {
        let k = Id::random(&mut rng);
        if loaded.contains(&owner(k)) {
            keys.push(k);
        }
    }
    (ids, keys)
}

#[test]
fn oracle_and_chord_substrates_make_the_same_decisions() {
    let (ids, keys) = placement();

    let oracle = Sim::with_placement(
        SimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_events: true,
            ..SimConfig::default()
        },
        SEED,
        ids.clone(),
        keys.clone(),
    )
    .run();

    let proto = run_protocol_sim_with_placement(
        &ProtocolSimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_events: true,
            ..ProtocolSimConfig::default()
        },
        SEED,
        ids,
        keys,
    );

    assert!(oracle.completed && proto.completed);

    let mut compared = 0usize;
    let mut views_identical = true;
    for (a, b) in oracle.events.events().iter().zip(proto.events.events()) {
        match (a, b) {
            (
                SimEvent::SybilCreated {
                    tick: t1,
                    worker: w1,
                    pos: p1,
                    acquired: a1,
                },
                SimEvent::SybilCreated {
                    tick: t2,
                    worker: w2,
                    pos: p2,
                    acquired: a2,
                },
            ) => {
                // The decision — when, who, where — must match exactly.
                assert_eq!(
                    (t1, w1, p1),
                    (t2, w2, p2),
                    "spawn decision #{compared} diverged while views were identical"
                );
                compared += 1;
                if a1 != a2 {
                    // Task-consumption order has finally skewed the key
                    // sets; loads (and so future decisions) may differ
                    // from here on. The differential claim is satisfied
                    // up to this point.
                    views_identical = false;
                }
            }
            _ => {
                assert_eq!(
                    a, b,
                    "event #{compared} diverged while views were identical"
                );
                compared += 1;
            }
        }
        if !views_identical {
            break;
        }
    }

    // The 8 empty workers guarantee at least one full check tick of
    // decisions on provably identical state.
    assert!(
        compared >= 8,
        "only {compared} lockstep decisions before divergence"
    );
}

#[test]
fn first_check_tick_decisions_are_bit_identical() {
    // Strongest form of the claim: on tick 1 (check_interval = 1, and
    // checks run before the work phase) no task has been consumed yet,
    // so the local views are bit-identical — every event, including the
    // number of tasks each Sybil acquired, must match exactly.
    let (ids, keys) = placement();

    let oracle = Sim::with_placement(
        SimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_events: true,
            ..SimConfig::default()
        },
        SEED,
        ids.clone(),
        keys.clone(),
    )
    .run();
    let proto = run_protocol_sim_with_placement(
        &ProtocolSimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_events: true,
            ..ProtocolSimConfig::default()
        },
        SEED,
        ids,
        keys,
    );

    let first = |evs: &[SimEvent]| -> Vec<SimEvent> {
        evs.iter().filter(|e| e.tick() == 1).cloned().collect()
    };
    let o1 = first(oracle.events.events());
    let p1 = first(proto.events.events());
    assert!(
        o1.len() >= 8,
        "the 8 idle workers should all have acted on tick 1, got {}",
        o1.len()
    );
    assert_eq!(o1, p1, "tick-1 traces must match field-for-field");
}

#[test]
fn substrates_agree_on_the_outcome_too() {
    // Decisions aside, the macro story must hold on both fidelities:
    // random injection beats the do-nothing baseline by a similar
    // margin. (Runtime factors are compared loosely — the protocol run
    // pays for maintenance and routing, the oracle ring does not.)
    let (ids, keys) = placement();
    let mut sum = [0.0f64; 2];
    for (i, kind) in [StrategyKind::None, StrategyKind::RandomInjection]
        .into_iter()
        .enumerate()
    {
        let o = Sim::with_placement(
            SimConfig {
                nodes: NODES,
                tasks: TASKS,
                strategy: kind,
                ..SimConfig::default()
            },
            SEED,
            ids.clone(),
            keys.clone(),
        )
        .run();
        let p = run_protocol_sim_with_placement(
            &ProtocolSimConfig {
                nodes: NODES,
                tasks: TASKS,
                strategy: kind,
                ..ProtocolSimConfig::default()
            },
            SEED,
            ids.clone(),
            keys.clone(),
        );
        assert!(o.completed && p.completed);
        assert!(
            (o.runtime_factor - p.runtime_factor).abs() < o.runtime_factor.max(2.0),
            "{kind:?}: oracle {} vs protocol {}",
            o.runtime_factor,
            p.runtime_factor
        );
        sum[i] = p.runtime_factor;
    }
    assert!(
        sum[1] < sum[0],
        "injection {} should beat baseline {} on the protocol substrate",
        sum[1],
        sum[0]
    );
}

#[test]
fn adversary_and_probe_bills_match_across_substrates() {
    // Satellite pin for the Byzantine plane: cross-checked probes and
    // lied responses must bump `MessageStats` identically whether they
    // ride the synchronous tick shim or the event wire. Run the same
    // hostile config on both substrates at zero latency and compare the
    // decision stream, the `load_query` bill, and the `lied`
    // meta-counter field-for-field.
    use autobal::event_sim::{run_event_sim, EventSimConfig};
    use autobal::protocol_sim::run_protocol_sim;
    use autobal_chord::{AdversaryPlan, EventConfig, LiePolicy};
    use autobal_core::strategy::crosscheck::CrossCheckConfig;

    let proto_cfg = ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: StrategyKind::SmartNeighbor,
        record_events: true,
        adversary: AdversaryPlan::lying(SEED, 0.25, LiePolicy::OverReport),
        cross_check: CrossCheckConfig::with_budget(2),
        ..ProtocolSimConfig::default()
    };
    let event_cfg = EventSimConfig {
        proto: proto_cfg.clone(),
        event: EventConfig {
            latency: 0,
            ..EventConfig::default()
        },
        ..EventSimConfig::default()
    };

    let proto = run_protocol_sim(&proto_cfg, SEED);
    let event = run_event_sim(&event_cfg, SEED);

    assert!(proto.completed && event.completed);
    assert!(proto.messages.lied > 0, "the adversary actually fired");
    assert_eq!(
        proto.events.events(),
        event.events.events(),
        "decision streams diverged under the adversary"
    );
    // The parity that matters for accounting: every probe (direct or
    // relayed) and every distorted reply is billed once on each plane.
    assert_eq!(proto.messages.load_query, event.wire.load_query);
    assert_eq!(proto.messages.lied, event.wire.lied);
    // The synchronous counters stay off the event substrate's network
    // plane — strategy traffic lives on the wire there.
    assert_eq!(event.messages.load_query, 0);
}
