//! Fixed-seed pins for every strategy on the oracle-ring substrate.
//!
//! These exact values were captured from the pre-trait-refactor engine
//! (free-function strategies dispatched by a `match` in `Sim::step`).
//! The trait-object dispatch must reproduce them bit-for-bit: same
//! worker iteration order, same RNG draw order, same message-counter
//! increments. A drift here means a strategy port changed behavior, not
//! just structure.

use autobal::sim::{Sim, SimConfig, StrategyKind};

fn run(kind: StrategyKind, churn_rate: f64, seed: u64) -> autobal::sim::RunResult {
    let cfg = SimConfig {
        nodes: 100,
        tasks: 10_000,
        strategy: kind,
        churn_rate,
        ..SimConfig::default()
    };
    Sim::new(cfg, seed).run()
}

#[test]
fn random_injection_pins() {
    // (seed, ticks, sybils_created, sybils_retired)
    for (seed, ticks, created, retired) in
        [(1, 136, 863, 763), (2, 146, 1081, 981), (3, 145, 1082, 982)]
    {
        let r = run(StrategyKind::RandomInjection, 0.0, seed);
        assert_eq!(
            (
                r.ticks,
                r.messages.sybils_created,
                r.messages.sybils_retired
            ),
            (ticks, created, retired),
            "seed {seed}"
        );
    }
}

#[test]
fn neighbor_injection_pins() {
    for (seed, ticks, created) in [(1, 165, 487), (2, 204, 480), (3, 195, 495)] {
        let r = run(StrategyKind::NeighborInjection, 0.0, seed);
        assert_eq!(
            (r.ticks, r.messages.sybils_created),
            (ticks, created),
            "seed {seed}"
        );
        assert_eq!(r.messages.load_queries, 0, "plain variant never queries");
    }
}

#[test]
fn smart_neighbor_pins() {
    for (seed, ticks, created, queries) in [
        (1, 165, 129, 7015),
        (2, 201, 116, 10505),
        (3, 209, 128, 11030),
    ] {
        let r = run(StrategyKind::SmartNeighbor, 0.0, seed);
        assert_eq!(
            (r.ticks, r.messages.sybils_created, r.messages.load_queries),
            (ticks, created, queries),
            "seed {seed}"
        );
    }
}

#[test]
fn invitation_pins() {
    for (seed, ticks, created, sent, refused) in [
        (1, 228, 11, 60, 49),
        (2, 270, 7, 46, 39),
        (3, 224, 13, 60, 47),
    ] {
        let r = run(StrategyKind::Invitation, 0.0, seed);
        assert_eq!(
            (
                r.ticks,
                r.messages.sybils_created,
                r.messages.invitations_sent,
                r.messages.invitations_refused
            ),
            (ticks, created, sent, refused),
            "seed {seed}"
        );
    }
}

#[test]
fn centralized_oracle_pins() {
    for (seed, ticks, created) in [(1, 103, 79), (2, 103, 91), (3, 104, 110)] {
        let r = run(StrategyKind::CentralizedOracle, 0.0, seed);
        assert_eq!(
            (r.ticks, r.messages.sybils_created),
            (ticks, created),
            "seed {seed}"
        );
    }
}

#[test]
fn churn_pins() {
    for (seed, ticks, leaves, joins) in [(1, 226, 445, 448), (2, 228, 465, 471), (3, 204, 444, 444)]
    {
        let r = run(StrategyKind::Churn, 0.02, seed);
        assert_eq!(
            (r.ticks, r.messages.churn_leaves, r.messages.churn_joins),
            (ticks, leaves, joins),
            "seed {seed}"
        );
    }
}

#[test]
fn composed_churn_plus_random_injection_pins() {
    // Background churn layered under random injection — the composition
    // the StrategyStack exists for.
    for (seed, ticks, created, leaves, joins) in [
        (1, 145, 1048, 139, 133),
        (2, 153, 955, 161, 156),
        (3, 139, 1026, 138, 147),
    ] {
        let r = run(StrategyKind::RandomInjection, 0.01, seed);
        assert_eq!(
            (
                r.ticks,
                r.messages.sybils_created,
                r.messages.churn_leaves,
                r.messages.churn_joins
            ),
            (ticks, created, leaves, joins),
            "seed {seed}"
        );
    }
}
