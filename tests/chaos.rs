//! Chaos suite: randomized adversity against the Chord substrate, the
//! protocol-level strategy runs, and the event-time substrate.
//!
//! Three claims are defended here:
//!
//! 1. **Convergence** — under randomized loss (≤ 30%) and crash-failures
//!    (≤ 20% of the population), the ring reconverges to a consistent
//!    state once faults subside, and every task key is either alive or
//!    explicitly billed to `MessageStats::keys_lost` — nothing vanishes
//!    silently.
//! 2. **Determinism** — identical fault seeds replay identically, no
//!    matter how many rayon threads the surrounding harness uses.
//! 3. **Resilience acceptance** — at 10% loss + 5% crashes with the
//!    default replication factor, strategy runs lose zero tasks and
//!    finish within 2× of their fault-free runtime.
//!
//! `CHAOS_SEED` (env var) pins the randomized scenario for CI replay:
//! `CHAOS_SEED=3 cargo test --test chaos`.

use autobal::chord::{CrashEvent, EventConfig, FaultPlan, NetConfig, Network, Partition};
use autobal::event_sim::{run_event_sim, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal::sim::StrategyKind;
use autobal::stats::rng::{domains, substream};
use autobal::Id;
use proptest::prelude::*;
use rand::Rng;

const NODES: usize = 32;
const KEYS: u64 = 300;

/// Bootstraps a stabilized ring carrying `KEYS` task keys.
fn seeded_net(seed: u64) -> Network {
    let mut rng = substream(seed, 0, domains::PLACEMENT);
    let mut net = Network::bootstrap(NetConfig::default(), NODES, &mut rng);
    let mut keys = substream(seed, 0, domains::TASKS);
    for _ in 0..KEYS {
        net.insert_key(Id::random(&mut keys));
    }
    net.maintenance_cycle();
    net
}

/// Runs the canonical chaos scenario: armed faults + staggered crashes
/// with maintenance in between, then quiet convergence. Returns the net
/// for final assertions.
fn chaos_scenario(seed: u64, loss: f64, dup: f64, crashes: usize) -> Network {
    let mut net = seeded_net(seed);
    net.set_fault_plan(FaultPlan {
        seed,
        loss_rate: loss,
        dup_rate: dup,
        ..FaultPlan::default()
    });
    let mut victims = substream(seed, 0, domains::FAULTS);
    for _ in 0..crashes {
        let ids = net.node_ids();
        if ids.len() <= NODES / 2 {
            break;
        }
        let v = ids[victims.gen_range(0..ids.len())];
        net.fail(v).expect("victim is live");
        // Maintenance keeps running between crashes — replicas promote
        // and successor lists repair while links stay lossy.
        net.maintenance_cycle();
    }
    // Faults subside; convergence must follow within a bounded number
    // of quiet cycles.
    net.set_fault_plan(FaultPlan::default());
    for _ in 0..30 {
        net.maintenance_cycle();
        if net.is_consistent() {
            break;
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Claim 1: randomized loss + crashes never corrupt the ring or
    /// silently destroy keys.
    #[test]
    fn ring_survives_randomized_chaos(
        seed in any::<u64>(),
        loss_pct in 0u32..=30,
        dup_pct in 0u32..=20,
        crashes in 0usize..=6, // ≤ 20% of 32 nodes
    ) {
        let net = chaos_scenario(seed, loss_pct as f64 / 100.0, dup_pct as f64 / 100.0, crashes);
        prop_assert!(net.is_consistent(), "ring failed to reconverge");
        prop_assert_eq!(
            net.total_keys() as u64 + net.stats.keys_lost,
            KEYS,
            "keys neither died billed nor stayed alive"
        );
        // ≥ 1 replica per key and a cycle between crashes ⇒ usually
        // zero loss; the hard guarantee is only explicit accounting,
        // asserted above.
    }
}

/// Claim 1 again, on one pinned scenario CI can replay byte-for-byte
/// across machines: `CHAOS_SEED=n cargo test --test chaos`.
#[test]
fn pinned_chaos_scenario_converges() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let net = chaos_scenario(seed, 0.25, 0.10, 5);
    assert!(net.is_consistent(), "seed {seed}: ring must reconverge");
    assert_eq!(
        net.total_keys() as u64 + net.stats.keys_lost,
        KEYS,
        "seed {seed}: conservation violated"
    );
}

/// Claim 2: the fault stream is its own ChaCha instance, so two runs
/// with the same plan are bit-for-bit identical — regardless of the
/// rayon thread count the harness installs around them.
#[test]
fn identical_fault_seeds_replay_identically_across_thread_counts() {
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                run_protocol_sim(
                    &ProtocolSimConfig {
                        nodes: 24,
                        tasks: 1_200,
                        strategy: StrategyKind::RandomInjection,
                        fault: FaultPlan::lossy(99, 0.10),
                        crash_rate: 0.1,
                        record_events: true,
                        ..ProtocolSimConfig::default()
                    },
                    5,
                )
            })
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.tasks_lost, b.tasks_lost);
    assert_eq!(a.workers_crashed, b.workers_crashed);
    assert_eq!(a.sybils_created, b.sybils_created);
    assert_eq!(
        a.events.events(),
        b.events.events(),
        "full decision traces match"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Claim 1 on **event time**: randomized wire loss × a partition
    /// window × scheduled crashes never destroy a task silently — every
    /// key is consumed, still alive, or billed as lost, and the billing
    /// planes agree.
    #[test]
    fn event_substrate_conserves_tasks_under_chaos(
        seed in any::<u64>(),
        loss_pct in 0u32..=20,
        partitioned in any::<bool>(),
        crashes in 0u32..=4,
    ) {
        let tasks = 800u64;
        let cfg = EventSimConfig {
            proto: ProtocolSimConfig {
                nodes: 24,
                tasks,
                strategy: StrategyKind::RandomInjection,
                fault: FaultPlan {
                    seed,
                    loss_rate: loss_pct as f64 / 100.0,
                    // Wire partition times are event-time units:
                    // ticks 10–30 at the default 100-unit tick.
                    partitions: if partitioned {
                        vec![Partition { start: 1_000, end: 3_000 }]
                    } else {
                        Vec::new()
                    },
                    // Crash events stay tick-indexed (substrate plane).
                    crashes: if crashes > 0 {
                        vec![CrashEvent { at: 5, count: crashes }]
                    } else {
                        Vec::new()
                    },
                    ..FaultPlan::default()
                },
                ..ProtocolSimConfig::default()
            },
            ..EventSimConfig::default()
        };
        let res = run_event_sim(&cfg, seed ^ 0x5EED);
        prop_assert!(res.completed, "survivors must finish the workload");
        let done: u64 = res.tasks_done.iter().sum();
        // Conservation: nothing vanishes silently. Any ownership
        // transfer — a crash promotion, but also every graceful Sybil
        // join/retire handoff — can *resurrect* a task consumed since
        // the previous replica sync (the active-backup model redoes
        // that work rather than risk dropping it; the synchronous
        // substrate over-counts identically). Strategies spawn Sybils
        // by design, so strict equality never holds: the invariant is
        // consumed + alive + billed-lost covers the workload.
        prop_assert!(
            done + res.tasks_remaining + res.tasks_lost >= tasks,
            "tasks vanished: done {} + remaining {} + lost {} < {}",
            done, res.tasks_remaining, res.tasks_lost, tasks
        );
        prop_assert_eq!(
            res.tasks_lost, res.messages.keys_lost,
            "substrate and network billing disagree"
        );
    }
}

/// Claim 2 on event time: wire faults, probe timeouts, and the event
/// queue all draw from seeded streams — runs are bit-identical across
/// rayon thread counts, down to the event clock and the wire bill.
#[test]
fn event_runs_replay_identically_across_thread_counts() {
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                run_event_sim(
                    &EventSimConfig {
                        proto: ProtocolSimConfig {
                            nodes: 24,
                            tasks: 1_200,
                            strategy: StrategyKind::SmartNeighbor,
                            fault: FaultPlan::lossy(99, 0.10),
                            crash_rate: 0.1,
                            record_events: true,
                            ..ProtocolSimConfig::default()
                        },
                        event: EventConfig {
                            latency: 20,
                            ..EventConfig::default()
                        },
                        ..EventSimConfig::default()
                    },
                    5,
                )
            })
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.time, b.time, "event clocks diverged");
    assert_eq!(a.wire, b.wire, "wire bills diverged");
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.tasks_done, b.tasks_done);
    assert_eq!(a.lookup_latencies, b.lookup_latencies);
    assert_eq!(a.workers_crashed, b.workers_crashed);
    assert_eq!(
        a.events.events(),
        b.events.events(),
        "full decision traces match"
    );
}

/// Claim 3 (acceptance): 10% loss + 5% crashes with default replication
/// ⇒ zero tasks lost and ≤ 2× the fault-free runtime factor.
#[test]
fn loss_plus_crash_acceptance_criteria_hold() {
    for kind in [StrategyKind::RandomInjection, StrategyKind::SmartNeighbor] {
        let cfg = |fault: FaultPlan, crash_rate: f64| ProtocolSimConfig {
            nodes: 32,
            tasks: 1_600,
            strategy: kind,
            fault,
            crash_rate,
            ..ProtocolSimConfig::default()
        };
        let clean = run_protocol_sim(&cfg(FaultPlan::default(), 0.0), 21);
        let rough = run_protocol_sim(&cfg(FaultPlan::lossy(21, 0.10), 0.05), 21);
        assert!(rough.completed, "{kind:?} must finish under adversity");
        assert!(rough.workers_crashed > 0, "{kind:?}: crashes fired");
        assert_eq!(rough.tasks_lost, 0, "{kind:?}: replication covers crashes");
        assert!(
            rough.runtime_factor <= clean.runtime_factor * 2.0,
            "{kind:?}: rough {} vs clean {}",
            rough.runtime_factor,
            clean.runtime_factor
        );
    }
}

/// Partition windows on the synchronous substrate: the strategy run
/// rides through a mid-run split-brain window and still completes, with
/// the cut's drops explicitly billed.
#[test]
fn protocol_run_survives_a_partition_window() {
    let res = run_protocol_sim(
        &ProtocolSimConfig {
            nodes: 32,
            tasks: 1_600,
            strategy: StrategyKind::RandomInjection,
            fault: FaultPlan {
                seed: 17,
                partitions: vec![Partition { start: 10, end: 25 }],
                ..FaultPlan::default()
            },
            ..ProtocolSimConfig::default()
        },
        22,
    );
    assert!(res.completed, "the window heals and the run finishes");
    assert!(
        res.messages.dropped > 0,
        "cross-cut messages were dropped during the window"
    );
    assert_eq!(res.tasks_lost, 0, "partitions delay, they do not destroy");
}

/// Maps a proptest index onto a lying policy (proptest can't derive
/// strategies for foreign enums without a feature gate).
fn policy_for(i: u8) -> autobal::chord::LiePolicy {
    use autobal::chord::LiePolicy;
    match i % 4 {
        0 => LiePolicy::UnderReport,
        1 => LiePolicy::OverReport,
        2 => LiePolicy::RandomNoise,
        _ => LiePolicy::FlipFlop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The Byzantine plane composed with the fault plane: liars plus
    /// randomized loss, a partition window, and scheduled crashes never
    /// panic, never destroy a task silently, and keep the billing
    /// planes in agreement — with and without the cross-check defense.
    #[test]
    fn byzantine_chaos_conserves_tasks(
        seed in any::<u64>(),
        fraction_pct in 0u32..=40,
        policy_ix in any::<u8>(),
        k in 0usize..=2,
        loss_pct in 0u32..=15,
        partitioned in any::<bool>(),
        crashes in 0u32..=3,
    ) {
        use autobal::chord::AdversaryPlan;
        use autobal_core::strategy::crosscheck::CrossCheckConfig;
        let tasks = 800u64;
        let cfg = ProtocolSimConfig {
            nodes: 24,
            tasks,
            strategy: StrategyKind::SmartNeighbor,
            adversary: AdversaryPlan::lying(
                seed,
                fraction_pct as f64 / 100.0,
                policy_for(policy_ix),
            ),
            cross_check: CrossCheckConfig::with_budget(k),
            fault: FaultPlan {
                seed,
                loss_rate: loss_pct as f64 / 100.0,
                partitions: if partitioned {
                    vec![Partition { start: 10, end: 25 }]
                } else {
                    Vec::new()
                },
                crashes: if crashes > 0 {
                    vec![CrashEvent { at: 5, count: crashes }]
                } else {
                    Vec::new()
                },
                ..FaultPlan::default()
            },
            ..ProtocolSimConfig::default()
        };
        let res = run_protocol_sim(&cfg, seed ^ 0xB12);
        prop_assert!(res.completed, "liars slow runs down, they must not wedge them");
        // Completed run ⇒ nothing is left in flight; conservation says
        // every task was consumed or billed as lost (handoff redo can
        // over-count, never under-count).
        let done: u64 = res.tasks_done.iter().sum();
        prop_assert!(
            done + res.tasks_lost >= tasks,
            "tasks vanished: done {} + lost {} < {}",
            done, res.tasks_lost, tasks
        );
        prop_assert_eq!(
            res.tasks_lost, res.messages.keys_lost,
            "substrate and network billing disagree"
        );
        if !cfg.adversary.is_active() {
            prop_assert_eq!(res.messages.lied, 0, "nobody lies in an honest run");
        }
    }
}

/// Claim 2 with the adversary live: liar selection, the lie function,
/// and the cross-check defense all avoid wall-clock and thread-local
/// state, so hostile runs replay bit-identically across rayon thread
/// counts on both substrates.
#[test]
fn byzantine_runs_replay_identically_across_thread_counts() {
    use autobal::chord::{AdversaryPlan, LiePolicy};
    use autobal_core::strategy::crosscheck::CrossCheckConfig;
    let proto_cfg = ProtocolSimConfig {
        nodes: 24,
        tasks: 1_200,
        strategy: StrategyKind::SmartNeighbor,
        adversary: AdversaryPlan::lying(99, 0.25, LiePolicy::FlipFlop),
        cross_check: CrossCheckConfig::with_budget(2),
        fault: FaultPlan::lossy(99, 0.05),
        record_events: true,
        ..ProtocolSimConfig::default()
    };
    let run_proto = |threads: usize| {
        let cfg = proto_cfg.clone();
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(move || run_protocol_sim(&cfg, 5))
    };
    let a = run_proto(1);
    let b = run_proto(8);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.messages, b.messages, "lie and probe bills diverged");
    assert!(a.messages.lied > 0, "the adversary actually fired");
    assert_eq!(a.events.events(), b.events.events());

    let run_event = |threads: usize| {
        let cfg = EventSimConfig {
            proto: proto_cfg.clone(),
            event: EventConfig {
                latency: 20,
                ..EventConfig::default()
            },
            ..EventSimConfig::default()
        };
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(move || run_event_sim(&cfg, 5))
    };
    let c = run_event(1);
    let d = run_event(8);
    assert_eq!(c.time, d.time, "event clocks diverged");
    assert_eq!(c.wire, d.wire, "wire bills diverged");
    assert!(c.wire.lied > 0, "liars answered on the wire too");
    assert_eq!(c.events.events(), d.events.events());
}

/// Scheduled crash events from the plan (rather than `crash_rate`)
/// drive the same machinery: explicit timing, explicit victims count.
#[test]
fn scheduled_crash_events_fire_at_their_ticks() {
    let res = run_protocol_sim(
        &ProtocolSimConfig {
            nodes: 32,
            tasks: 1_600,
            strategy: StrategyKind::None,
            fault: FaultPlan {
                seed: 4,
                crashes: vec![
                    CrashEvent { at: 5, count: 2 },
                    CrashEvent { at: 15, count: 1 },
                ],
                ..FaultPlan::default()
            },
            record_events: true,
            ..ProtocolSimConfig::default()
        },
        23,
    );
    assert!(res.completed);
    assert_eq!(res.workers_crashed, 3, "2 at tick 5 + 1 at tick 15");
    assert_eq!(
        res.tasks_lost, 0,
        "replication had cycles to cover all three"
    );
    let crash_ticks: Vec<u64> = res
        .events
        .events()
        .iter()
        .filter_map(|e| match e {
            autobal::sim::SimEvent::WorkerCrashed { tick, .. } => Some(*tick),
            _ => None,
        })
        .collect();
    assert_eq!(crash_ticks, vec![5, 5, 15]);
}
