//! Allocation regression test for the steady-state tick loop.
//!
//! The hot-path overhaul's core promise: once a simulation reaches
//! steady state (placement done, scratch buffers warmed), `Sim::step`
//! performs **zero** heap allocations. This binary installs the
//! counting allocator from `autobal-meminstr` process-wide and measures
//! a 1 000-tick window directly.
//!
//! Gated behind the `count-allocs` feature so the ordinary test run
//! keeps the system allocator untouched:
//!
//! ```text
//! cargo test --release --features count-allocs --test zero_alloc
//! ```
#![cfg(feature = "count-allocs")]

use autobal::meminstr::{allocation_delta, CountingAlloc};
use autobal::sim::{Sim, SimConfig, StrategyKind};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A workload big enough that 1 000 + warmup ticks cannot drain it, so
/// every measured tick exercises the full work loop.
fn steady_cfg() -> SimConfig {
    SimConfig {
        nodes: 200,
        tasks: 2_000_000,
        strategy: StrategyKind::None,
        churn_rate: 0.0,
        series_interval: None,
        ..SimConfig::default()
    }
}

#[test]
fn steady_state_ticks_do_not_allocate() {
    let mut sim = Sim::new(steady_cfg(), 0xA0B1_C2D3);
    // Warmup: lets one-time lazy growth (work history headroom,
    // strategy scratch) happen outside the measured window.
    for _ in 0..32 {
        sim.step();
    }
    let (allocs, consumed) = allocation_delta(|| {
        let mut consumed = 0u64;
        for _ in 0..1_000 {
            consumed += sim.step();
        }
        consumed
    });
    assert!(consumed > 0, "window must have done real work");
    assert_eq!(
        allocs, 0,
        "steady-state tick loop allocated {allocs} times over 1k ticks"
    );
}

/// The metrics plane keeps the promise: with recording on, every tick
/// pays the incremental-statistics upkeep (Fenwick updates, counter
/// bumps) yet still allocates nothing. Only the periodic sample dump
/// may allocate, so the cadence is pushed past the measured window.
#[test]
fn metrics_recording_ticks_do_not_allocate() {
    let mut cfg = steady_cfg();
    cfg.record_metrics = true;
    cfg.metrics_interval = Some(1_000_000);
    let mut sim = Sim::new(cfg, 0xA0B1_C2D3);
    for _ in 0..32 {
        sim.step();
    }
    let (allocs, consumed) = allocation_delta(|| {
        let mut consumed = 0u64;
        for _ in 0..1_000 {
            consumed += sim.step();
        }
        consumed
    });
    assert!(consumed > 0, "window must have done real work");
    assert_eq!(
        allocs, 0,
        "metrics-instrumented tick loop allocated {allocs} times over 1k ticks"
    );
}

/// Sharding keeps the promise: with the struct-of-arrays engine
/// selected (`shards` ≥ 2) the planned pop path — offset/count
/// planning pass, state-stream generation, per-shard batch replay —
/// reuses its buffers and allocates nothing per tick. Measured on a
/// 1-thread pool because handing work to rayon's scoped threads boxes
/// closures (a threading-infrastructure cost, not a tick-loop cost);
/// the sequential dispatch path is the one the zero-alloc contract
/// covers.
#[test]
fn sharded_steady_state_ticks_do_not_allocate() {
    let mut cfg = steady_cfg();
    cfg.shards = 4;
    cfg.record_metrics = true;
    cfg.metrics_interval = Some(1_000_000);
    let mut sim = Sim::new(cfg, 0xA0B1_C2D3);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| {
            for _ in 0..32 {
                sim.step();
            }
            let (allocs, consumed) = allocation_delta(|| {
                let mut consumed = 0u64;
                for _ in 0..1_000 {
                    consumed += sim.step();
                }
                consumed
            });
            assert!(consumed > 0, "window must have done real work");
            assert_eq!(
                allocs, 0,
                "sharded tick loop allocated {allocs} times over 1k ticks"
            );
        });
}

/// The same property seen end-to-end: a full run's allocation count is
/// dominated by setup, not by ticks — running 4x more ticks over the
/// same setup must not add more than a sliver of allocations.
#[test]
fn allocations_scale_with_setup_not_ticks() {
    let short = {
        let mut cfg = steady_cfg();
        cfg.max_ticks = Some(250);
        let mut sim = Sim::new(cfg, 7);
        allocation_delta(|| {
            for _ in 0..250 {
                sim.step();
            }
        })
        .0
    };
    let long = {
        let mut cfg = steady_cfg();
        cfg.max_ticks = Some(1_000);
        let mut sim = Sim::new(cfg, 7);
        allocation_delta(|| {
            for _ in 0..1_000 {
                sim.step();
            }
        })
        .0
    };
    assert!(
        long <= short + 8,
        "4x the ticks added {} allocations (short {short}, long {long})",
        long - short
    );
}
