//! Determinism and serialization guarantees: identical seeds produce
//! identical runs regardless of parallelism, and every result record
//! survives a serde round-trip.

use autobal::sim::{RunResult, Sim, SimConfig, StrategyKind};
use autobal::workload::trials::run_trials;
use autobal::workload::ExperimentSpec;

fn demo_cfg() -> SimConfig {
    SimConfig {
        nodes: 60,
        tasks: 6_000,
        strategy: StrategyKind::RandomInjection,
        churn_rate: 0.01,
        snapshot_ticks: vec![0, 5],
        ..SimConfig::default()
    }
}

#[test]
fn identical_seeds_identical_runs() {
    let a = Sim::new(demo_cfg(), 77).run();
    let b = Sim::new(demo_cfg(), 77).run();
    assert_eq!(a, b, "full RunResult equality");
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = Sim::new(demo_cfg(), 1).run();
    let b = Sim::new(demo_cfg(), 2).run();
    assert_ne!(
        (a.ticks, a.work_per_tick.clone()),
        (b.ticks, b.work_per_tick.clone())
    );
}

#[test]
fn parallel_batch_is_deterministic_under_any_thread_count() {
    // Run the same batch on a 1-thread and a many-thread pool; rayon
    // scheduling must not leak into results.
    let cfg = demo_cfg();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| run_trials(&cfg, 6, 42));
    let multi = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap()
        .install(|| run_trials(&cfg, 6, 42));
    assert_eq!(single, multi);
}

#[test]
fn trait_dispatch_is_deterministic_for_every_strategy() {
    // Strategies are now trait objects dispatched from a registry; the
    // indirection must not cost determinism for any of them, alone or
    // composed with background churn.
    let kinds = StrategyKind::ALL
        .iter()
        .copied()
        .chain([StrategyKind::CentralizedOracle]);
    for kind in kinds {
        for churn_rate in [0.0, 0.01] {
            let cfg = SimConfig {
                nodes: 60,
                tasks: 6_000,
                strategy: kind,
                churn_rate,
                record_events: true,
                ..SimConfig::default()
            };
            let a = Sim::new(cfg.clone(), 123).run();
            let b = Sim::new(cfg, 123).run();
            assert_eq!(a, b, "{kind:?} with churn {churn_rate} must replay exactly");
        }
    }
}

#[test]
fn composed_stack_is_deterministic_under_any_thread_count() {
    // The StrategyStack composition the registry builds (background
    // churn layered under a Sybil strategy) across rayon pools of
    // different widths — scheduling must not leak into results.
    for kind in [
        StrategyKind::SmartNeighbor,
        StrategyKind::Invitation,
        StrategyKind::CentralizedOracle,
    ] {
        let cfg = SimConfig {
            nodes: 60,
            tasks: 6_000,
            strategy: kind,
            churn_rate: 0.02,
            ..SimConfig::default()
        };
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| run_trials(&cfg, 4, 9));
        let multi = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| run_trials(&cfg, 4, 9));
        assert_eq!(
            single, multi,
            "{kind:?} batch must not depend on thread count"
        );
    }
}

#[test]
fn protocol_substrate_is_deterministic() {
    // The Chord-backed substrate gets the same guarantee as the oracle
    // ring: replaying a seed replays every join, leave, and message.
    use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
    let cfg = ProtocolSimConfig {
        nodes: 32,
        tasks: 1_600,
        strategy: StrategyKind::SmartNeighbor,
        churn_rate: 0.005,
        record_events: true,
        ..ProtocolSimConfig::default()
    };
    let a = run_protocol_sim(&cfg, 21);
    let b = run_protocol_sim(&cfg, 21);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.sybils_created, b.sybils_created);
    assert_eq!(a.events.events(), b.events.events());
}

#[test]
fn run_result_serde_roundtrip() {
    let res = Sim::new(demo_cfg(), 5).run();
    let json = serde_json::to_string(&res).unwrap();
    let back: RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(res, back);
}

#[test]
fn experiment_spec_roundtrip_preserves_config() {
    let spec = ExperimentSpec::new("roundtrip", demo_cfg(), 10, 99);
    let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(spec, back);
    assert_eq!(back.config.snapshot_ticks, vec![0, 5]);
}

#[test]
fn placement_is_strategy_independent() {
    // The same seed must yield the same initial distribution whatever
    // strategy runs later — the property all "same starting
    // configuration" figure comparisons rely on.
    let mut base = demo_cfg();
    base.snapshot_ticks = vec![0];
    let mut churn = base.clone();
    churn.strategy = StrategyKind::Churn;
    churn.churn_rate = 0.05;
    let a = Sim::new(base, 31).run();
    let b = Sim::new(churn, 31).run();
    let la = &a.snapshots[0].loads;
    let lb = &b.snapshots[0].loads;
    let mut sa = la.clone();
    let mut sb = lb.clone();
    sa.sort_unstable();
    sb.sort_unstable();
    assert_eq!(sa, sb, "tick-0 distributions must match");
}
