//! Differential tests: the optimized hot-path `Ring` (pooled task
//! vectors, in-place arc splits, single-lookup pops) against the
//! naive reference implementation in [`autobal::reference`], which
//! preserves the pre-optimization semantics verbatim.
//!
//! Equality here is **bit-for-bit**: not just the same task multisets
//! but the same element order inside every vnode's task vector, so the
//! shared xorshift pop stream consumes identical indices on both sides.

use autobal::reference::{NaiveRing, NaiveSim};
use autobal::sim::{Ring, Sim, SimConfig, StrategyKind};
use autobal::Id;
use proptest::prelude::*;

/// 256 vnode positions spread across the whole 160-bit ring (the top
/// limb holds 32 bits), so the highest occupied position's arc
/// regularly wraps through zero. Limbs are little-endian: `(lo, mid,
/// hi)`.
fn pos_id(v: u8) -> Id {
    Id::from_limbs(0x5DEE_CE66_D154_21C4, 0, (v as u64) << 24)
}

/// Task keys at finer top-limb granularity than the positions, so they
/// interleave through every arc including the wrap arc. Distinct mid
/// limbs keep keys and positions from ever colliding exactly.
fn key_id(v: u16) -> Id {
    Id::from_limbs(1, 0x9E37_79B9, (v as u64) << 16)
}

/// Post-setup operations. `assign_tasks` is deliberately absent: every
/// production caller assigns exactly once at setup (see
/// `Sim::with_placement` and `placement::initial_loads`), so the
/// differential run mirrors that contract — setup inserts, one assign,
/// then arbitrary churn and consumption.
#[derive(Debug, Clone)]
enum Op {
    Insert { pos: u8, owner: u8 },
    Remove { pos: u8 },
    Pop { pos: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..8, any::<u8>(), any::<u8>()).prop_map(|(tag, pos, owner)| match tag {
        0..=2 => Op::Insert { pos, owner },
        3 | 4 => Op::Remove { pos },
        _ => Op::Pop { pos },
    })
}

fn rows_of(ring: &Ring) -> Vec<(Id, usize, Vec<Id>)> {
    ring.iter()
        .map(|(id, v)| (*id, v.owner, v.tasks.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Production-shaped run: setup inserts, one task assignment, then
    /// a random soup of inserts, removals, and pops. Full state
    /// (including task element order) must agree after every single
    /// operation.
    #[test]
    fn ring_matches_naive_reference(
        positions in proptest::collection::vec(any::<u8>(), 1..10),
        keys in proptest::collection::vec(any::<u16>(), 0..60),
        ops in proptest::collection::vec(arb_op(), 1..80),
    ) {
        let mut ring = Ring::new();
        let mut naive = NaiveRing::new();
        for (i, &p) in positions.iter().enumerate() {
            let id = pos_id(p);
            prop_assert_eq!(ring.insert_vnode(id, i).ok(), naive.insert_vnode(id, i).ok());
        }
        let keys: Vec<Id> = keys.into_iter().map(key_id).collect();
        ring.assign_tasks(keys.clone());
        naive.assign_tasks(keys);
        prop_assert_eq!(rows_of(&ring), naive.rows());

        for op in ops {
            match op {
                Op::Insert { pos, owner } => {
                    let id = pos_id(pos);
                    prop_assert_eq!(
                        ring.insert_vnode(id, owner as usize).ok(),
                        naive.insert_vnode(id, owner as usize).ok()
                    );
                }
                Op::Remove { pos } => {
                    let id = pos_id(pos);
                    prop_assert_eq!(
                        ring.remove_vnode(id).ok(),
                        naive.remove_vnode(id).ok()
                    );
                }
                Op::Pop { pos } => {
                    let id = pos_id(pos);
                    prop_assert_eq!(ring.pop_task(id), naive.pop_task(id));
                }
            }
            prop_assert_eq!(ring.len(), naive.len());
            prop_assert_eq!(ring.total_tasks(), naive.total_tasks());
            prop_assert_eq!(rows_of(&ring), naive.rows());
            prop_assert!(ring.check_invariants().is_ok());
        }
    }

    /// Key routing agrees everywhere, including keys that wrap.
    #[test]
    fn routing_matches_naive_reference(
        positions in proptest::collection::vec(any::<u8>(), 1..12),
        probes in proptest::collection::vec(any::<u16>(), 1..32),
    ) {
        let mut ring = Ring::new();
        let mut naive = NaiveRing::new();
        for (i, &p) in positions.iter().enumerate() {
            let id = pos_id(p);
            prop_assert_eq!(ring.insert_vnode(id, i).ok(), naive.insert_vnode(id, i).ok());
        }
        for probe in probes {
            let k = key_id(probe);
            prop_assert_eq!(ring.owner_of_key(k), naive.owner_of_key(k));
            prop_assert_eq!(ring.successor_of(k), naive.successor_of(k));
        }
    }
}

/// A scripted wrap-arc scenario: the highest vnode owns the arc that
/// wraps through zero, and a later insert inside that wrap arc splits
/// it. Pinned explicitly because it is the branchiest path of
/// `insert_vnode`'s in-place split.
#[test]
fn wrap_arc_split_matches_reference() {
    let mut ring = Ring::new();
    let mut naive = NaiveRing::new();

    for (pos, owner) in [(0x40u8, 0usize), (0xF0, 1)] {
        assert!(ring.insert_vnode(pos_id(pos), owner).is_ok());
        assert!(naive.insert_vnode(pos_id(pos), owner).is_ok());
    }
    // Keys in the wrap region (above 0xF0 and below 0x40) and in the
    // middle arc.
    let keys: Vec<Id> = [0xF8_00u16, 0xFE_00, 0x01_00, 0x20_00, 0x30_00, 0x90_00]
        .into_iter()
        .map(key_id)
        .collect();
    ring.assign_tasks(keys.clone());
    naive.assign_tasks(keys);
    assert_eq!(ring.load(pos_id(0x40)), 5, "wrap arc holds 5 keys");

    // Split the wrap arc at 0x08 — it acquires the keys strictly in
    // (0xF0, 0x08], i.e. 0xF8, 0xFE, 0x01.
    let a = ring.insert_vnode(pos_id(0x08), 2);
    let b = naive.insert_vnode(pos_id(0x08), 2);
    assert_eq!(a.ok(), b.ok());
    assert_eq!(a.ok(), Some(3));
    assert_eq!(rows_of(&ring), naive.rows());

    // Merging back on removal restores the wrap arc identically.
    assert_eq!(
        ring.remove_vnode(pos_id(0x08)).ok(),
        naive.remove_vnode(pos_id(0x08)).ok()
    );
    assert_eq!(rows_of(&ring), naive.rows());
    assert_eq!(ring.load(pos_id(0x40)), 5);
}

/// Pool recycling must not leak state: vectors returned to the pool by
/// `remove_vnode` and reused by `insert_vnode` start logically empty.
#[test]
fn pooled_buffers_carry_no_stale_tasks() {
    let mut ring = Ring::new();
    let mut naive = NaiveRing::new();
    for round in 0..10u8 {
        for (i, pos) in [0x10u8, 0x80, 0xE0].into_iter().enumerate() {
            assert_eq!(
                ring.insert_vnode(pos_id(pos), i).ok(),
                naive.insert_vnode(pos_id(pos), i).ok()
            );
        }
        let keys: Vec<Id> = (0..40u16)
            .map(|k| key_id(k.wrapping_mul(1621) ^ round as u16))
            .collect();
        ring.assign_tasks(keys.clone());
        naive.assign_tasks(keys);
        // Drain every node so the final removal is legal (removing the
        // last vnode with tasks still aboard is refused by both).
        for pos in [0x10u8, 0x80, 0xE0] {
            while ring.pop_task(pos_id(pos)) {
                assert!(naive.pop_task(pos_id(pos)));
            }
            assert!(!naive.pop_task(pos_id(pos)));
        }
        for pos in [0xE0u8, 0x80, 0x10] {
            assert_eq!(
                ring.remove_vnode(pos_id(pos)).ok(),
                naive.remove_vnode(pos_id(pos)).ok()
            );
            assert_eq!(rows_of(&ring), naive.rows());
        }
        assert!(ring.is_empty() && naive.is_empty());
        assert_eq!(ring.total_tasks(), 0);
    }
}

/// End-to-end: the optimized simulator and the naive reference
/// simulator produce identical runs for the engines the reference
/// models (no strategy, and background churn).
#[test]
fn naive_sim_matches_optimized_sim() {
    for (strategy, churn_rate) in [(StrategyKind::None, 0.0), (StrategyKind::Churn, 0.05)] {
        let cfg = SimConfig {
            nodes: 40,
            tasks: 2_000,
            strategy,
            churn_rate,
            series_interval: Some(3),
            ..SimConfig::default()
        };
        for seed in [1u64, 42, 0xA0B1_C2D3] {
            let opt = Sim::new(cfg.clone(), seed).run();
            let naive = NaiveSim::new(cfg.clone(), seed).run();
            assert_eq!(opt.ticks, naive.ticks, "{strategy:?} seed {seed}");
            assert_eq!(opt.completed, naive.completed, "{strategy:?} seed {seed}");
            assert_eq!(
                opt.work_per_tick, naive.work_per_tick,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                opt.messages.churn_leaves, naive.churn_leaves,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                opt.messages.churn_joins, naive.churn_joins,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                opt.peak_vnodes, naive.peak_vnodes,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                opt.series.gini, naive.series_gini,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                opt.series.idle, naive.series_idle,
                "{strategy:?} seed {seed}"
            );
        }
    }
}
