//! Differential tests for the sharded arc-range engine: the
//! struct-of-arrays [`ShardedRing`] (behind [`RingStore`]) against the
//! classic ordered-map [`Ring`] and the naive reference in
//! [`autobal::reference`], at every supported shard count.
//!
//! Equality is **bit-for-bit**: identical task element order inside
//! every vnode (so the shared xorshift pop stream consumes identical
//! indices), identical routing answers, and — at the simulator level —
//! identical [`RunResult`]s including trace and metrics bytes, for
//! every strategy, at every shard count, under any rayon thread count.

use autobal::reference::{NaiveRing, NaiveSim};
use autobal::sim::{RingStore, Sim, SimConfig, StrategyKind};
use autobal::Id;
use proptest::prelude::*;

/// Shard counts under differential test. 1 selects the classic engine
/// (the `RingStore::Solo` arm), so the soup also re-verifies the
/// selector's forwarding; 3 is deliberately not a divisor of the id
/// space; 8 puts the `pos_id` population across every shard.
const SHARD_COUNTS: &[usize] = &[1, 2, 3, 8];

/// 256 vnode positions spread across the whole 160-bit ring (top limb
/// holds 32 bits). With 8 shards the arc boundaries sit at `v = 32·k`,
/// so the population regularly straddles shard boundaries and the
/// highest position's arc wraps through zero (and through the shard
/// 7 → 0 seam).
fn pos_id(v: u8) -> Id {
    Id::from_limbs(0x5DEE_CE66_D154_21C4, 0, (v as u64) << 24)
}

/// Task keys at finer top-limb granularity than the positions, so they
/// interleave through every arc including the wrap arc.
fn key_id(v: u16) -> Id {
    Id::from_limbs(1, 0x9E37_79B9, (v as u64) << 16)
}

/// Post-setup operations, mirroring `tests/ring_reference.rs`: setup
/// inserts, one task assignment, then arbitrary churn and consumption.
#[derive(Debug, Clone)]
enum Op {
    Insert { pos: u8, owner: u8 },
    Remove { pos: u8 },
    Pop { pos: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..8, any::<u8>(), any::<u8>()).prop_map(|(tag, pos, owner)| match tag {
        0..=2 => Op::Insert { pos, owner },
        3 | 4 => Op::Remove { pos },
        _ => Op::Pop { pos },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One operation soup, driven simultaneously through the naive
    /// reference and a `RingStore` per shard count. Full state
    /// (including task element order) must agree after every single
    /// operation on every engine.
    #[test]
    fn op_soup_is_bit_identical_across_shard_counts(
        positions in proptest::collection::vec(any::<u8>(), 1..10),
        keys in proptest::collection::vec(any::<u16>(), 0..60),
        ops in proptest::collection::vec(arb_op(), 1..64),
    ) {
        let mut naive = NaiveRing::new();
        let mut stores: Vec<RingStore> =
            SHARD_COUNTS.iter().map(|&s| RingStore::with_shards(s)).collect();
        for (i, &p) in positions.iter().enumerate() {
            let id = pos_id(p);
            let want = naive.insert_vnode(id, i).ok();
            for st in stores.iter_mut() {
                prop_assert_eq!(st.insert_vnode(id, i).ok(), want);
            }
        }
        let keys: Vec<Id> = keys.into_iter().map(key_id).collect();
        naive.assign_tasks(keys.clone());
        for st in stores.iter_mut() {
            st.assign_tasks(keys.clone());
            prop_assert_eq!(st.rows(), naive.rows());
        }

        for op in ops {
            match op {
                Op::Insert { pos, owner } => {
                    let id = pos_id(pos);
                    let want = naive.insert_vnode(id, owner as usize).ok();
                    for st in stores.iter_mut() {
                        prop_assert_eq!(st.insert_vnode(id, owner as usize).ok(), want);
                    }
                }
                Op::Remove { pos } => {
                    let id = pos_id(pos);
                    let want = naive.remove_vnode(id).ok();
                    for st in stores.iter_mut() {
                        prop_assert_eq!(st.remove_vnode(id).ok(), want);
                    }
                }
                Op::Pop { pos } => {
                    let id = pos_id(pos);
                    let want = naive.pop_task(id);
                    for st in stores.iter_mut() {
                        prop_assert_eq!(st.pop_task(id), want);
                    }
                }
            }
            for st in stores.iter() {
                prop_assert_eq!(st.len(), naive.len());
                prop_assert_eq!(st.total_tasks(), naive.total_tasks());
                prop_assert_eq!(st.rows(), naive.rows());
                prop_assert!(st.check_invariants().is_ok());
            }
        }
    }

    /// Routing answers — key ownership, successor/predecessor walks,
    /// and k-neighbor lists (which cross shard seams) — agree across
    /// every shard count.
    #[test]
    fn routing_is_identical_across_shard_counts(
        positions in proptest::collection::vec(any::<u8>(), 1..12),
        probes in proptest::collection::vec(any::<u16>(), 1..32),
    ) {
        let mut stores: Vec<RingStore> =
            SHARD_COUNTS.iter().map(|&s| RingStore::with_shards(s)).collect();
        for (i, &p) in positions.iter().enumerate() {
            let id = pos_id(p);
            for st in stores.iter_mut() {
                let _ = st.insert_vnode(id, i);
            }
        }
        let (solo, rest) = stores.split_first().expect("nonempty");
        for probe in probes {
            let k = key_id(probe);
            for st in rest {
                prop_assert_eq!(st.owner_of_key(k), solo.owner_of_key(k));
                prop_assert_eq!(st.successor_of(k), solo.successor_of(k));
                prop_assert_eq!(st.predecessor_of(k), solo.predecessor_of(k));
                prop_assert_eq!(st.successors(k, 3), solo.successors(k, 3));
                prop_assert_eq!(st.predecessors(k, 3), solo.predecessors(k, 3));
            }
        }
    }
}

/// A scripted cross-shard split: with 8 shards the population sits in
/// shards 0 (`0x10`), 3 (`0x70`), and 7 (`0xF0`). The arc
/// `(0xF0, 0x10]` wraps through zero across the shard 7 → 0 seam, and
/// inserting at `0x70` splits an arc whose keys live in a different
/// shard than the newcomer. Both are the branchiest paths of the
/// sharded `insert_vnode`/`remove_vnode` (cross-shard successor walks
/// plus task migration between shards).
#[test]
fn cross_shard_splits_match_reference() {
    let mut naive = NaiveRing::new();
    let mut store = RingStore::with_shards(8);

    for (pos, owner) in [(0x10u8, 0usize), (0xF0, 1)] {
        assert!(naive.insert_vnode(pos_id(pos), owner).is_ok());
        assert!(store.insert_vnode(pos_id(pos), owner).is_ok());
    }
    // Keys in the wrap region (above 0xF0, below 0x10) and mid-ring.
    let keys: Vec<Id> = [0xF8_00u16, 0xFE_00, 0x01_00, 0x20_00, 0x70_00, 0x90_00]
        .into_iter()
        .map(key_id)
        .collect();
    naive.assign_tasks(keys.clone());
    store.assign_tasks(keys);
    assert_eq!(store.load(pos_id(0x10)), 3, "wrap arc holds 3 keys");
    assert_eq!(store.rows(), naive.rows());

    // Split the long arc (0x10, 0xF0] at 0x70: the newcomer (shard 3)
    // takes the keys in (0x10, 0x70] away from 0xF0 (shard 7).
    assert_eq!(
        store.insert_vnode(pos_id(0x70), 2).ok(),
        naive.insert_vnode(pos_id(0x70), 2).ok()
    );
    assert_eq!(store.rows(), naive.rows());

    // Split the wrap arc at 0x08 (shard 0): keys strictly in
    // (0xF0, 0x08] — 0xF8, 0xFE, 0x01 — migrate from shard 0's 0x10.
    assert_eq!(
        store.insert_vnode(pos_id(0x08), 3).ok(),
        naive.insert_vnode(pos_id(0x08), 3).ok()
    );
    assert_eq!(store.rows(), naive.rows());

    // Removals merge back across the same seams identically.
    for pos in [0x08u8, 0x70] {
        assert_eq!(
            store.remove_vnode(pos_id(pos)).ok(),
            naive.remove_vnode(pos_id(pos)).ok()
        );
        assert_eq!(store.rows(), naive.rows());
    }
    assert_eq!(store.load(pos_id(0x10)), 3);
    assert!(store.check_invariants().is_ok());
}

/// Simulator-level parity: for every strategy (including the
/// centralized oracle) and background churn, a run with `shards` ≥ 2 —
/// which selects the struct-of-arrays engine and, where eligible, the
/// planned parallel pop path — produces a `RunResult` equal to the
/// single-shard classic engine in every field: ticks, work curve,
/// snapshots, message counts, event log, golden float series, trace
/// records, and metrics samples.
#[test]
fn every_strategy_is_shard_count_invariant() {
    let kinds = StrategyKind::ALL
        .iter()
        .copied()
        .chain([StrategyKind::CentralizedOracle]);
    for kind in kinds {
        let base = SimConfig {
            nodes: 60,
            tasks: 6_000,
            strategy: kind,
            churn_rate: 0.01,
            snapshot_ticks: vec![0, 5],
            series_interval: Some(3),
            record_events: true,
            record_trace: true,
            record_metrics: true,
            ..SimConfig::default()
        };
        let solo = Sim::new(
            SimConfig {
                shards: 1,
                ..base.clone()
            },
            123,
        )
        .run();
        for shards in [2u32, 3, 8] {
            let sharded = Sim::new(
                SimConfig {
                    shards,
                    ..base.clone()
                },
                123,
            )
            .run();
            assert_eq!(solo, sharded, "{kind:?} diverged at {shards} shards");
        }
    }
}

/// The fast parallel pop path (every active worker holding exactly its
/// primary — no Sybils) agrees with both the classic engine and the
/// naive reference end to end, with and without churn interruptions.
#[test]
fn sharded_sim_matches_naive_reference() {
    for (strategy, churn_rate) in [(StrategyKind::None, 0.0), (StrategyKind::Churn, 0.05)] {
        let cfg = SimConfig {
            nodes: 40,
            tasks: 2_000,
            strategy,
            churn_rate,
            series_interval: Some(3),
            shards: 4,
            ..SimConfig::default()
        };
        for seed in [1u64, 42, 0xA0B1_C2D3] {
            let sharded = Sim::new(cfg.clone(), seed).run();
            let naive = NaiveSim::new(cfg.clone(), seed).run();
            assert_eq!(sharded.ticks, naive.ticks, "{strategy:?} seed {seed}");
            assert_eq!(
                sharded.completed, naive.completed,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                sharded.work_per_tick, naive.work_per_tick,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                sharded.messages.churn_leaves, naive.churn_leaves,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                sharded.messages.churn_joins, naive.churn_joins,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                sharded.peak_vnodes, naive.peak_vnodes,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                sharded.series.gini, naive.series_gini,
                "{strategy:?} seed {seed}"
            );
            assert_eq!(
                sharded.series.idle, naive.series_idle,
                "{strategy:?} seed {seed}"
            );
        }
    }
}

/// The detached-ledger tick (nothing armed that could observe worker
/// loads mid-run: no churn, no strategy, no sampling or snapshots)
/// plans pops from the ring's dense columns instead of the worker
/// table. It must stay bit-identical to the classic engine and the
/// naive reference — under both capacity models, since the planner
/// reads capacities from a cached column.
#[test]
fn detached_ledger_runs_match_classic_and_naive() {
    use autobal::sim::{Heterogeneity, WorkMeasurement};
    for (heterogeneity, work_measurement) in [
        (Heterogeneity::Homogeneous, WorkMeasurement::OnePerTick),
        (
            Heterogeneity::Heterogeneous,
            WorkMeasurement::StrengthPerTick,
        ),
    ] {
        let base = SimConfig {
            nodes: 70,
            tasks: 7_000,
            strategy: StrategyKind::None,
            churn_rate: 0.0,
            series_interval: None,
            heterogeneity,
            work_measurement,
            ..SimConfig::default()
        };
        let solo = Sim::new(
            SimConfig {
                shards: 1,
                ..base.clone()
            },
            99,
        )
        .run();
        let naive = NaiveSim::new(
            SimConfig {
                shards: 1,
                ..base.clone()
            },
            99,
        )
        .run();
        assert_eq!(solo.ticks, naive.ticks, "{heterogeneity:?}");
        assert_eq!(solo.work_per_tick, naive.work_per_tick, "{heterogeneity:?}");
        for shards in [2u32, 4, 8] {
            let mut sim = Sim::new(
                SimConfig {
                    shards,
                    ..base.clone()
                },
                99,
            );
            // Drive a few ticks by hand first: `active_loads` must stay
            // truthful mid-run even while the worker ledger is stale.
            let mut head_consumed = 0u64;
            for _ in 0..3 {
                head_consumed += sim.step();
            }
            let loads: u64 = sim.active_loads().iter().sum();
            assert_eq!(
                loads,
                sim.remaining_tasks(),
                "stale ledger leaked into active_loads at {shards} shards"
            );
            let sharded = sim.run();
            assert_eq!(
                head_consumed,
                solo.work_per_tick.iter().take(3).sum::<u64>(),
                "{heterogeneity:?} diverged in stepped head at {shards} shards"
            );
            assert_eq!(
                sharded, solo,
                "{heterogeneity:?} diverged at {shards} shards"
            );
        }
    }
}

/// Rayon scheduling must not leak into results: the same sharded run
/// on a 1-thread pool (sequential shard dispatch) and an 8-thread pool
/// (parallel shard dispatch) emits byte-identical trace and metrics
/// JSONL and the same work curve.
#[test]
fn thread_count_does_not_change_trace_or_metrics_bytes() {
    let cfg = SimConfig {
        nodes: 80,
        tasks: 8_000,
        strategy: StrategyKind::Churn,
        churn_rate: 0.02,
        record_trace: true,
        record_metrics: true,
        shards: 8,
        ..SimConfig::default()
    };
    let run = |threads: usize| {
        let cfg = cfg.clone();
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(move || {
                let res = Sim::new(cfg, 7).run();
                (
                    autobal_telemetry::to_jsonl(res.trace.records()),
                    autobal_metrics::sample::to_jsonl(&res.metrics),
                    res.work_per_tick.clone(),
                    res.ticks,
                )
            })
    };
    let single = run(1);
    let multi = run(8);
    assert_eq!(single.0, multi.0, "trace bytes depend on thread count");
    assert_eq!(single.1, multi.1, "metrics bytes depend on thread count");
    assert_eq!((single.2, single.3), (multi.2, multi.3));
}
