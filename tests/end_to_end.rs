//! Cross-crate integration tests: the paper's headline results at
//! reduced scale, exercised through the umbrella `autobal` API exactly
//! as a downstream user would.

use autobal::sim::{Heterogeneity, Sim, SimConfig, StrategyKind, WorkMeasurement};
use autobal::stats::spacings;
use autobal::workload::trials::{run_and_summarize, run_trials};

fn cfg(nodes: usize, tasks: u64, strategy: StrategyKind) -> SimConfig {
    SimConfig {
        nodes,
        tasks,
        strategy,
        ..SimConfig::default()
    }
}

/// The no-strategy runtime factor matches the spacings theory ≈ H_n —
/// the number every other experiment is normalized against.
#[test]
fn baseline_factor_matches_harmonic_prediction() {
    let s = run_and_summarize(&cfg(200, 20_000, StrategyKind::None), 8, 1);
    let predicted = spacings::predicted_baseline_runtime_factor(200); // ≈ 5.88
    assert!(
        (s.mean_runtime_factor - predicted).abs() < 1.0,
        "measured {} vs predicted {predicted}",
        s.mean_runtime_factor
    );
}

/// Table II's shape: the runtime factor decreases monotonically in the
/// churn rate.
#[test]
fn churn_effect_is_monotone_in_rate() {
    let mut last = f64::INFINITY;
    for rate in [0.0, 0.001, 0.01] {
        let c = SimConfig {
            churn_rate: rate,
            ..cfg(150, 30_000, StrategyKind::Churn)
        };
        let s = run_and_summarize(&c, 8, 2);
        assert!(
            s.mean_runtime_factor < last + 0.15,
            "rate {rate}: {} not below previous {last}",
            s.mean_runtime_factor
        );
        last = s.mean_runtime_factor;
    }
    // And the 0.01 run must be a big win, not a tie.
    assert!(last < 4.0, "churn 0.01 factor {last}");
}

/// The paper's core ranking: every strategy beats no strategy, and
/// random injection beats them all.
#[test]
fn strategy_ranking_matches_paper() {
    let trials = 8;
    let factor = |strategy, rate| {
        let c = SimConfig {
            churn_rate: rate,
            ..cfg(150, 15_000, strategy)
        };
        run_and_summarize(&c, trials, 3).mean_runtime_factor
    };
    let none = factor(StrategyKind::None, 0.0);
    let churn = factor(StrategyKind::Churn, 0.01);
    let random = factor(StrategyKind::RandomInjection, 0.0);
    let neighbor = factor(StrategyKind::NeighborInjection, 0.0);
    let smart = factor(StrategyKind::SmartNeighbor, 0.0);
    let invitation = factor(StrategyKind::Invitation, 0.0);

    assert!(random < churn, "random {random} < churn {churn}");
    assert!(random < neighbor, "random {random} < neighbor {neighbor}");
    assert!(
        random < invitation,
        "random {random} < invitation {invitation}"
    );
    for (name, f) in [
        ("churn", churn),
        ("neighbor", neighbor),
        ("smart", smart),
        ("invitation", invitation),
    ] {
        assert!(f < none, "{name} {f} should beat baseline {none}");
    }
    // §VI-B: random injection approaches the ideal.
    assert!(random < 2.2, "random injection factor {random}");
}

/// §VI-B: with more tasks per node, random injection gets closer to
/// ideal (the paper's 1e6 vs 1e5 comparison).
#[test]
fn more_tasks_per_node_improves_random_injection() {
    let light = run_and_summarize(&cfg(100, 10_000, StrategyKind::RandomInjection), 8, 4);
    let heavy = run_and_summarize(&cfg(100, 100_000, StrategyKind::RandomInjection), 8, 4);
    assert!(
        heavy.mean_runtime_factor < light.mean_runtime_factor,
        "heavy {} vs light {}",
        heavy.mean_runtime_factor,
        light.mean_runtime_factor
    );
}

/// §VI conclusions: heterogeneous strength-based networks fare worse
/// under the Sybil strategies than homogeneous ones.
#[test]
fn heterogeneity_with_strength_consumption_hurts() {
    let hom = run_and_summarize(&cfg(150, 15_000, StrategyKind::RandomInjection), 8, 5);
    let het_cfg = SimConfig {
        heterogeneity: Heterogeneity::Heterogeneous,
        work_measurement: WorkMeasurement::StrengthPerTick,
        ..cfg(150, 15_000, StrategyKind::RandomInjection)
    };
    let het = run_and_summarize(&het_cfg, 8, 5);
    assert!(
        het.mean_runtime_factor > hom.mean_runtime_factor,
        "het {} should exceed hom {}",
        het.mean_runtime_factor,
        hom.mean_runtime_factor
    );
}

/// Task conservation holds for every strategy across full runs.
#[test]
fn all_strategies_consume_every_task_exactly_once() {
    for strategy in StrategyKind::ALL {
        let c = SimConfig {
            churn_rate: if strategy == StrategyKind::Churn {
                0.02
            } else {
                0.0
            },
            ..cfg(80, 8_000, strategy)
        };
        for r in run_trials(&c, 3, 6) {
            assert!(r.completed, "{strategy:?} did not finish");
            assert_eq!(
                r.work_per_tick.iter().sum::<u64>(),
                8_000,
                "{strategy:?} consumed a different number of tasks"
            );
        }
    }
}

/// The messages ordering the paper argues: reactive invitation spends
/// fewer strategy messages than the proactive probing strategy.
#[test]
fn invitation_uses_less_bandwidth_than_smart_neighbor() {
    let inv = run_and_summarize(&cfg(150, 15_000, StrategyKind::Invitation), 6, 7);
    let smart = run_and_summarize(&cfg(150, 15_000, StrategyKind::SmartNeighbor), 6, 7);
    assert!(
        inv.messages.strategy_messages() < smart.messages.strategy_messages(),
        "invitation {} vs smart {}",
        inv.messages.strategy_messages(),
        smart.messages.strategy_messages()
    );
}

/// Figure 3's claim: evenly spacing the *nodes* improves the balance
/// but the tasks still cluster, so the runtime factor stays well above
/// 1 — and above the ratio a Sybil strategy reaches.
#[test]
fn even_node_spacing_helps_but_does_not_fix_imbalance() {
    use autobal::workload::gen;
    let nodes = 200usize;
    let tasks = 20_000u64;
    let cfg = SimConfig {
        nodes,
        tasks,
        ..SimConfig::default()
    };
    let sha1 = Sim::new(cfg.clone(), 9).run();

    let even_ids = gen::evenly_spaced_ids(nodes);
    let mut key_rng = autobal::stats::rng::substream(9, 0, autobal::stats::rng::domains::TASKS);
    let keys = gen::sha1_keys(tasks as usize, &mut key_rng);
    let even = Sim::with_placement(cfg.clone(), 9, even_ids, keys).run();

    assert!(
        even.runtime_factor < sha1.runtime_factor,
        "even {} vs sha1 {}",
        even.runtime_factor,
        sha1.runtime_factor
    );
    // But task keys still cluster: even placement is far from ideal…
    assert!(even.runtime_factor > 1.15, "even {}", even.runtime_factor);
    // …and random injection on the *bad* placement still beats it.
    let sybil = Sim::new(
        SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..cfg
        },
        9,
    )
    .run();
    assert!(sybil.runtime_factor < even.runtime_factor + 0.5);
}

/// Snapshots feed the figure pipeline end to end: capture → histogram →
/// CSV, with mass conserved at every step.
#[test]
fn snapshot_to_figure_pipeline_conserves_mass() {
    let c = SimConfig {
        snapshot_ticks: vec![0, 5, 35],
        ..cfg(120, 12_000, StrategyKind::RandomInjection)
    };
    let res = Sim::new(c, 8).run();
    for snap in &res.snapshots {
        let hist = autobal::stats::Histogram::auto(&snap.loads, 25);
        assert_eq!(hist.total() as usize, snap.loads.len());
        let csv = autobal::viz::csv::histogram_series_csv(&[("net", &hist.rows())]);
        let data_rows = csv.lines().count() - 1;
        assert_eq!(data_rows, hist.rows().len());
    }
}
