/root/repo/target/debug/deps/chaos-ec5d73f4c3238853.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-ec5d73f4c3238853: tests/chaos.rs

tests/chaos.rs:
