/root/repo/target/debug/deps/autobal_cli-b31ed4c18d972a80.d: src/bin/autobal-cli.rs

/root/repo/target/debug/deps/autobal_cli-b31ed4c18d972a80: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
