/root/repo/target/debug/deps/autobal_chord-1ca55976fa187bfd.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/libautobal_chord-1ca55976fa187bfd.rlib: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/libautobal_chord-1ca55976fa187bfd.rmeta: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/fault.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
