/root/repo/target/debug/deps/autobal_bench-d1a97cfd0f34eea8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/autobal_bench-d1a97cfd0f34eea8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
