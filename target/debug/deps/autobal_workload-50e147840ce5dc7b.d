/root/repo/target/debug/deps/autobal_workload-50e147840ce5dc7b.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/debug/deps/libautobal_workload-50e147840ce5dc7b.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/debug/deps/libautobal_workload-50e147840ce5dc7b.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/placement.rs:
crates/workload/src/spec.rs:
crates/workload/src/sweep.rs:
crates/workload/src/tables.rs:
crates/workload/src/trials.rs:
