/root/repo/target/debug/deps/autobal_workload-62c54cb0d498ac98.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/debug/deps/libautobal_workload-62c54cb0d498ac98.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/debug/deps/libautobal_workload-62c54cb0d498ac98.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/placement.rs:
crates/workload/src/spec.rs:
crates/workload/src/sweep.rs:
crates/workload/src/tables.rs:
crates/workload/src/trials.rs:
