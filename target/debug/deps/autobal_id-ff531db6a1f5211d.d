/root/repo/target/debug/deps/autobal_id-ff531db6a1f5211d.d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/debug/deps/autobal_id-ff531db6a1f5211d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

crates/id/src/lib.rs:
crates/id/src/embed.rs:
crates/id/src/ring.rs:
crates/id/src/sha1.rs:
crates/id/src/u160.rs:
