/root/repo/target/debug/deps/repro-a37b4110397ea17a.d: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

/root/repo/target/debug/deps/repro-a37b4110397ea17a: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

crates/experiments/src/main.rs:
crates/experiments/src/chordx.rs:
crates/experiments/src/common.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/tables.rs:
crates/experiments/src/textual.rs:
