/root/repo/target/debug/deps/properties-6ca75e3c417785a4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6ca75e3c417785a4: tests/properties.rs

tests/properties.rs:
