/root/repo/target/debug/deps/strategy_parity-288e030eb3e77a8b.d: tests/strategy_parity.rs

/root/repo/target/debug/deps/strategy_parity-288e030eb3e77a8b: tests/strategy_parity.rs

tests/strategy_parity.rs:
