/root/repo/target/debug/deps/autobal_id-739ebc78176aa1c6.d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/debug/deps/libautobal_id-739ebc78176aa1c6.rlib: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/debug/deps/libautobal_id-739ebc78176aa1c6.rmeta: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

crates/id/src/lib.rs:
crates/id/src/embed.rs:
crates/id/src/ring.rs:
crates/id/src/sha1.rs:
crates/id/src/u160.rs:
