/root/repo/target/debug/deps/autobal_cli-26fb4cdb1d982754.d: src/bin/autobal-cli.rs

/root/repo/target/debug/deps/autobal_cli-26fb4cdb1d982754: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
