/root/repo/target/debug/deps/autobal_bench-3290fe17b00b60f3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/autobal_bench-3290fe17b00b60f3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
