/root/repo/target/debug/deps/autobal_chord-f5d256a19f386551.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/libautobal_chord-f5d256a19f386551.rlib: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/libautobal_chord-f5d256a19f386551.rmeta: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
