/root/repo/target/debug/deps/chord_integration-1351a9f7174c056b.d: tests/chord_integration.rs

/root/repo/target/debug/deps/chord_integration-1351a9f7174c056b: tests/chord_integration.rs

tests/chord_integration.rs:
