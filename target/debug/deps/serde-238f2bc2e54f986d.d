/root/repo/target/debug/deps/serde-238f2bc2e54f986d.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-238f2bc2e54f986d: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
