/root/repo/target/debug/deps/serde_derive-e583e8ccb4ec1218.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-e583e8ccb4ec1218.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
