/root/repo/target/debug/deps/autobal_viz-7d8c729a1c2b1df5.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libautobal_viz-7d8c729a1c2b1df5.rlib: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libautobal_viz-7d8c729a1c2b1df5.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/svg.rs:
