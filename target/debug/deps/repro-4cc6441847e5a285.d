/root/repo/target/debug/deps/repro-4cc6441847e5a285.d: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/resilience.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

/root/repo/target/debug/deps/repro-4cc6441847e5a285: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/resilience.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

crates/experiments/src/main.rs:
crates/experiments/src/chordx.rs:
crates/experiments/src/common.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/resilience.rs:
crates/experiments/src/tables.rs:
crates/experiments/src/textual.rs:
