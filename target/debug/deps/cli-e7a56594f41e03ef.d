/root/repo/target/debug/deps/cli-e7a56594f41e03ef.d: tests/cli.rs

/root/repo/target/debug/deps/cli-e7a56594f41e03ef: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_autobal-cli=/root/repo/target/debug/autobal-cli
