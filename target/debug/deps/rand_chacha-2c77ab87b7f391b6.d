/root/repo/target/debug/deps/rand_chacha-2c77ab87b7f391b6.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-2c77ab87b7f391b6: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
