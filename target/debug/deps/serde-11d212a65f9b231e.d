/root/repo/target/debug/deps/serde-11d212a65f9b231e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-11d212a65f9b231e.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-11d212a65f9b231e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
