/root/repo/target/debug/deps/autobal_stats-6ebe347a58d815bb.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/libautobal_stats-6ebe347a58d815bb.rlib: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/libautobal_stats-6ebe347a58d815bb.rmeta: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/fairness.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rng.rs:
crates/stats/src/spacings.rs:
crates/stats/src/summary.rs:
crates/stats/src/zipf.rs:
