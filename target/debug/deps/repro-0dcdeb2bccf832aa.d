/root/repo/target/debug/deps/repro-0dcdeb2bccf832aa.d: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

/root/repo/target/debug/deps/repro-0dcdeb2bccf832aa: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

crates/experiments/src/main.rs:
crates/experiments/src/chordx.rs:
crates/experiments/src/common.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/tables.rs:
crates/experiments/src/textual.rs:
