/root/repo/target/debug/deps/proptest-5eb10c4c69732a7a.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-5eb10c4c69732a7a: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
