/root/repo/target/debug/deps/autobal_cli-b3bcbfd7d07ae654.d: src/bin/autobal-cli.rs

/root/repo/target/debug/deps/autobal_cli-b3bcbfd7d07ae654: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
