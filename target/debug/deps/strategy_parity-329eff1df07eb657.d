/root/repo/target/debug/deps/strategy_parity-329eff1df07eb657.d: tests/strategy_parity.rs

/root/repo/target/debug/deps/strategy_parity-329eff1df07eb657: tests/strategy_parity.rs

tests/strategy_parity.rs:
