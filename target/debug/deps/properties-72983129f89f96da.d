/root/repo/target/debug/deps/properties-72983129f89f96da.d: tests/properties.rs

/root/repo/target/debug/deps/properties-72983129f89f96da: tests/properties.rs

tests/properties.rs:
