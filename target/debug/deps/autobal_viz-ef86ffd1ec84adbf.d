/root/repo/target/debug/deps/autobal_viz-ef86ffd1ec84adbf.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libautobal_viz-ef86ffd1ec84adbf.rlib: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libautobal_viz-ef86ffd1ec84adbf.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/svg.rs:
