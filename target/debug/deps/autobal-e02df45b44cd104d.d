/root/repo/target/debug/deps/autobal-e02df45b44cd104d.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/libautobal-e02df45b44cd104d.rlib: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/libautobal-e02df45b44cd104d.rmeta: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
