/root/repo/target/debug/deps/autobal_bench-9c98488533d5aba6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautobal_bench-9c98488533d5aba6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautobal_bench-9c98488533d5aba6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
