/root/repo/target/debug/deps/autobal-6e055d7655881bfa.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/libautobal-6e055d7655881bfa.rlib: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/libautobal-6e055d7655881bfa.rmeta: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
