/root/repo/target/debug/deps/serde_json-ad2d6c809332b8fe.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/serde_json-ad2d6c809332b8fe: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/value.rs:
vendor/serde_json/src/write.rs:
