/root/repo/target/debug/deps/serde_json-0f61810c81dda6e4.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/libserde_json-0f61810c81dda6e4.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/libserde_json-0f61810c81dda6e4.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/value.rs:
vendor/serde_json/src/write.rs:
