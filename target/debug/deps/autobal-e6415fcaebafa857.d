/root/repo/target/debug/deps/autobal-e6415fcaebafa857.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/autobal-e6415fcaebafa857: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
