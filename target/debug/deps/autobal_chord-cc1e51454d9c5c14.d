/root/repo/target/debug/deps/autobal_chord-cc1e51454d9c5c14.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/libautobal_chord-cc1e51454d9c5c14.rlib: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/libautobal_chord-cc1e51454d9c5c14.rmeta: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/fault.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
