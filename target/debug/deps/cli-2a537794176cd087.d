/root/repo/target/debug/deps/cli-2a537794176cd087.d: tests/cli.rs

/root/repo/target/debug/deps/cli-2a537794176cd087: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_autobal-cli=/root/repo/target/debug/autobal-cli
