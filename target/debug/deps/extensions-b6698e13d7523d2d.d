/root/repo/target/debug/deps/extensions-b6698e13d7523d2d.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-b6698e13d7523d2d: tests/extensions.rs

tests/extensions.rs:
