/root/repo/target/debug/deps/end_to_end-984dc4fd5fdbdda9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-984dc4fd5fdbdda9: tests/end_to_end.rs

tests/end_to_end.rs:
