/root/repo/target/debug/deps/serde_json-75fc891aae8f8f4e.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/libserde_json-75fc891aae8f8f4e.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/libserde_json-75fc891aae8f8f4e.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/value.rs:
vendor/serde_json/src/write.rs:
