/root/repo/target/debug/deps/autobal_bench-6ebc757a2f7db277.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautobal_bench-6ebc757a2f7db277.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautobal_bench-6ebc757a2f7db277.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
