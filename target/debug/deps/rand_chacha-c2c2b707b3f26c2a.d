/root/repo/target/debug/deps/rand_chacha-c2c2b707b3f26c2a.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c2c2b707b3f26c2a.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c2c2b707b3f26c2a.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
