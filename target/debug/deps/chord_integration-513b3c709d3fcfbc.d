/root/repo/target/debug/deps/chord_integration-513b3c709d3fcfbc.d: tests/chord_integration.rs

/root/repo/target/debug/deps/chord_integration-513b3c709d3fcfbc: tests/chord_integration.rs

tests/chord_integration.rs:
