/root/repo/target/debug/deps/differential-a589e21d17c95e61.d: tests/differential.rs

/root/repo/target/debug/deps/differential-a589e21d17c95e61: tests/differential.rs

tests/differential.rs:
