/root/repo/target/debug/deps/autobal_workload-66e9413f2322cf26.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/debug/deps/autobal_workload-66e9413f2322cf26: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/placement.rs:
crates/workload/src/spec.rs:
crates/workload/src/sweep.rs:
crates/workload/src/tables.rs:
crates/workload/src/trials.rs:
