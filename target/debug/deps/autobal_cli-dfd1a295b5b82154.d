/root/repo/target/debug/deps/autobal_cli-dfd1a295b5b82154.d: src/bin/autobal-cli.rs

/root/repo/target/debug/deps/autobal_cli-dfd1a295b5b82154: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
