/root/repo/target/debug/deps/determinism-1505914667243831.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-1505914667243831: tests/determinism.rs

tests/determinism.rs:
