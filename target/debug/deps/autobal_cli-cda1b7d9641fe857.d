/root/repo/target/debug/deps/autobal_cli-cda1b7d9641fe857.d: src/bin/autobal-cli.rs

/root/repo/target/debug/deps/autobal_cli-cda1b7d9641fe857: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
