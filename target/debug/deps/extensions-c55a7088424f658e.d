/root/repo/target/debug/deps/extensions-c55a7088424f658e.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-c55a7088424f658e: tests/extensions.rs

tests/extensions.rs:
