/root/repo/target/debug/deps/autobal-7d2736a3b7ba8539.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/libautobal-7d2736a3b7ba8539.rlib: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/libautobal-7d2736a3b7ba8539.rmeta: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
