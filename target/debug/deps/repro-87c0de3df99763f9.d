/root/repo/target/debug/deps/repro-87c0de3df99763f9.d: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

/root/repo/target/debug/deps/repro-87c0de3df99763f9: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

crates/experiments/src/main.rs:
crates/experiments/src/chordx.rs:
crates/experiments/src/common.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/tables.rs:
crates/experiments/src/textual.rs:
