/root/repo/target/debug/deps/autobal_stats-36ae5611b91f7afd.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/autobal_stats-36ae5611b91f7afd: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/fairness.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rng.rs:
crates/stats/src/spacings.rs:
crates/stats/src/summary.rs:
crates/stats/src/zipf.rs:
