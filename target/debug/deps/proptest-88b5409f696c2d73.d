/root/repo/target/debug/deps/proptest-88b5409f696c2d73.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-88b5409f696c2d73.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-88b5409f696c2d73.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
