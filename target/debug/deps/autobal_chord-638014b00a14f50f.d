/root/repo/target/debug/deps/autobal_chord-638014b00a14f50f.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/debug/deps/autobal_chord-638014b00a14f50f: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/fault.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
