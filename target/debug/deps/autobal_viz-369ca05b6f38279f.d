/root/repo/target/debug/deps/autobal_viz-369ca05b6f38279f.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/autobal_viz-369ca05b6f38279f: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/svg.rs:
