/root/repo/target/debug/deps/autobal_id-9a9eb01001a8dc79.d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/debug/deps/libautobal_id-9a9eb01001a8dc79.rlib: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/debug/deps/libautobal_id-9a9eb01001a8dc79.rmeta: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

crates/id/src/lib.rs:
crates/id/src/embed.rs:
crates/id/src/ring.rs:
crates/id/src/sha1.rs:
crates/id/src/u160.rs:
