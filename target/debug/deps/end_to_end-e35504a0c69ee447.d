/root/repo/target/debug/deps/end_to_end-e35504a0c69ee447.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e35504a0c69ee447: tests/end_to_end.rs

tests/end_to_end.rs:
