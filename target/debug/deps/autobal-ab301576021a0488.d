/root/repo/target/debug/deps/autobal-ab301576021a0488.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/debug/deps/autobal-ab301576021a0488: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
