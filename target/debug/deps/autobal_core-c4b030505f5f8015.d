/root/repo/target/debug/deps/autobal_core-c4b030505f5f8015.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/ring.rs crates/core/src/sim.rs crates/core/src/strategy/mod.rs crates/core/src/strategy/churn.rs crates/core/src/strategy/invitation.rs crates/core/src/strategy/neighbor.rs crates/core/src/strategy/oracle.rs crates/core/src/strategy/random.rs crates/core/src/trace.rs crates/core/src/worker.rs

/root/repo/target/debug/deps/autobal_core-c4b030505f5f8015: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/ring.rs crates/core/src/sim.rs crates/core/src/strategy/mod.rs crates/core/src/strategy/churn.rs crates/core/src/strategy/invitation.rs crates/core/src/strategy/neighbor.rs crates/core/src/strategy/oracle.rs crates/core/src/strategy/random.rs crates/core/src/trace.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/ring.rs:
crates/core/src/sim.rs:
crates/core/src/strategy/mod.rs:
crates/core/src/strategy/churn.rs:
crates/core/src/strategy/invitation.rs:
crates/core/src/strategy/neighbor.rs:
crates/core/src/strategy/oracle.rs:
crates/core/src/strategy/random.rs:
crates/core/src/trace.rs:
crates/core/src/worker.rs:
