/root/repo/target/debug/deps/determinism-99d53ea645ae1e78.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-99d53ea645ae1e78: tests/determinism.rs

tests/determinism.rs:
