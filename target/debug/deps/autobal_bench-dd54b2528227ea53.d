/root/repo/target/debug/deps/autobal_bench-dd54b2528227ea53.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautobal_bench-dd54b2528227ea53.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libautobal_bench-dd54b2528227ea53.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
