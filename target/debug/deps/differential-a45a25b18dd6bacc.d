/root/repo/target/debug/deps/differential-a45a25b18dd6bacc.d: tests/differential.rs

/root/repo/target/debug/deps/differential-a45a25b18dd6bacc: tests/differential.rs

tests/differential.rs:
