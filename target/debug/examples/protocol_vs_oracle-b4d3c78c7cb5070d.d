/root/repo/target/debug/examples/protocol_vs_oracle-b4d3c78c7cb5070d.d: examples/protocol_vs_oracle.rs

/root/repo/target/debug/examples/protocol_vs_oracle-b4d3c78c7cb5070d: examples/protocol_vs_oracle.rs

examples/protocol_vs_oracle.rs:
