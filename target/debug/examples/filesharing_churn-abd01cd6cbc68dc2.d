/root/repo/target/debug/examples/filesharing_churn-abd01cd6cbc68dc2.d: examples/filesharing_churn.rs

/root/repo/target/debug/examples/filesharing_churn-abd01cd6cbc68dc2: examples/filesharing_churn.rs

examples/filesharing_churn.rs:
