/root/repo/target/debug/examples/strategy_shootout-6cfbf4b76b9c254b.d: examples/strategy_shootout.rs

/root/repo/target/debug/examples/strategy_shootout-6cfbf4b76b9c254b: examples/strategy_shootout.rs

examples/strategy_shootout.rs:
