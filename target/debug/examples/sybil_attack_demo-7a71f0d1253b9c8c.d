/root/repo/target/debug/examples/sybil_attack_demo-7a71f0d1253b9c8c.d: examples/sybil_attack_demo.rs

/root/repo/target/debug/examples/sybil_attack_demo-7a71f0d1253b9c8c: examples/sybil_attack_demo.rs

examples/sybil_attack_demo.rs:
