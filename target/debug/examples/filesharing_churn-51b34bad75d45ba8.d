/root/repo/target/debug/examples/filesharing_churn-51b34bad75d45ba8.d: examples/filesharing_churn.rs

/root/repo/target/debug/examples/filesharing_churn-51b34bad75d45ba8: examples/filesharing_churn.rs

examples/filesharing_churn.rs:
