/root/repo/target/debug/examples/sybil_attack_demo-0c1de9c9e620f23a.d: examples/sybil_attack_demo.rs

/root/repo/target/debug/examples/sybil_attack_demo-0c1de9c9e620f23a: examples/sybil_attack_demo.rs

examples/sybil_attack_demo.rs:
