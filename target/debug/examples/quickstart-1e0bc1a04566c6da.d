/root/repo/target/debug/examples/quickstart-1e0bc1a04566c6da.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1e0bc1a04566c6da: examples/quickstart.rs

examples/quickstart.rs:
