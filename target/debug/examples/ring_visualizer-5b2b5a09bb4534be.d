/root/repo/target/debug/examples/ring_visualizer-5b2b5a09bb4534be.d: examples/ring_visualizer.rs

/root/repo/target/debug/examples/ring_visualizer-5b2b5a09bb4534be: examples/ring_visualizer.rs

examples/ring_visualizer.rs:
