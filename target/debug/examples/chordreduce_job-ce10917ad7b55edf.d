/root/repo/target/debug/examples/chordreduce_job-ce10917ad7b55edf.d: examples/chordreduce_job.rs

/root/repo/target/debug/examples/chordreduce_job-ce10917ad7b55edf: examples/chordreduce_job.rs

examples/chordreduce_job.rs:
