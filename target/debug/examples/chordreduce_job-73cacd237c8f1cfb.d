/root/repo/target/debug/examples/chordreduce_job-73cacd237c8f1cfb.d: examples/chordreduce_job.rs

/root/repo/target/debug/examples/chordreduce_job-73cacd237c8f1cfb: examples/chordreduce_job.rs

examples/chordreduce_job.rs:
