/root/repo/target/debug/examples/strategy_shootout-10b2ae8c50e2f50f.d: examples/strategy_shootout.rs

/root/repo/target/debug/examples/strategy_shootout-10b2ae8c50e2f50f: examples/strategy_shootout.rs

examples/strategy_shootout.rs:
