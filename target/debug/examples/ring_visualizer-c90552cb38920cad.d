/root/repo/target/debug/examples/ring_visualizer-c90552cb38920cad.d: examples/ring_visualizer.rs

/root/repo/target/debug/examples/ring_visualizer-c90552cb38920cad: examples/ring_visualizer.rs

examples/ring_visualizer.rs:
