/root/repo/target/debug/examples/quickstart-7881e935e6455d9b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7881e935e6455d9b: examples/quickstart.rs

examples/quickstart.rs:
