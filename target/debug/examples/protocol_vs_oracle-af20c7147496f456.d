/root/repo/target/debug/examples/protocol_vs_oracle-af20c7147496f456.d: examples/protocol_vs_oracle.rs

/root/repo/target/debug/examples/protocol_vs_oracle-af20c7147496f456: examples/protocol_vs_oracle.rs

examples/protocol_vs_oracle.rs:
