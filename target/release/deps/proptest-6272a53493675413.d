/root/repo/target/release/deps/proptest-6272a53493675413.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-6272a53493675413: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
