/root/repo/target/release/deps/serde_derive-481d64228443686e.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-481d64228443686e: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
