/root/repo/target/release/deps/autobal-a156226c28b94974.d: src/lib.rs src/protocol_sim.rs Cargo.toml

/root/repo/target/release/deps/libautobal-a156226c28b94974.rmeta: src/lib.rs src/protocol_sim.rs Cargo.toml

src/lib.rs:
src/protocol_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
