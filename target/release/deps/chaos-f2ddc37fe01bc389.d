/root/repo/target/release/deps/chaos-f2ddc37fe01bc389.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-f2ddc37fe01bc389: tests/chaos.rs

tests/chaos.rs:
