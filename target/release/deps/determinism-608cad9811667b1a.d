/root/repo/target/release/deps/determinism-608cad9811667b1a.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-608cad9811667b1a: tests/determinism.rs

tests/determinism.rs:
