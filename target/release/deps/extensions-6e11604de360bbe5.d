/root/repo/target/release/deps/extensions-6e11604de360bbe5.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-6e11604de360bbe5.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
