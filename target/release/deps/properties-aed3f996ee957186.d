/root/repo/target/release/deps/properties-aed3f996ee957186.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-aed3f996ee957186.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
