/root/repo/target/release/deps/autobal-4f2e580fa9db92e7.d: src/lib.rs src/protocol_sim.rs Cargo.toml

/root/repo/target/release/deps/libautobal-4f2e580fa9db92e7.rmeta: src/lib.rs src/protocol_sim.rs Cargo.toml

src/lib.rs:
src/protocol_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
