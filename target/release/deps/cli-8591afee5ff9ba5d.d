/root/repo/target/release/deps/cli-8591afee5ff9ba5d.d: tests/cli.rs

/root/repo/target/release/deps/cli-8591afee5ff9ba5d: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_autobal-cli=/root/repo/target/release/autobal-cli
