/root/repo/target/release/deps/chaos-5b88e8de30fdbca0.d: tests/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-5b88e8de30fdbca0.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
