/root/repo/target/release/deps/rand_chacha-0db83a338651c3df.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-0db83a338651c3df: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
