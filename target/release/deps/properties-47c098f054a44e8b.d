/root/repo/target/release/deps/properties-47c098f054a44e8b.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-47c098f054a44e8b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
