/root/repo/target/release/deps/determinism-740d64be3f22486b.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-740d64be3f22486b: tests/determinism.rs

tests/determinism.rs:
