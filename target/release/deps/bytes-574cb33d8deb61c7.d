/root/repo/target/release/deps/bytes-574cb33d8deb61c7.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-574cb33d8deb61c7.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-574cb33d8deb61c7.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
