/root/repo/target/release/deps/autobal_stats-b73a10babdf2b069.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/autobal_stats-b73a10babdf2b069: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/fairness.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rng.rs:
crates/stats/src/spacings.rs:
crates/stats/src/summary.rs:
crates/stats/src/zipf.rs:
