/root/repo/target/release/deps/autobal-28d214a64c776c24.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/release/deps/autobal-28d214a64c776c24: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
