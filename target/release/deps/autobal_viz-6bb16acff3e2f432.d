/root/repo/target/release/deps/autobal_viz-6bb16acff3e2f432.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/autobal_viz-6bb16acff3e2f432: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/svg.rs:
