/root/repo/target/release/deps/chord_integration-8c81f6e7f0ab0ea9.d: tests/chord_integration.rs

/root/repo/target/release/deps/chord_integration-8c81f6e7f0ab0ea9: tests/chord_integration.rs

tests/chord_integration.rs:
