/root/repo/target/release/deps/chord_integration-104bb1590f820154.d: tests/chord_integration.rs

/root/repo/target/release/deps/chord_integration-104bb1590f820154: tests/chord_integration.rs

tests/chord_integration.rs:
