/root/repo/target/release/deps/rand_chacha-ab60041e78a93520.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-ab60041e78a93520.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-ab60041e78a93520.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
