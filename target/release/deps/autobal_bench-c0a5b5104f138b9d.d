/root/repo/target/release/deps/autobal_bench-c0a5b5104f138b9d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/autobal_bench-c0a5b5104f138b9d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
