/root/repo/target/release/deps/autobal_id-5d02382e042fceef.d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/release/deps/autobal_id-5d02382e042fceef: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

crates/id/src/lib.rs:
crates/id/src/embed.rs:
crates/id/src/ring.rs:
crates/id/src/sha1.rs:
crates/id/src/u160.rs:
