/root/repo/target/release/deps/strategy_parity-c7af0df56b35baa2.d: tests/strategy_parity.rs

/root/repo/target/release/deps/strategy_parity-c7af0df56b35baa2: tests/strategy_parity.rs

tests/strategy_parity.rs:
