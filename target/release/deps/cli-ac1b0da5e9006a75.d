/root/repo/target/release/deps/cli-ac1b0da5e9006a75.d: tests/cli.rs Cargo.toml

/root/repo/target/release/deps/libcli-ac1b0da5e9006a75.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_autobal-cli=placeholder:autobal-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
