/root/repo/target/release/deps/repro-3b40ec69e927da54.d: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/resilience.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

/root/repo/target/release/deps/repro-3b40ec69e927da54: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/resilience.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

crates/experiments/src/main.rs:
crates/experiments/src/chordx.rs:
crates/experiments/src/common.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/resilience.rs:
crates/experiments/src/tables.rs:
crates/experiments/src/textual.rs:
