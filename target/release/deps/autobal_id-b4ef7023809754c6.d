/root/repo/target/release/deps/autobal_id-b4ef7023809754c6.d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/release/deps/libautobal_id-b4ef7023809754c6.rlib: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

/root/repo/target/release/deps/libautobal_id-b4ef7023809754c6.rmeta: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs

crates/id/src/lib.rs:
crates/id/src/embed.rs:
crates/id/src/ring.rs:
crates/id/src/sha1.rs:
crates/id/src/u160.rs:
