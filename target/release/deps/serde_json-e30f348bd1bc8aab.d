/root/repo/target/release/deps/serde_json-e30f348bd1bc8aab.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/release/deps/serde_json-e30f348bd1bc8aab: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/value.rs:
vendor/serde_json/src/write.rs:
