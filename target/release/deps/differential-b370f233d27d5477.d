/root/repo/target/release/deps/differential-b370f233d27d5477.d: tests/differential.rs

/root/repo/target/release/deps/differential-b370f233d27d5477: tests/differential.rs

tests/differential.rs:
