/root/repo/target/release/deps/autobal-12d0e299f215f013.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/release/deps/libautobal-12d0e299f215f013.rlib: src/lib.rs src/protocol_sim.rs

/root/repo/target/release/deps/libautobal-12d0e299f215f013.rmeta: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
