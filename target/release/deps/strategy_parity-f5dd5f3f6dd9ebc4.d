/root/repo/target/release/deps/strategy_parity-f5dd5f3f6dd9ebc4.d: tests/strategy_parity.rs

/root/repo/target/release/deps/strategy_parity-f5dd5f3f6dd9ebc4: tests/strategy_parity.rs

tests/strategy_parity.rs:
