/root/repo/target/release/deps/autobal-e8f0599558c6190b.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/release/deps/autobal-e8f0599558c6190b: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
