/root/repo/target/release/deps/extensions-4a9162b8eb140057.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-4a9162b8eb140057.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
