/root/repo/target/release/deps/proptest-f5c334cf79c86f66.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-f5c334cf79c86f66.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-f5c334cf79c86f66.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
