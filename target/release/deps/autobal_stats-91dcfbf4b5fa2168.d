/root/repo/target/release/deps/autobal_stats-91dcfbf4b5fa2168.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/libautobal_stats-91dcfbf4b5fa2168.rlib: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/libautobal_stats-91dcfbf4b5fa2168.rmeta: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/fairness.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rng.rs:
crates/stats/src/spacings.rs:
crates/stats/src/summary.rs:
crates/stats/src/zipf.rs:
