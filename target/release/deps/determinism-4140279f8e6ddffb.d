/root/repo/target/release/deps/determinism-4140279f8e6ddffb.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-4140279f8e6ddffb.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
