/root/repo/target/release/deps/autobal_cli-0c811517b72e69ac.d: src/bin/autobal-cli.rs

/root/repo/target/release/deps/autobal_cli-0c811517b72e69ac: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
