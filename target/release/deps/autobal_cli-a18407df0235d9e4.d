/root/repo/target/release/deps/autobal_cli-a18407df0235d9e4.d: src/bin/autobal-cli.rs Cargo.toml

/root/repo/target/release/deps/libautobal_cli-a18407df0235d9e4.rmeta: src/bin/autobal-cli.rs Cargo.toml

src/bin/autobal-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
