/root/repo/target/release/deps/cli-64839d2184063aed.d: tests/cli.rs

/root/repo/target/release/deps/cli-64839d2184063aed: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_autobal-cli=/root/repo/target/release/autobal-cli
