/root/repo/target/release/deps/differential-4d98856f3ca5f93f.d: tests/differential.rs Cargo.toml

/root/repo/target/release/deps/libdifferential-4d98856f3ca5f93f.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
