/root/repo/target/release/deps/bytes-599d8f2908133cce.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-599d8f2908133cce.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
