/root/repo/target/release/deps/serde_json-8a528fa732c5c748.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-8a528fa732c5c748.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs Cargo.toml

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/value.rs:
vendor/serde_json/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
