/root/repo/target/release/deps/serde_json-9dc0f232a475d285.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/release/deps/libserde_json-9dc0f232a475d285.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

/root/repo/target/release/deps/libserde_json-9dc0f232a475d285.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/value.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/value.rs:
vendor/serde_json/src/write.rs:
