/root/repo/target/release/deps/determinism-1a7fdb14122f2d1e.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-1a7fdb14122f2d1e.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
