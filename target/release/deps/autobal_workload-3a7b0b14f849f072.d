/root/repo/target/release/deps/autobal_workload-3a7b0b14f849f072.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/release/deps/autobal_workload-3a7b0b14f849f072: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/placement.rs:
crates/workload/src/spec.rs:
crates/workload/src/sweep.rs:
crates/workload/src/tables.rs:
crates/workload/src/trials.rs:
