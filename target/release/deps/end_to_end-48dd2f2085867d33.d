/root/repo/target/release/deps/end_to_end-48dd2f2085867d33.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-48dd2f2085867d33: tests/end_to_end.rs

tests/end_to_end.rs:
