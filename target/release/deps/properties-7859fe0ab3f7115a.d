/root/repo/target/release/deps/properties-7859fe0ab3f7115a.d: tests/properties.rs

/root/repo/target/release/deps/properties-7859fe0ab3f7115a: tests/properties.rs

tests/properties.rs:
