/root/repo/target/release/deps/autobal_chord-7f4e7694d4ee557d.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs Cargo.toml

/root/repo/target/release/deps/libautobal_chord-7f4e7694d4ee557d.rmeta: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs Cargo.toml

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/fault.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
