/root/repo/target/release/deps/autobal-e8fa897f741f9392.d: src/lib.rs src/protocol_sim.rs

/root/repo/target/release/deps/libautobal-e8fa897f741f9392.rlib: src/lib.rs src/protocol_sim.rs

/root/repo/target/release/deps/libautobal-e8fa897f741f9392.rmeta: src/lib.rs src/protocol_sim.rs

src/lib.rs:
src/protocol_sim.rs:
