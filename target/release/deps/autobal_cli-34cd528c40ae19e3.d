/root/repo/target/release/deps/autobal_cli-34cd528c40ae19e3.d: src/bin/autobal-cli.rs Cargo.toml

/root/repo/target/release/deps/libautobal_cli-34cd528c40ae19e3.rmeta: src/bin/autobal-cli.rs Cargo.toml

src/bin/autobal-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
