/root/repo/target/release/deps/autobal_viz-5c62bd7e1dac7283.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs Cargo.toml

/root/repo/target/release/deps/libautobal_viz-5c62bd7e1dac7283.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs Cargo.toml

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
