/root/repo/target/release/deps/properties-0d5779677fd90405.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-0d5779677fd90405.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
