/root/repo/target/release/deps/cli-ccc789df0487870d.d: tests/cli.rs Cargo.toml

/root/repo/target/release/deps/libcli-ccc789df0487870d.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_autobal-cli=placeholder:autobal-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
