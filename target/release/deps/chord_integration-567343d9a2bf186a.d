/root/repo/target/release/deps/chord_integration-567343d9a2bf186a.d: tests/chord_integration.rs Cargo.toml

/root/repo/target/release/deps/libchord_integration-567343d9a2bf186a.rmeta: tests/chord_integration.rs Cargo.toml

tests/chord_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
