/root/repo/target/release/deps/autobal_bench-1cfb6b3d0274eab3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/autobal_bench-1cfb6b3d0274eab3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
