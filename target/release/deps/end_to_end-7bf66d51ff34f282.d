/root/repo/target/release/deps/end_to_end-7bf66d51ff34f282.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-7bf66d51ff34f282: tests/end_to_end.rs

tests/end_to_end.rs:
