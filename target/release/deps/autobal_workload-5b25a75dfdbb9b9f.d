/root/repo/target/release/deps/autobal_workload-5b25a75dfdbb9b9f.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/release/deps/libautobal_workload-5b25a75dfdbb9b9f.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

/root/repo/target/release/deps/libautobal_workload-5b25a75dfdbb9b9f.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/placement.rs:
crates/workload/src/spec.rs:
crates/workload/src/sweep.rs:
crates/workload/src/tables.rs:
crates/workload/src/trials.rs:
