/root/repo/target/release/deps/autobal_workload-28494e52c340ae1e.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs Cargo.toml

/root/repo/target/release/deps/libautobal_workload-28494e52c340ae1e.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/placement.rs crates/workload/src/spec.rs crates/workload/src/sweep.rs crates/workload/src/tables.rs crates/workload/src/trials.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/placement.rs:
crates/workload/src/spec.rs:
crates/workload/src/sweep.rs:
crates/workload/src/tables.rs:
crates/workload/src/trials.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
