/root/repo/target/release/deps/extensions-1162bb1ad8fc7b6e.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-1162bb1ad8fc7b6e: tests/extensions.rs

tests/extensions.rs:
