/root/repo/target/release/deps/extensions-93b514100ad0c9d4.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-93b514100ad0c9d4.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
