/root/repo/target/release/deps/autobal_cli-5591b514bf7073d2.d: src/bin/autobal-cli.rs

/root/repo/target/release/deps/autobal_cli-5591b514bf7073d2: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
