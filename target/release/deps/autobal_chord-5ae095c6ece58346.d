/root/repo/target/release/deps/autobal_chord-5ae095c6ece58346.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/release/deps/autobal_chord-5ae095c6ece58346: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
