/root/repo/target/release/deps/strategy_parity-0b311ac58a325db1.d: tests/strategy_parity.rs Cargo.toml

/root/repo/target/release/deps/libstrategy_parity-0b311ac58a325db1.rmeta: tests/strategy_parity.rs Cargo.toml

tests/strategy_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
