/root/repo/target/release/deps/autobal_id-328c9d94fa71fdb5.d: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs Cargo.toml

/root/repo/target/release/deps/libautobal_id-328c9d94fa71fdb5.rmeta: crates/id/src/lib.rs crates/id/src/embed.rs crates/id/src/ring.rs crates/id/src/sha1.rs crates/id/src/u160.rs Cargo.toml

crates/id/src/lib.rs:
crates/id/src/embed.rs:
crates/id/src/ring.rs:
crates/id/src/sha1.rs:
crates/id/src/u160.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
