/root/repo/target/release/deps/serde-cb026f152f122559.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-cb026f152f122559: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
