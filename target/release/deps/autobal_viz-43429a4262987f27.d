/root/repo/target/release/deps/autobal_viz-43429a4262987f27.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/libautobal_viz-43429a4262987f27.rlib: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/libautobal_viz-43429a4262987f27.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/svg.rs:
