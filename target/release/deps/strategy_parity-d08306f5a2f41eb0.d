/root/repo/target/release/deps/strategy_parity-d08306f5a2f41eb0.d: tests/strategy_parity.rs Cargo.toml

/root/repo/target/release/deps/libstrategy_parity-d08306f5a2f41eb0.rmeta: tests/strategy_parity.rs Cargo.toml

tests/strategy_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
