/root/repo/target/release/deps/determinism-60f5041266eb2a1a.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-60f5041266eb2a1a.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
