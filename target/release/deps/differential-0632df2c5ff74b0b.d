/root/repo/target/release/deps/differential-0632df2c5ff74b0b.d: tests/differential.rs Cargo.toml

/root/repo/target/release/deps/libdifferential-0632df2c5ff74b0b.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
