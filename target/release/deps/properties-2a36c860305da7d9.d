/root/repo/target/release/deps/properties-2a36c860305da7d9.d: tests/properties.rs

/root/repo/target/release/deps/properties-2a36c860305da7d9: tests/properties.rs

tests/properties.rs:
