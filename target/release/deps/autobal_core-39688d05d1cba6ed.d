/root/repo/target/release/deps/autobal_core-39688d05d1cba6ed.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/ring.rs crates/core/src/sim.rs crates/core/src/strategy/mod.rs crates/core/src/strategy/churn.rs crates/core/src/strategy/invitation.rs crates/core/src/strategy/neighbor.rs crates/core/src/strategy/oracle.rs crates/core/src/strategy/random.rs crates/core/src/trace.rs crates/core/src/worker.rs Cargo.toml

/root/repo/target/release/deps/libautobal_core-39688d05d1cba6ed.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/ring.rs crates/core/src/sim.rs crates/core/src/strategy/mod.rs crates/core/src/strategy/churn.rs crates/core/src/strategy/invitation.rs crates/core/src/strategy/neighbor.rs crates/core/src/strategy/oracle.rs crates/core/src/strategy/random.rs crates/core/src/trace.rs crates/core/src/worker.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/ring.rs:
crates/core/src/sim.rs:
crates/core/src/strategy/mod.rs:
crates/core/src/strategy/churn.rs:
crates/core/src/strategy/invitation.rs:
crates/core/src/strategy/neighbor.rs:
crates/core/src/strategy/oracle.rs:
crates/core/src/strategy/random.rs:
crates/core/src/trace.rs:
crates/core/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
