/root/repo/target/release/deps/autobal_cli-fae793150d8d286f.d: src/bin/autobal-cli.rs

/root/repo/target/release/deps/autobal_cli-fae793150d8d286f: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
