/root/repo/target/release/deps/strategy_parity-7e5f300f292d1f3b.d: tests/strategy_parity.rs Cargo.toml

/root/repo/target/release/deps/libstrategy_parity-7e5f300f292d1f3b.rmeta: tests/strategy_parity.rs Cargo.toml

tests/strategy_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
