/root/repo/target/release/deps/repro-00337f0f76c1c255.d: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

/root/repo/target/release/deps/repro-00337f0f76c1c255: crates/experiments/src/main.rs crates/experiments/src/chordx.rs crates/experiments/src/common.rs crates/experiments/src/figures.rs crates/experiments/src/tables.rs crates/experiments/src/textual.rs

crates/experiments/src/main.rs:
crates/experiments/src/chordx.rs:
crates/experiments/src/common.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/tables.rs:
crates/experiments/src/textual.rs:
