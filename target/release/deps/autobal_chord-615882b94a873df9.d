/root/repo/target/release/deps/autobal_chord-615882b94a873df9.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/release/deps/autobal_chord-615882b94a873df9: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/fault.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
