/root/repo/target/release/deps/differential-d1dc94fe1d5c367a.d: tests/differential.rs Cargo.toml

/root/repo/target/release/deps/libdifferential-d1dc94fe1d5c367a.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
