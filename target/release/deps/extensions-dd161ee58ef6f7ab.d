/root/repo/target/release/deps/extensions-dd161ee58ef6f7ab.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-dd161ee58ef6f7ab: tests/extensions.rs

tests/extensions.rs:
