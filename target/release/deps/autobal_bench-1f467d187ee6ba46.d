/root/repo/target/release/deps/autobal_bench-1f467d187ee6ba46.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libautobal_bench-1f467d187ee6ba46.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libautobal_bench-1f467d187ee6ba46.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
