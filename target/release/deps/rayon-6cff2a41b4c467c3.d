/root/repo/target/release/deps/rayon-6cff2a41b4c467c3.d: vendor/rayon/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librayon-6cff2a41b4c467c3.rmeta: vendor/rayon/src/lib.rs Cargo.toml

vendor/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
