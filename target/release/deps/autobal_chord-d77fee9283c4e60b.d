/root/repo/target/release/deps/autobal_chord-d77fee9283c4e60b.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/release/deps/libautobal_chord-d77fee9283c4e60b.rlib: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/release/deps/libautobal_chord-d77fee9283c4e60b.rmeta: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/fault.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/fault.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
