/root/repo/target/release/deps/differential-157d9bab2b2cc5a3.d: tests/differential.rs

/root/repo/target/release/deps/differential-157d9bab2b2cc5a3: tests/differential.rs

tests/differential.rs:
