/root/repo/target/release/deps/bytes-9c51431e3b8b83e4.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-9c51431e3b8b83e4: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
