/root/repo/target/release/deps/autobal_chord-0a1651ba2acb922e.d: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/release/deps/libautobal_chord-0a1651ba2acb922e.rlib: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

/root/repo/target/release/deps/libautobal_chord-0a1651ba2acb922e.rmeta: crates/chord/src/lib.rs crates/chord/src/eventnet.rs crates/chord/src/kv.rs crates/chord/src/maintenance.rs crates/chord/src/messages.rs crates/chord/src/network.rs crates/chord/src/node.rs crates/chord/src/routing.rs

crates/chord/src/lib.rs:
crates/chord/src/eventnet.rs:
crates/chord/src/kv.rs:
crates/chord/src/maintenance.rs:
crates/chord/src/messages.rs:
crates/chord/src/network.rs:
crates/chord/src/node.rs:
crates/chord/src/routing.rs:
