/root/repo/target/release/deps/rand-ae7aa270e9a615a2.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/rand-ae7aa270e9a615a2: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
