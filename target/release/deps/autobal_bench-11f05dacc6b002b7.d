/root/repo/target/release/deps/autobal_bench-11f05dacc6b002b7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libautobal_bench-11f05dacc6b002b7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libautobal_bench-11f05dacc6b002b7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
