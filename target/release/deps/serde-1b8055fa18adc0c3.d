/root/repo/target/release/deps/serde-1b8055fa18adc0c3.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1b8055fa18adc0c3.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1b8055fa18adc0c3.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
