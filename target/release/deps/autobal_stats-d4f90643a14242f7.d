/root/repo/target/release/deps/autobal_stats-d4f90643a14242f7.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs Cargo.toml

/root/repo/target/release/deps/libautobal_stats-d4f90643a14242f7.rmeta: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/fairness.rs crates/stats/src/histogram.rs crates/stats/src/rng.rs crates/stats/src/spacings.rs crates/stats/src/summary.rs crates/stats/src/zipf.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/fairness.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rng.rs:
crates/stats/src/spacings.rs:
crates/stats/src/summary.rs:
crates/stats/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
