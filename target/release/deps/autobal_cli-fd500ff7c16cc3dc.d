/root/repo/target/release/deps/autobal_cli-fd500ff7c16cc3dc.d: src/bin/autobal-cli.rs

/root/repo/target/release/deps/autobal_cli-fd500ff7c16cc3dc: src/bin/autobal-cli.rs

src/bin/autobal-cli.rs:
