/root/repo/target/release/deps/chord_integration-0419cefcc6117f26.d: tests/chord_integration.rs Cargo.toml

/root/repo/target/release/deps/libchord_integration-0419cefcc6117f26.rmeta: tests/chord_integration.rs Cargo.toml

tests/chord_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
