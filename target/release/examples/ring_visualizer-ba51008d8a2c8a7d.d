/root/repo/target/release/examples/ring_visualizer-ba51008d8a2c8a7d.d: examples/ring_visualizer.rs Cargo.toml

/root/repo/target/release/examples/libring_visualizer-ba51008d8a2c8a7d.rmeta: examples/ring_visualizer.rs Cargo.toml

examples/ring_visualizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
