/root/repo/target/release/examples/quickstart-a2eec5effa656f07.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-a2eec5effa656f07.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
