/root/repo/target/release/examples/chordreduce_job-0f0f1422c44aea99.d: examples/chordreduce_job.rs

/root/repo/target/release/examples/chordreduce_job-0f0f1422c44aea99: examples/chordreduce_job.rs

examples/chordreduce_job.rs:
