/root/repo/target/release/examples/protocol_vs_oracle-69e2bc7172a72762.d: examples/protocol_vs_oracle.rs

/root/repo/target/release/examples/protocol_vs_oracle-69e2bc7172a72762: examples/protocol_vs_oracle.rs

examples/protocol_vs_oracle.rs:
