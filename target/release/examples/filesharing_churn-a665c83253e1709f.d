/root/repo/target/release/examples/filesharing_churn-a665c83253e1709f.d: examples/filesharing_churn.rs

/root/repo/target/release/examples/filesharing_churn-a665c83253e1709f: examples/filesharing_churn.rs

examples/filesharing_churn.rs:
