/root/repo/target/release/examples/filesharing_churn-b7990feb1420f24c.d: examples/filesharing_churn.rs Cargo.toml

/root/repo/target/release/examples/libfilesharing_churn-b7990feb1420f24c.rmeta: examples/filesharing_churn.rs Cargo.toml

examples/filesharing_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
