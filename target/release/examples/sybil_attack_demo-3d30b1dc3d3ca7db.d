/root/repo/target/release/examples/sybil_attack_demo-3d30b1dc3d3ca7db.d: examples/sybil_attack_demo.rs Cargo.toml

/root/repo/target/release/examples/libsybil_attack_demo-3d30b1dc3d3ca7db.rmeta: examples/sybil_attack_demo.rs Cargo.toml

examples/sybil_attack_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
