/root/repo/target/release/examples/quickstart-6151d74d8dc81e23.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-6151d74d8dc81e23.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
