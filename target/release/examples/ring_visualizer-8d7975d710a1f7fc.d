/root/repo/target/release/examples/ring_visualizer-8d7975d710a1f7fc.d: examples/ring_visualizer.rs Cargo.toml

/root/repo/target/release/examples/libring_visualizer-8d7975d710a1f7fc.rmeta: examples/ring_visualizer.rs Cargo.toml

examples/ring_visualizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
