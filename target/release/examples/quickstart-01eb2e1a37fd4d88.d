/root/repo/target/release/examples/quickstart-01eb2e1a37fd4d88.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-01eb2e1a37fd4d88: examples/quickstart.rs

examples/quickstart.rs:
