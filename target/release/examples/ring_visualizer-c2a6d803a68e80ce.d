/root/repo/target/release/examples/ring_visualizer-c2a6d803a68e80ce.d: examples/ring_visualizer.rs Cargo.toml

/root/repo/target/release/examples/libring_visualizer-c2a6d803a68e80ce.rmeta: examples/ring_visualizer.rs Cargo.toml

examples/ring_visualizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
