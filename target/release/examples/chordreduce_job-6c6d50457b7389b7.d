/root/repo/target/release/examples/chordreduce_job-6c6d50457b7389b7.d: examples/chordreduce_job.rs

/root/repo/target/release/examples/chordreduce_job-6c6d50457b7389b7: examples/chordreduce_job.rs

examples/chordreduce_job.rs:
