/root/repo/target/release/examples/filesharing_churn-f21949cbf567ca7a.d: examples/filesharing_churn.rs

/root/repo/target/release/examples/filesharing_churn-f21949cbf567ca7a: examples/filesharing_churn.rs

examples/filesharing_churn.rs:
