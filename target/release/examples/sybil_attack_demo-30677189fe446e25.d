/root/repo/target/release/examples/sybil_attack_demo-30677189fe446e25.d: examples/sybil_attack_demo.rs

/root/repo/target/release/examples/sybil_attack_demo-30677189fe446e25: examples/sybil_attack_demo.rs

examples/sybil_attack_demo.rs:
