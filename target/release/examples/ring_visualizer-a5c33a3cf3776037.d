/root/repo/target/release/examples/ring_visualizer-a5c33a3cf3776037.d: examples/ring_visualizer.rs

/root/repo/target/release/examples/ring_visualizer-a5c33a3cf3776037: examples/ring_visualizer.rs

examples/ring_visualizer.rs:
