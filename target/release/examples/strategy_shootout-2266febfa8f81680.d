/root/repo/target/release/examples/strategy_shootout-2266febfa8f81680.d: examples/strategy_shootout.rs Cargo.toml

/root/repo/target/release/examples/libstrategy_shootout-2266febfa8f81680.rmeta: examples/strategy_shootout.rs Cargo.toml

examples/strategy_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
