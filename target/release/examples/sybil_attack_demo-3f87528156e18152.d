/root/repo/target/release/examples/sybil_attack_demo-3f87528156e18152.d: examples/sybil_attack_demo.rs

/root/repo/target/release/examples/sybil_attack_demo-3f87528156e18152: examples/sybil_attack_demo.rs

examples/sybil_attack_demo.rs:
