/root/repo/target/release/examples/ring_visualizer-51762961d333cef0.d: examples/ring_visualizer.rs

/root/repo/target/release/examples/ring_visualizer-51762961d333cef0: examples/ring_visualizer.rs

examples/ring_visualizer.rs:
