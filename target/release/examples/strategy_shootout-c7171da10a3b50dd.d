/root/repo/target/release/examples/strategy_shootout-c7171da10a3b50dd.d: examples/strategy_shootout.rs

/root/repo/target/release/examples/strategy_shootout-c7171da10a3b50dd: examples/strategy_shootout.rs

examples/strategy_shootout.rs:
