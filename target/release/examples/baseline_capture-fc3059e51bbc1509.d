/root/repo/target/release/examples/baseline_capture-fc3059e51bbc1509.d: examples/baseline_capture.rs

/root/repo/target/release/examples/baseline_capture-fc3059e51bbc1509: examples/baseline_capture.rs

examples/baseline_capture.rs:
