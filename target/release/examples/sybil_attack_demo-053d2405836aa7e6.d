/root/repo/target/release/examples/sybil_attack_demo-053d2405836aa7e6.d: examples/sybil_attack_demo.rs Cargo.toml

/root/repo/target/release/examples/libsybil_attack_demo-053d2405836aa7e6.rmeta: examples/sybil_attack_demo.rs Cargo.toml

examples/sybil_attack_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
