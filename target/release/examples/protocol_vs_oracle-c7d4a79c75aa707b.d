/root/repo/target/release/examples/protocol_vs_oracle-c7d4a79c75aa707b.d: examples/protocol_vs_oracle.rs Cargo.toml

/root/repo/target/release/examples/libprotocol_vs_oracle-c7d4a79c75aa707b.rmeta: examples/protocol_vs_oracle.rs Cargo.toml

examples/protocol_vs_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
