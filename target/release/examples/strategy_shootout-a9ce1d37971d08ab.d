/root/repo/target/release/examples/strategy_shootout-a9ce1d37971d08ab.d: examples/strategy_shootout.rs

/root/repo/target/release/examples/strategy_shootout-a9ce1d37971d08ab: examples/strategy_shootout.rs

examples/strategy_shootout.rs:
