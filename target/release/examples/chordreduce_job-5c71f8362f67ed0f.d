/root/repo/target/release/examples/chordreduce_job-5c71f8362f67ed0f.d: examples/chordreduce_job.rs Cargo.toml

/root/repo/target/release/examples/libchordreduce_job-5c71f8362f67ed0f.rmeta: examples/chordreduce_job.rs Cargo.toml

examples/chordreduce_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
