/root/repo/target/release/examples/quickstart-a9b33df9e701fda1.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-a9b33df9e701fda1.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
