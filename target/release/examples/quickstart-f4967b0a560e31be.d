/root/repo/target/release/examples/quickstart-f4967b0a560e31be.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f4967b0a560e31be: examples/quickstart.rs

examples/quickstart.rs:
