/root/repo/target/release/examples/protocol_vs_oracle-4f9fea526521cbc6.d: examples/protocol_vs_oracle.rs

/root/repo/target/release/examples/protocol_vs_oracle-4f9fea526521cbc6: examples/protocol_vs_oracle.rs

examples/protocol_vs_oracle.rs:
