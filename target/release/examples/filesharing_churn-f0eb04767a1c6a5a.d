/root/repo/target/release/examples/filesharing_churn-f0eb04767a1c6a5a.d: examples/filesharing_churn.rs Cargo.toml

/root/repo/target/release/examples/libfilesharing_churn-f0eb04767a1c6a5a.rmeta: examples/filesharing_churn.rs Cargo.toml

examples/filesharing_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
