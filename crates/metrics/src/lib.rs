//! Streaming metrics plane.
//!
//! The trace plane (`autobal-telemetry`) answers *what happened*, one
//! record per decision; this crate answers *how much, right now*, at a
//! cost low enough to leave on at scale. Three pieces:
//!
//! - **Registry** ([`registry`], [`names`]): a closed vocabulary of
//!   counters, gauges, and log₂ histograms. After construction every
//!   increment is allocation-free (flat `u64` slots, binary-searched
//!   static names), which the root crate's `meminstr` gate enforces.
//! - **Incremental fairness** ([`dist::LoadDist`]): the per-tick
//!   Gini/percentile sweep replaced by a Fenwick-tree-over-load-buckets
//!   multiset, `O(log L)` per load delta, maintaining the *exact*
//!   integer aggregates of the batch recompute so the floats produced
//!   through `autobal_stats::fairness` are bit-equal — the simulator's
//!   golden series do not move by a single byte.
//! - **Export** ([`sample`], [`expo`]): integer-only JSONL samples
//!   (byte-stable across platforms and thread counts), CSV time series,
//!   and dependency-free Prometheus text exposition with a validator.
//!
//! [`hub::MetricsHub`] is the substrate-facing recorder, mirroring
//! `Trace`: free when disabled, driven from the same emit funnels as
//! the trace plane. [`profile`] adds opt-in wall-clock phase timing
//! behind the `profile` feature, deliberately outside the
//! deterministic boundary.

pub mod dist;
pub mod expo;
pub mod fenwick;
pub mod hub;
pub mod names;
pub mod profile;
pub mod registry;
pub mod sample;

pub use dist::{DistSummary, LoadDist};
pub use hub::{MetricsHub, MetricsSink};
pub use sample::{MetricsSample, RingSlot};
