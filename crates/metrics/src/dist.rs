//! Incremental load-distribution statistics.
//!
//! [`LoadDist`] tracks the multiset of per-worker loads under inserts,
//! removes, and in-place updates, maintaining the *exact* integer
//! aggregates the batch fairness sweep computes from a sorted sample:
//! the element count `n`, the total `T = Σ x_i`, and the rank-weighted
//! sum `W = Σ (i+1)·x_i` over the ascending order. Because the
//! aggregates are exact integers and the final float expressions live
//! in `autobal_stats::fairness` (shared with the batch path), the
//! incremental Gini and imbalance are bit-equal to a full recompute —
//! not merely close — which is what lets the simulator's golden series
//! switch to this structure without perturbing a single byte.
//!
//! Cost per delta is `O(log L)` in the load bound `L` (two Fenwick
//! walks), replacing the `O(n log n)` copy-and-sort per sample.

use crate::fenwick::Fenwick;

/// Multiset of `u64` loads with incrementally-maintained fairness
/// aggregates. Memory is `O(L)` in the largest load ever observed,
/// grown lazily in powers of two; simulator loads are bounded by the
/// per-worker task share, so this stays small and cache-resident.
#[derive(Clone, Debug, Default)]
pub struct LoadDist {
    /// counts[v] = number of elements equal to v (Fenwick-indexed).
    counts: Fenwick,
    /// sums[v] = v · counts[v] (Fenwick-indexed).
    sums: Fenwick,
    n: u64,
    total: u128,
    weighted: u128,
}

impl LoadDist {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all elements, keeping allocated capacity (alloc-free).
    pub fn clear(&mut self) {
        self.counts.clear();
        self.sums.clear();
        self.n = 0;
        self.total = 0;
        self.weighted = 0;
    }

    fn ensure_slot(&mut self, v: u64) {
        let needed = v as usize + 1;
        if needed > self.counts.slots() {
            let cap = needed.next_power_of_two().max(64);
            self.counts.grow_to(cap);
            self.sums.grow_to(cap);
        }
    }

    /// Insert one element of value `v`.
    ///
    /// Rank accounting: the new element lands after the `L_v` elements
    /// strictly below `v` and the `c_v` existing copies of `v`, taking
    /// 1-based rank `L_v + c_v + 1`; every element strictly above `v`
    /// shifts up one rank, adding its value to `W` once. Hence
    /// `ΔW = v·(L_v + c_v + 1) + S_{>v}`, all in exact integers.
    pub fn insert(&mut self, v: u64) {
        self.ensure_slot(v);
        let below = self.counts.prefix(v as usize) as u128;
        let copies = self.counts.count_at(v as usize) as u128;
        let le_sum = self.sums.prefix(v as usize + 1) as u128;
        let above_sum = self.total - le_sum;
        self.weighted += v as u128 * (below + copies + 1) + above_sum;
        self.total += v as u128;
        self.n += 1;
        self.counts.add(v as usize, 1);
        self.sums.add(v as usize, v);
    }

    /// Remove one element of value `v`, which must be present.
    ///
    /// Exact inverse of [`insert`](Self::insert): the departing copy
    /// held rank `L_v + c_v` (taking the highest-ranked copy; copies
    /// are interchangeable), and everything above it drops one rank.
    pub fn remove(&mut self, v: u64) {
        let copies = self.counts.count_at(v as usize) as u128;
        assert!(copies > 0, "remove of absent value {v}");
        let below = self.counts.prefix(v as usize) as u128;
        let le_sum = self.sums.prefix(v as usize + 1) as u128;
        let above_sum = self.total - le_sum;
        self.weighted -= v as u128 * (below + copies) + above_sum;
        self.total -= v as u128;
        self.n -= 1;
        self.counts.sub(v as usize, 1);
        self.sums.sub(v as usize, v);
    }

    /// Replace one element of value `old` with value `new`.
    pub fn update(&mut self, old: u64, new: u64) {
        if old == new {
            return;
        }
        self.remove(old);
        self.insert(new);
    }

    /// Number of tracked elements.
    pub fn len(&self) -> u64 {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact total load `Σ x_i`.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Exact rank-weighted sum `Σ (i+1)·x_i` over the ascending order.
    pub fn weighted(&self) -> u128 {
        self.weighted
    }

    /// Number of zero-load (idle) elements.
    pub fn zeros(&self) -> u64 {
        self.counts.count_at(0)
    }

    /// Largest tracked load (0 when empty).
    pub fn max(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.counts.select(self.n) as u64
        }
    }

    /// Nearest-rank percentile, bit-equal to
    /// `autobal_stats::fairness::percentile_sorted` on the sorted
    /// sample: the k-th smallest with `k = max(1, ceil(p·n/100))`.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let p = p.min(100);
        let k = (p * self.n).div_ceil(100).max(1);
        self.counts.select(k) as u64
    }

    /// Gini coefficient, bit-equal to the batch
    /// `autobal_stats::fairness::gini_sorted` recompute.
    pub fn gini(&self) -> f64 {
        autobal_stats::fairness::gini_from_sums(self.n as usize, self.total, self.weighted)
    }

    /// Imbalance factor max/mean, bit-equal to the batch
    /// `autobal_stats::fairness::imbalance_sorted` recompute.
    pub fn imbalance(&self) -> f64 {
        autobal_stats::fairness::imbalance_from_sums(self.max(), self.n as usize, self.total)
    }

    /// Gini in parts-per-million as a pure integer, for the float-free
    /// JSONL sample stream: `⌊10⁶·(2W − T·(n+1)) / (n·T)⌋`. The
    /// numerator is the exact Gini numerator (non-negative: `W` is
    /// minimised at `T·(n+1)/2` when all loads are equal).
    pub fn gini_ppm(&self) -> u64 {
        gini_ppm_from_sums(self.n, self.total, self.weighted)
    }
}

/// Mergeable partial summary of a load multiset.
///
/// The sharded tick engine keeps one of these per arc-range shard and
/// folds them together at the tick barrier. Only aggregates that are
/// associative under disjoint union are carried — count, total, idle
/// count, and max — because the rank-weighted sum `W` behind the exact
/// Gini depends on the *global* ascending order and cannot be merged
/// from partials; the full [`LoadDist`] remains the source of truth for
/// fairness gauges. All fields are exact integers, so merging is
/// order-independent and bit-stable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistSummary {
    /// Number of observed elements.
    pub n: u64,
    /// Exact total load `Σ x_i`.
    pub total: u128,
    /// Number of zero-load (idle) elements.
    pub zeros: u64,
    /// Largest observed load (0 when empty).
    pub max: u64,
}

impl DistSummary {
    /// Fold one load into the summary.
    pub fn observe(&mut self, v: u64) {
        self.n += 1;
        self.total += v as u128;
        if v == 0 {
            self.zeros += 1;
        }
        self.max = self.max.max(v);
    }

    /// Fold another (disjoint) partial summary into this one.
    pub fn merge(&mut self, other: &DistSummary) {
        self.n += other.n;
        self.total += other.total;
        self.zeros += other.zeros;
        self.max = self.max.max(other.max);
    }

    /// Integer mean load, rounded down (0 when empty).
    pub fn mean_floor(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            (self.total / self.n as u128) as u64
        }
    }
}

impl LoadDist {
    /// The mergeable aggregate view of the tracked multiset; equals the
    /// fold of [`DistSummary::observe`] over the same elements.
    pub fn summary(&self) -> DistSummary {
        DistSummary {
            n: self.n,
            total: self.total,
            zeros: self.zeros(),
            max: self.max(),
        }
    }
}

/// Integer Gini (ppm) from exact aggregates; shared by the incremental
/// structure and the batch sampler so both emit identical JSONL.
pub fn gini_ppm_from_sums(n: u64, total: u128, weighted: u128) -> u64 {
    if n == 0 || total == 0 {
        return 0;
    }
    let numer = 2 * weighted - total * (n as u128 + 1);
    (numer * 1_000_000 / (n as u128 * total)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_stats::fairness;

    fn batch(sorted: &[u64]) -> (u128, u128) {
        let total: u128 = sorted.iter().map(|&v| v as u128).sum();
        let weighted: u128 = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u128 + 1) * v as u128)
            .sum();
        (total, weighted)
    }

    fn assert_matches_batch(dist: &LoadDist, items: &[u64]) {
        let mut sorted = items.to_vec();
        sorted.sort_unstable();
        let (total, weighted) = batch(&sorted);
        assert_eq!(dist.len() as usize, sorted.len());
        assert_eq!(dist.total(), total);
        assert_eq!(dist.weighted(), weighted, "weighted sum for {sorted:?}");
        assert_eq!(
            dist.gini().to_bits(),
            fairness::gini_sorted(&sorted).to_bits()
        );
        assert_eq!(
            dist.imbalance().to_bits(),
            fairness::imbalance_sorted(&sorted).to_bits()
        );
        assert_eq!(dist.max(), sorted.last().copied().unwrap_or(0));
        assert_eq!(
            dist.zeros(),
            sorted.iter().filter(|&&v| v == 0).count() as u64
        );
        for p in [0, 1, 10, 50, 90, 99, 100] {
            assert_eq!(
                dist.percentile(p),
                fairness::percentile_sorted(&sorted, p),
                "p{p} of {sorted:?}"
            );
        }
    }

    #[test]
    fn insert_remove_track_batch_aggregates() {
        let mut dist = LoadDist::new();
        let mut items: Vec<u64> = Vec::new();
        for v in [2u64, 5, 1, 5, 0, 9, 5, 0, 130, 7] {
            dist.insert(v);
            items.push(v);
            assert_matches_batch(&dist, &items);
        }
        for v in [5u64, 0, 130, 2] {
            dist.remove(v);
            items.remove(items.iter().position(|&x| x == v).unwrap());
            assert_matches_batch(&dist, &items);
        }
        dist.update(9, 3);
        let at = items.iter().position(|&x| x == 9).unwrap();
        items[at] = 3;
        assert_matches_batch(&dist, &items);
    }

    #[test]
    fn clear_resets_without_capacity_loss() {
        let mut dist = LoadDist::new();
        dist.insert(1000);
        dist.clear();
        assert!(dist.is_empty());
        assert_eq!(dist.gini(), 0.0);
        dist.insert(3);
        assert_matches_batch(&dist, &[3]);
    }

    #[test]
    fn gini_ppm_zero_for_level_loads() {
        let mut dist = LoadDist::new();
        for _ in 0..7 {
            dist.insert(42);
        }
        assert_eq!(dist.gini_ppm(), 0);
    }

    #[test]
    fn gini_ppm_tracks_float_gini() {
        let mut dist = LoadDist::new();
        for v in [0u64, 10] {
            dist.insert(v);
        }
        // G = 0.5 exactly for [0, x].
        assert_eq!(dist.gini_ppm(), 500_000);
        assert_eq!(dist.gini(), 0.5);
    }

    #[test]
    #[should_panic(expected = "remove of absent value")]
    fn remove_absent_panics() {
        let mut dist = LoadDist::new();
        dist.insert(1);
        dist.remove(2);
    }
}
