//! Fenwick (binary indexed) tree over `u64` totals.
//!
//! The metrics plane keys these by *load value*: slot `v` holds either
//! the number of workers whose load is exactly `v` (the count tree) or
//! `v` times that number (the sum tree). Point updates and prefix
//! queries are `O(log L)` in the tracked value bound `L`, which is what
//! turns the per-tick fairness sweep into a per-delta increment.

/// A Fenwick tree plus the raw per-slot values it was built from.
///
/// The raw mirror costs one extra `u64` per slot but buys two things:
/// `O(1)` point reads (`count_at`), and exact rebuilds when the value
/// domain grows past the current capacity — a plain Fenwick array
/// cannot be extended in place because high slots cover ranges that
/// reach back into the old prefix.
#[derive(Clone, Debug, Default)]
pub struct Fenwick {
    /// 1-based Fenwick array; `tree[i]` covers raw slots `(i−lowbit(i), i]`.
    tree: Vec<u64>,
    /// 0-based raw slot values; `raw[v]` pairs with tree index `v + 1`.
    raw: Vec<u64>,
}

impl Fenwick {
    /// An empty tree over `slots` zero-valued slots.
    pub fn with_slots(slots: usize) -> Self {
        Fenwick {
            tree: vec![0; slots + 1],
            raw: vec![0; slots],
        }
    }

    /// Number of addressable slots (valid indices are `0..slots()`).
    pub fn slots(&self) -> usize {
        self.raw.len()
    }

    /// Grow to at least `slots` slots, preserving contents. Rebuilds the
    /// Fenwick array from the raw mirror in `O(slots)`; callers double
    /// capacity so this amortises away.
    pub fn grow_to(&mut self, slots: usize) {
        if slots <= self.raw.len() {
            return;
        }
        self.raw.resize(slots, 0);
        self.tree.clear();
        self.tree.resize(slots + 1, 0);
        // Linear-time build: push each raw value to its slot, then fold
        // every node into its parent once.
        for (v, &x) in self.raw.iter().enumerate() {
            self.tree[v + 1] += x;
        }
        for i in 1..=slots {
            let parent = i + (i & i.wrapping_neg());
            if parent <= slots {
                self.tree[parent] += self.tree[i];
            }
        }
    }

    /// Add `delta` to slot `slot`.
    pub fn add(&mut self, slot: usize, delta: u64) {
        debug_assert!(slot < self.raw.len());
        self.raw[slot] += delta;
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Subtract `delta` from slot `slot`. The slot must hold at least
    /// `delta` (the metrics plane only removes what it inserted).
    pub fn sub(&mut self, slot: usize, delta: u64) {
        debug_assert!(slot < self.raw.len());
        debug_assert!(self.raw[slot] >= delta);
        self.raw[slot] -= delta;
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] -= delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..count` (i.e. the first `count` slots).
    pub fn prefix(&self, count: usize) -> u64 {
        let mut i = count.min(self.raw.len());
        let mut acc = 0u64;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Current value of a single slot.
    pub fn count_at(&self, slot: usize) -> u64 {
        self.raw.get(slot).copied().unwrap_or(0)
    }

    /// Smallest slot index whose prefix sum reaches `k` (1-based rank):
    /// with counts in the slots, this is the value of the k-th smallest
    /// element. `k` must be in `1..=prefix(slots())`.
    pub fn select(&self, k: u64) -> usize {
        debug_assert!(k >= 1 && k <= self.prefix(self.raw.len()));
        let mut pos = 0usize; // 1-based tree position settled so far
        let mut rem = k;
        let mut step = self.tree.len().next_power_of_two() / 2;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < rem {
                rem -= self.tree[next];
                pos = next;
            }
            step /= 2;
        }
        // `pos` is the largest tree index with prefix < k, so the k-th
        // element lives in tree slot pos+1 = raw slot pos.
        pos
    }

    /// Reset all slots to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.tree.iter_mut().for_each(|x| *x = 0);
        self.raw.iter_mut().for_each(|x| *x = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_naive() {
        let mut f = Fenwick::with_slots(10);
        let updates = [(0usize, 3u64), (4, 1), (9, 7), (4, 2), (1, 5)];
        let mut naive = [0u64; 10];
        for (s, d) in updates {
            f.add(s, d);
            naive[s] += d;
        }
        for i in 0..=10 {
            assert_eq!(f.prefix(i), naive[..i].iter().sum::<u64>(), "prefix {i}");
        }
        f.sub(4, 2);
        naive[4] -= 2;
        for i in 0..=10 {
            assert_eq!(f.prefix(i), naive[..i].iter().sum::<u64>(), "prefix {i}");
        }
    }

    #[test]
    fn grow_preserves_contents() {
        let mut f = Fenwick::with_slots(3);
        f.add(0, 2);
        f.add(2, 5);
        f.grow_to(17);
        assert_eq!(f.slots(), 17);
        assert_eq!(f.prefix(1), 2);
        assert_eq!(f.prefix(3), 7);
        assert_eq!(f.prefix(17), 7);
        f.add(16, 1);
        assert_eq!(f.prefix(17), 8);
    }

    #[test]
    fn select_finds_kth_smallest() {
        // Multiset {0, 0, 3, 5, 5, 5, 9} as counts per value slot.
        let mut f = Fenwick::with_slots(12);
        for (slot, c) in [(0usize, 2u64), (3, 1), (5, 3), (9, 1)] {
            f.add(slot, c);
        }
        let expect = [0usize, 0, 3, 5, 5, 5, 9];
        for (k, &v) in expect.iter().enumerate() {
            assert_eq!(f.select(k as u64 + 1), v, "k={}", k + 1);
        }
    }

    #[test]
    fn select_on_power_of_two_boundary() {
        let mut f = Fenwick::with_slots(8);
        f.add(7, 1);
        assert_eq!(f.select(1), 7);
        f.add(0, 1);
        assert_eq!(f.select(1), 0);
        assert_eq!(f.select(2), 7);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut f = Fenwick::with_slots(5);
        f.add(3, 4);
        f.clear();
        assert_eq!(f.slots(), 5);
        assert_eq!(f.prefix(5), 0);
    }
}
