//! The substrate-facing surface of the metrics plane.
//!
//! [`MetricsHub`] plays the same role for metrics that
//! `autobal_telemetry::Trace` plays for traces: a concrete,
//! always-constructible recorder that is free when disabled. Substrates
//! call the narrow [`MetricsSink`] surface from their hot paths
//! (counter increments, histogram observations — all allocation-free
//! after construction) and the sampling methods at their chosen
//! cadence (which snapshot the registry into a [`MetricsSample`] and
//! may allocate; sampling is outside the steady-state alloc gate).

use crate::dist::{gini_ppm_from_sums, LoadDist};
use crate::names;
use crate::registry::Registry;
use crate::sample::{HistSnapshot, MetricsSample, RingSlot};

/// The hook substrates drive from their hot paths. Mirrors `TraceSink`:
/// check [`enabled`](MetricsSink::enabled) before assembling anything
/// costly, and every method is a no-op when disabled.
pub trait MetricsSink {
    fn enabled(&self) -> bool;
    /// Increment a counter by one.
    fn inc(&mut self, name: &'static str);
    /// Add `delta` to a counter.
    fn add(&mut self, name: &'static str, delta: u64);
    /// Overwrite a gauge.
    fn set_gauge(&mut self, name: &'static str, value: u64);
    /// Record one histogram observation.
    fn observe(&mut self, name: &'static str, value: u64);
}

/// Pre-sorted percentile levels sampled into gauges.
const PCTS: [(u64, &str); 3] = [
    (50, names::LOAD_P50),
    (90, names::LOAD_P90),
    (99, names::LOAD_P99),
];

/// A disabled hub costs one branch per call site and holds no registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    registry: Option<Registry>,
    ring: bool,
    samples: Vec<MetricsSample>,
    scratch: Vec<u64>,
}

impl MetricsHub {
    /// A hub that records when `enabled`, without ring snapshots.
    pub fn new(enabled: bool) -> MetricsHub {
        MetricsHub {
            registry: enabled.then(Registry::new),
            ring: false,
            samples: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Enable per-worker ring snapshots in each sample (monitor food;
    /// costs O(workers) per sample, so off by default).
    pub fn with_ring(mut self, ring: bool) -> MetricsHub {
        self.ring = ring;
        self
    }

    /// Whether samples should carry a ring snapshot. Substrates check
    /// this before assembling the per-worker rows.
    pub fn ring_enabled(&self) -> bool {
        self.registry.is_some() && self.ring
    }

    /// Counter increment for a `SimEvent`, keyed by its stable decision
    /// name, with the moved-task histogram fed from acquisition events.
    #[inline]
    pub fn event(&mut self, name: &'static str, value: u64) {
        let Some(reg) = self.registry.as_mut() else {
            return;
        };
        reg.inc(name);
        if matches!(
            name,
            "sybil_created" | "worker_joined" | "invitation_honored"
        ) && value > 0
        {
            reg.observe(names::TRANSFER_SIZE, value);
        }
    }

    /// Message-fate accounting: `fate` is one of the `msg_*` counter
    /// names; `retries` is the number of re-sends beyond the first
    /// attempt, observed into the retry histogram.
    #[inline]
    pub fn message(&mut self, fate: &'static str, retries: u64) {
        let Some(reg) = self.registry.as_mut() else {
            return;
        };
        reg.inc(fate);
        reg.observe(names::MSG_RETRIES, retries);
    }

    /// Recorded samples so far.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// Consume the hub, yielding its samples.
    pub fn into_samples(self) -> Vec<MetricsSample> {
        self.samples
    }

    /// Snapshot the registry plus fairness gauges computed from an
    /// incrementally-maintained [`LoadDist`] — O(log L), no sort.
    pub fn sample_from_dist(&mut self, time: u64, dist: &LoadDist, ring: Vec<RingSlot>) {
        if self.registry.is_none() {
            return;
        }
        let total = dist.total();
        let stats = FairnessGauges {
            n: dist.len(),
            idle: dist.zeros(),
            total: total as u64,
            max: dist.max(),
            pct: [
                dist.percentile(PCTS[0].0),
                dist.percentile(PCTS[1].0),
                dist.percentile(PCTS[2].0),
            ],
            gini_ppm: dist.gini_ppm(),
        };
        self.push_sample(time, stats, ring);
    }

    /// Snapshot the registry plus fairness gauges computed by a batch
    /// sweep of `loads` (sorted in place). For substrates whose load
    /// movements happen inside the network and cannot be intercepted
    /// per-delta; emits byte-identical gauge values to the incremental
    /// path because both reduce to the same exact integer aggregates.
    pub fn sample_batch(&mut self, time: u64, loads: &mut [u64], ring: Vec<RingSlot>) {
        if self.registry.is_none() {
            return;
        }
        loads.sort_unstable();
        let n = loads.len() as u64;
        let total: u128 = loads.iter().map(|&v| v as u128).sum();
        let weighted: u128 = loads
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u128 + 1) * v as u128)
            .sum();
        let stats = FairnessGauges {
            n,
            idle: loads.iter().take_while(|&&v| v == 0).count() as u64,
            total: total as u64,
            max: loads.last().copied().unwrap_or(0),
            pct: [
                autobal_stats::fairness::percentile_sorted(loads, PCTS[0].0),
                autobal_stats::fairness::percentile_sorted(loads, PCTS[1].0),
                autobal_stats::fairness::percentile_sorted(loads, PCTS[2].0),
            ],
            gini_ppm: gini_ppm_from_sums(n, total, weighted),
        };
        self.push_sample(time, stats, ring);
    }

    /// Borrowable scratch buffer for callers assembling a batch load
    /// sample (kept on the hub so repeated sampling reuses capacity).
    pub fn take_scratch(&mut self) -> Vec<u64> {
        let mut v = std::mem::take(&mut self.scratch);
        v.clear();
        v
    }

    /// Return the scratch buffer after a batch sample.
    pub fn put_scratch(&mut self, scratch: Vec<u64>) {
        self.scratch = scratch;
    }

    fn push_sample(&mut self, time: u64, stats: FairnessGauges, ring: Vec<RingSlot>) {
        let reg = self.registry.as_mut().expect("checked by callers");
        reg.set_gauge(names::WORKERS_ACTIVE, stats.n);
        reg.set_gauge(names::WORKERS_IDLE, stats.idle);
        reg.set_gauge(names::LOAD_TOTAL, stats.total);
        reg.set_gauge(names::LOAD_MAX, stats.max);
        for (i, &(_, name)) in PCTS.iter().enumerate() {
            reg.set_gauge(name, stats.pct[i]);
        }
        reg.set_gauge(names::GINI_PPM, stats.gini_ppm);
        let imbalance_ppm = if stats.n == 0 || stats.total == 0 {
            0
        } else {
            (stats.max as u128 * stats.n as u128 * 1_000_000 / stats.total as u128) as u64
        };
        reg.set_gauge(names::IMBALANCE_PPM, imbalance_ppm);

        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        reg.each_scalar(|name, kind, value| match kind {
            crate::registry::Kind::Counter => counters.push((name.to_string(), value)),
            crate::registry::Kind::Gauge => gauges.push((name.to_string(), value)),
            crate::registry::Kind::Histogram => {}
        });
        let mut hists = Vec::new();
        reg.each_hist(|name, h| {
            hists.push((
                name.to_string(),
                HistSnapshot {
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets[..h.trimmed_len()].to_vec(),
                },
            ));
        });
        self.samples.push(MetricsSample {
            time,
            counters,
            gauges,
            hists,
            ring,
        });
    }
}

struct FairnessGauges {
    n: u64,
    idle: u64,
    total: u64,
    max: u64,
    pct: [u64; 3],
    gini_ppm: u64,
}

impl MetricsSink for MetricsHub {
    #[inline]
    fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    #[inline]
    fn inc(&mut self, name: &'static str) {
        if let Some(reg) = self.registry.as_mut() {
            reg.inc(name);
        }
    }

    #[inline]
    fn add(&mut self, name: &'static str, delta: u64) {
        if let Some(reg) = self.registry.as_mut() {
            reg.add(name, delta);
        }
    }

    #[inline]
    fn set_gauge(&mut self, name: &'static str, value: u64) {
        if let Some(reg) = self.registry.as_mut() {
            reg.set_gauge(name, value);
        }
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(reg) = self.registry.as_mut() {
            reg.observe(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let mut hub = MetricsHub::new(false);
        assert!(!hub.enabled());
        hub.inc(names::TICKS);
        hub.event("sybil_created", 9);
        hub.message(names::MSG_DELIVERED, 2);
        let mut dist = LoadDist::new();
        dist.insert(5);
        hub.sample_from_dist(3, &dist, Vec::new());
        assert!(hub.samples().is_empty());
    }

    #[test]
    fn dist_and_batch_sampling_agree_byte_for_byte() {
        let loads = [0u64, 4, 4, 9, 130, 2, 0, 77];
        let mut dist = LoadDist::new();
        for &l in &loads {
            dist.insert(l);
        }
        let mut a = MetricsHub::new(true);
        a.sample_from_dist(7, &dist, Vec::new());
        let mut b = MetricsHub::new(true);
        let mut scratch = loads.to_vec();
        b.sample_batch(7, &mut scratch, Vec::new());
        assert_eq!(
            crate::sample::to_jsonl(a.samples()),
            crate::sample::to_jsonl(b.samples())
        );
        let s = &a.samples()[0];
        assert_eq!(s.gauge(names::WORKERS_ACTIVE), Some(8));
        assert_eq!(s.gauge(names::WORKERS_IDLE), Some(2));
        assert_eq!(s.gauge(names::LOAD_MAX), Some(130));
        assert_eq!(s.gauge(names::LOAD_TOTAL), Some(226));
    }

    #[test]
    fn events_feed_counters_and_transfer_histogram() {
        let mut hub = MetricsHub::new(true);
        hub.event("sybil_created", 12);
        hub.event("worker_left", 0);
        hub.event("invitation_honored", 3);
        hub.message(names::MSG_DELIVERED, 0);
        hub.message(names::MSG_TIMED_OUT, 4);
        hub.inc(names::TICKS);
        hub.add(names::TASKS_DONE, 50);
        let dist = LoadDist::new();
        hub.sample_from_dist(1, &dist, Vec::new());
        let s = &hub.samples()[0];
        assert_eq!(s.counter(names::SYBIL_CREATED), Some(1));
        assert_eq!(s.counter(names::WORKER_LEFT), Some(1));
        assert_eq!(s.counter(names::INVITATION_HONORED), Some(1));
        assert_eq!(s.counter(names::MSG_DELIVERED), Some(1));
        assert_eq!(s.counter(names::MSG_TIMED_OUT), Some(1));
        assert_eq!(s.counter(names::TICKS), Some(1));
        assert_eq!(s.counter(names::TASKS_DONE), Some(50));
        let transfers = s.hist(names::TRANSFER_SIZE).unwrap();
        assert_eq!(transfers.count, 2);
        assert_eq!(transfers.sum, 15);
        let retries = s.hist(names::MSG_RETRIES).unwrap();
        assert_eq!(retries.count, 2);
        assert_eq!(retries.sum, 4);
    }

    #[test]
    fn ring_snapshot_is_carried_through() {
        let mut hub = MetricsHub::new(true).with_ring(true);
        assert!(hub.ring_enabled());
        let dist = LoadDist::new();
        hub.sample_from_dist(
            0,
            &dist,
            vec![RingSlot {
                worker: 1,
                pos: "aa".into(),
                load: 3,
                sybils: 0,
                quarantined: 0,
            }],
        );
        assert_eq!(hub.samples()[0].ring.len(), 1);
        assert!(!MetricsHub::new(true).ring_enabled());
    }
}
