//! The metric name vocabulary — the closed set of series the metrics
//! plane may emit.
//!
//! Every name is declared as a `pub const` and enumerated in [`ALL`]
//! with its kind and help text; the registry is built from this table
//! and refuses names outside it. The lint T family reads this file
//! syntactically and cross-checks three invariants: each const appears
//! in `ALL`, each name is exercised by the golden metrics fixture, and
//! each has at least one emit site in first-party code.
//!
//! Event-counter names are *identical* to the stable lowercase decision
//! names of `SimEvent::decision_fields`, so a trace `Decision` record
//! and a metrics counter increment always agree on vocabulary.

use crate::registry::Kind;

// Run progress counters.
pub const TICKS: &str = "ticks";
pub const TASKS_DONE: &str = "tasks_done";

// Event counters — one per `SimEvent` decision name.
pub const SYBIL_CREATED: &str = "sybil_created";
pub const SYBILS_RETIRED: &str = "sybils_retired";
pub const WORKER_LEFT: &str = "worker_left";
pub const WORKER_CRASHED: &str = "worker_crashed";
pub const WORKER_JOINED: &str = "worker_joined";
pub const INVITATION_SENT: &str = "invitation_sent";
pub const INVITATION_REFUSED: &str = "invitation_refused";
pub const INVITATION_HONORED: &str = "invitation_honored";
pub const LOAD_QUERIED: &str = "load_queried";
pub const NEIGHBOR_GAP_SPLIT: &str = "neighbor_gap_split";
pub const LIED: &str = "lied";
pub const PROBE_AGREE: &str = "probe_agree";
pub const PROBE_CONFLICT: &str = "probe_conflict";
pub const QUARANTINED: &str = "quarantined";

// Message-fate counters (protocol and event substrates).
pub const MSG_DELIVERED: &str = "msg_delivered";
pub const MSG_DROPPED: &str = "msg_dropped";
pub const MSG_TIMED_OUT: &str = "msg_timed_out";
pub const MSG_UNREACHABLE: &str = "msg_unreachable";

// Fairness / ring-shape gauges, set at each sample point. All integer:
// ratios are scaled to parts-per-million.
pub const WORKERS_ACTIVE: &str = "workers_active";
pub const WORKERS_IDLE: &str = "workers_idle";
pub const VNODES: &str = "vnodes";
pub const TASKS_REMAINING: &str = "tasks_remaining";
pub const LOAD_TOTAL: &str = "load_total";
pub const LOAD_MAX: &str = "load_max";
pub const LOAD_P50: &str = "load_p50";
pub const LOAD_P90: &str = "load_p90";
pub const LOAD_P99: &str = "load_p99";
pub const GINI_PPM: &str = "gini_ppm";
pub const IMBALANCE_PPM: &str = "imbalance_ppm";

// Log₂-bucketed histograms.
pub const TRANSFER_SIZE: &str = "transfer_size";
pub const MSG_RETRIES: &str = "msg_retries";

/// The full registry table: `(name, kind, help)`.
pub const ALL: &[(&str, Kind, &str)] = &[
    (TICKS, Kind::Counter, "Simulation ticks executed."),
    (TASKS_DONE, Kind::Counter, "Task units consumed by workers."),
    (SYBIL_CREATED, Kind::Counter, "Sybil vnodes planted."),
    (
        SYBILS_RETIRED,
        Kind::Counter,
        "Idle Sybil retirement events.",
    ),
    (WORKER_LEFT, Kind::Counter, "Workers departed via churn."),
    (
        WORKER_CRASHED,
        Kind::Counter,
        "Workers crash-failed (fault plane).",
    ),
    (
        WORKER_JOINED,
        Kind::Counter,
        "Waiting workers joined the ring.",
    ),
    (INVITATION_SENT, Kind::Counter, "Help invitations sent."),
    (
        INVITATION_REFUSED,
        Kind::Counter,
        "Invitations no predecessor honored.",
    ),
    (
        INVITATION_HONORED,
        Kind::Counter,
        "Invitations honored by a helper.",
    ),
    (
        LOAD_QUERIED,
        Kind::Counter,
        "Neighbor load probes answered.",
    ),
    (
        NEIGHBOR_GAP_SPLIT,
        Kind::Counter,
        "Widest-gap splits chosen.",
    ),
    (LIED, Kind::Counter, "Byzantine distorted load answers."),
    (
        PROBE_AGREE,
        Kind::Counter,
        "Cross-check probe rounds that agreed.",
    ),
    (
        PROBE_CONFLICT,
        Kind::Counter,
        "Cross-check probe rounds that conflicted.",
    ),
    (
        QUARANTINED,
        Kind::Counter,
        "Reporters quarantined by the defense.",
    ),
    (MSG_DELIVERED, Kind::Counter, "Messages delivered."),
    (
        MSG_DROPPED,
        Kind::Counter,
        "Messages dropped by the network.",
    ),
    (
        MSG_TIMED_OUT,
        Kind::Counter,
        "Messages that exhausted retries.",
    ),
    (
        MSG_UNREACHABLE,
        Kind::Counter,
        "Messages to unreachable peers.",
    ),
    (WORKERS_ACTIVE, Kind::Gauge, "Active workers on the ring."),
    (WORKERS_IDLE, Kind::Gauge, "Active workers with zero load."),
    (VNODES, Kind::Gauge, "Virtual nodes on the ring."),
    (TASKS_REMAINING, Kind::Gauge, "Task units not yet consumed."),
    (LOAD_TOTAL, Kind::Gauge, "Sum of per-worker loads."),
    (LOAD_MAX, Kind::Gauge, "Largest per-worker load."),
    (
        LOAD_P50,
        Kind::Gauge,
        "Median per-worker load (nearest rank).",
    ),
    (LOAD_P90, Kind::Gauge, "90th-percentile per-worker load."),
    (LOAD_P99, Kind::Gauge, "99th-percentile per-worker load."),
    (
        GINI_PPM,
        Kind::Gauge,
        "Gini coefficient of loads, parts per million.",
    ),
    (
        IMBALANCE_PPM,
        Kind::Gauge,
        "Max/mean load ratio, parts per million.",
    ),
    (
        TRANSFER_SIZE,
        Kind::Histogram,
        "Tasks moved per acquisition.",
    ),
    (
        MSG_RETRIES,
        Kind::Histogram,
        "Send attempts beyond the first, per message.",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for &(name, _, help) in ALL {
            assert!(seen.insert(name), "duplicate metric name {name}");
            assert!(!help.is_empty(), "{name} lacks help text");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} is not snake_case"
            );
            assert!(name.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn event_counters_match_decision_vocabulary() {
        // The decision names of core::trace::SimEvent::decision_fields,
        // verbatim. If a SimEvent variant is added there, its name must
        // be admitted here (and the lint fixture updated).
        let decisions = [
            "sybil_created",
            "sybils_retired",
            "worker_left",
            "worker_crashed",
            "worker_joined",
            "invitation_sent",
            "invitation_refused",
            "invitation_honored",
            "load_queried",
            "neighbor_gap_split",
            "lied",
            "probe_agree",
            "probe_conflict",
            "quarantined",
        ];
        for d in decisions {
            assert!(
                ALL.iter().any(|&(n, k, _)| n == d && k == Kind::Counter),
                "decision {d} has no counter"
            );
        }
    }
}
