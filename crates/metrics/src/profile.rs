//! Opt-in wall-clock phase profiling (`profile` feature).
//!
//! Same discipline as the root crate's `count-allocs`: strictly
//! additive instrumentation that never feeds back into anything
//! deterministic. Timings are collected into a thread-local table and
//! surfaced only through explicitly-invoked report rendering on the
//! CLI — golden traces, metrics JSONL, and every simulator decision
//! are byte-identical whether the feature is on, off, or the machine
//! is slow.
//!
//! Usage: wrap a phase in a [`span`] guard; nested spans subtract their
//! time from the enclosing phase, so the report shows *self* time.
//!
//! ```
//! let _t = autobal_metrics::profile::span("checks");
//! // ... phase body ...
//! ```
//!
//! With the feature off every call compiles to a unit struct and the
//! table renders empty; call sites need no `cfg` of their own.

#[cfg(feature = "profile")]
mod imp {
    use std::cell::RefCell;
    use std::time::Instant;

    #[derive(Clone, Copy, Default)]
    struct PhaseTotals {
        /// Nanoseconds of self time (child spans subtracted).
        self_ns: u128,
        entries: u64,
    }

    struct ProfileState {
        phases: Vec<(&'static str, PhaseTotals)>,
        /// Open-span stack: (phase name, start, child time to subtract).
        stack: Vec<(&'static str, Instant, u128)>,
    }

    thread_local! {
        static STATE: RefCell<ProfileState> = RefCell::new(ProfileState {
            phases: Vec::new(),
            stack: Vec::new(),
        });
    }

    /// RAII guard for one phase entry.
    pub struct SpanGuard {
        _private: (),
    }

    pub fn span(phase: &'static str) -> SpanGuard {
        STATE.with(|s| {
            s.borrow_mut().stack.push((phase, Instant::now(), 0));
        });
        SpanGuard { _private: () }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            STATE.with(|s| {
                let mut st = s.borrow_mut();
                let Some((phase, start, child_ns)) = st.stack.pop() else {
                    return;
                };
                let elapsed = start.elapsed().as_nanos();
                let self_ns = elapsed.saturating_sub(child_ns);
                if let Some((_, parent_start, parent_child)) = st.stack.last_mut() {
                    let _ = parent_start;
                    *parent_child += elapsed;
                }
                match st.phases.iter_mut().find(|(n, _)| *n == phase) {
                    Some((_, t)) => {
                        t.self_ns += self_ns;
                        t.entries += 1;
                    }
                    None => st.phases.push((
                        phase,
                        PhaseTotals {
                            self_ns,
                            entries: 1,
                        },
                    )),
                }
            });
        }
    }

    /// Renders this thread's per-phase self-time table, sorted by
    /// descending self time, and clears the accumulators.
    pub fn take_report() -> String {
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            let mut rows: Vec<_> = std::mem::take(&mut st.phases);
            rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
            let total: u128 = rows.iter().map(|(_, t)| t.self_ns).sum();
            let mut out = String::from("phase profile (self time)\n");
            for (name, t) in &rows {
                let pct = if total == 0 {
                    0.0
                } else {
                    t.self_ns as f64 * 100.0 / total as f64
                };
                out.push_str(&format!(
                    "  {:<12} {:>12.3} ms  {:>6.2}%  x{}\n",
                    name,
                    t.self_ns as f64 / 1e6,
                    pct,
                    t.entries
                ));
            }
            if rows.is_empty() {
                out.push_str("  (no spans recorded)\n");
            }
            out
        })
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    /// Zero-sized guard; the disabled build compiles spans away.
    pub struct SpanGuard {
        _private: (),
    }

    #[inline(always)]
    pub fn span(_phase: &'static str) -> SpanGuard {
        SpanGuard { _private: () }
    }

    /// Disabled builds report an empty table.
    pub fn take_report() -> String {
        String::from("phase profile (self time)\n  (profile feature disabled)\n")
    }
}

pub use imp::{span, take_report, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_is_droppable_in_any_build() {
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let report = take_report();
        assert!(report.starts_with("phase profile"));
        #[cfg(feature = "profile")]
        {
            assert!(report.contains("outer"), "{report}");
            assert!(report.contains("inner"), "{report}");
            // Accumulators were drained.
            assert!(take_report().contains("no spans recorded"));
        }
    }
}
