//! Fixed-vocabulary metric registry.
//!
//! Built once from [`names::ALL`](crate::names::ALL); after
//! construction every operation is allocation-free: counters and gauges
//! are slots in a flat `u64` array, histograms are fixed 65-bucket
//! log₂ arrays, and name resolution is a binary search over a
//! pre-sorted index of `&'static str`. Unknown names panic — the
//! vocabulary is closed by design (see the lint T family).

use crate::names;

/// What a registered name measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotone event count.
    Counter,
    /// Point-in-time value, overwritten at each sample.
    Gauge,
    /// Log₂-bucketed value distribution.
    Histogram,
}

/// A log₂-bucketed histogram: bucket `i` holds values whose bit length
/// is `i` (bucket 0 = value 0, bucket 1 = 1, bucket 2 = 2..=3, …), so
/// bucket upper bounds are `2^i − 1`.
#[derive(Clone, Debug)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; 65],
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }

    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Index one past the highest non-empty bucket (0 when empty).
    pub fn trimmed_len(&self) -> usize {
        self.buckets
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1)
    }
}

/// The registry proper. Scalar (counter/gauge) slots and histogram
/// slots are parallel to the order of `names::ALL`.
#[derive(Clone, Debug)]
pub struct Registry {
    /// `(name, kind, scalar-or-hist slot)` sorted by name for lookup.
    index: Vec<(&'static str, Kind, usize)>,
    scalars: Vec<u64>,
    hists: Vec<Hist>,
}

impl Registry {
    pub fn new() -> Registry {
        let mut index = Vec::with_capacity(names::ALL.len());
        let mut scalars = 0usize;
        let mut hists = 0usize;
        for &(name, kind, _help) in names::ALL {
            let slot = match kind {
                Kind::Counter | Kind::Gauge => {
                    scalars += 1;
                    scalars - 1
                }
                Kind::Histogram => {
                    hists += 1;
                    hists - 1
                }
            };
            index.push((name, kind, slot));
        }
        index.sort_unstable_by_key(|&(name, _, _)| name);
        Registry {
            index,
            scalars: vec![0; scalars],
            hists: vec![Hist::new(); hists],
        }
    }

    #[inline]
    fn resolve(&self, name: &str) -> (Kind, usize) {
        match self.index.binary_search_by_key(&name, |&(n, _, _)| n) {
            Ok(i) => (self.index[i].1, self.index[i].2),
            Err(_) => panic!("unregistered metric name {name:?}"),
        }
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&mut self, name: &str, delta: u64) {
        let (kind, slot) = self.resolve(name);
        debug_assert_eq!(kind, Kind::Counter, "{name} is not a counter");
        self.scalars[slot] += delta;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Overwrite a gauge.
    #[inline]
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        let (kind, slot) = self.resolve(name);
        debug_assert_eq!(kind, Kind::Gauge, "{name} is not a gauge");
        self.scalars[slot] = value;
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, name: &str, value: u64) {
        let (kind, slot) = self.resolve(name);
        debug_assert_eq!(kind, Kind::Histogram, "{name} is not a histogram");
        self.hists[slot].observe(value);
    }

    /// Current value of a counter or gauge.
    pub fn get(&self, name: &str) -> u64 {
        let (kind, slot) = self.resolve(name);
        debug_assert_ne!(kind, Kind::Histogram, "{name} is a histogram");
        self.scalars[slot]
    }

    /// Current state of a histogram.
    pub fn hist(&self, name: &str) -> &Hist {
        let (kind, slot) = self.resolve(name);
        debug_assert_eq!(kind, Kind::Histogram, "{name} is a histogram");
        &self.hists[slot]
    }

    /// Visit every registered name in `names::ALL` declaration order
    /// with its kind and — for scalars — current value.
    pub fn each_scalar(&self, mut f: impl FnMut(&'static str, Kind, u64)) {
        let mut scalar = 0usize;
        for &(name, kind, _help) in names::ALL {
            match kind {
                Kind::Counter | Kind::Gauge => {
                    f(name, kind, self.scalars[scalar]);
                    scalar += 1;
                }
                Kind::Histogram => {}
            }
        }
    }

    /// Visit every histogram in declaration order.
    pub fn each_hist(&self, mut f: impl FnMut(&'static str, &Hist)) {
        let mut hist = 0usize;
        for &(name, kind, _help) in names::ALL {
            if kind == Kind::Histogram {
                f(name, &self.hists[hist]);
                hist += 1;
            }
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = Registry::new();
        r.inc(names::SYBIL_CREATED);
        r.add(names::SYBIL_CREATED, 4);
        assert_eq!(r.get(names::SYBIL_CREATED), 5);
        r.set_gauge(names::LOAD_MAX, 9);
        r.set_gauge(names::LOAD_MAX, 7);
        assert_eq!(r.get(names::LOAD_MAX), 7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut r = Registry::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            r.observe(names::TRANSFER_SIZE, v);
        }
        let h = r.hist(names::TRANSFER_SIZE);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000 (512..=1023)
        assert_eq!(h.trimmed_len(), 11);
    }

    #[test]
    #[should_panic(expected = "unregistered metric name")]
    fn unknown_name_panics() {
        let mut r = Registry::new();
        r.inc("no_such_metric");
    }

    #[test]
    fn every_declared_name_resolves() {
        let r = Registry::new();
        for &(name, kind, _) in names::ALL {
            match kind {
                Kind::Histogram => {
                    assert_eq!(r.hist(name).count, 0);
                }
                _ => assert_eq!(r.get(name), 0),
            }
        }
    }
}
