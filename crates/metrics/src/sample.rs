//! The on-disk metrics sample stream.
//!
//! One [`MetricsSample`] per sampling point, serialized as one JSON
//! object per line (JSONL), integers only — the causal record contains
//! no floats, so byte-equality across platforms and thread counts is a
//! meaningful invariant (ratios are scaled to parts-per-million
//! upstream). Counters are cumulative; gauges are point-in-time; the
//! optional `ring` array is a per-worker snapshot for the monitor.
//!
//! Key order is fixed by construction (registry declaration order via
//! `names::ALL`), and serialization goes through hand-written
//! `to_node`/`from_node` impls so the byte layout is explicit rather
//! than an artifact of a map type's iteration order.

use crate::names;
use crate::registry::Kind;
use serde::{Deserialize, Error, Node, Serialize};

/// Snapshot of one log₂ histogram: cumulative count, sum, and the
/// per-bucket counts trimmed after the highest non-empty bucket.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

/// One worker's row in a ring snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingSlot {
    /// Worker id.
    pub worker: u64,
    /// Primary ring position, hex (empty for a waiting worker).
    pub pos: String,
    /// Current load (task units).
    pub load: u64,
    /// Sybil vnodes this worker currently operates.
    pub sybils: u64,
    /// Times a peer's cross-checking defense has quarantined this
    /// worker (> 0 marks a suspected liar on the dashboard).
    pub quarantined: u64,
}

/// One sampling point of the metrics plane.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSample {
    /// Sample time: tick for the synchronous substrates, event time for
    /// the event substrate.
    pub time: u64,
    /// Cumulative counters, in registry declaration order.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, in registry declaration order.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots, in registry declaration order.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Per-worker ring snapshot (empty unless ring capture is on).
    pub ring: Vec<RingSlot>,
}

impl MetricsSample {
    /// Value of a cumulative counter in this sample, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge in this sample, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram snapshot in this sample, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

fn pairs_node(pairs: &[(String, u64)]) -> Node {
    Node::Object(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), Node::U64(*v)))
            .collect(),
    )
}

fn pairs_from_node(node: &Node, what: &str) -> Result<Vec<(String, u64)>, Error> {
    let entries = node
        .as_object()
        .ok_or_else(|| Error::invalid_type(what, node))?;
    entries
        .iter()
        .map(|(k, v)| Ok((k.clone(), u64::from_node(v)?)))
        .collect()
}

fn field<'a>(entries: &'a [(String, Node)], key: &str, ty: &str) -> Result<&'a Node, Error> {
    serde::__get(entries, key).ok_or_else(|| Error::missing_field(key, ty))
}

impl Serialize for HistSnapshot {
    fn to_node(&self) -> Node {
        Node::Object(vec![
            ("count".into(), Node::U64(self.count)),
            ("sum".into(), Node::U64(self.sum)),
            ("buckets".into(), self.buckets.to_node()),
        ])
    }
}

impl Deserialize for HistSnapshot {
    fn from_node(node: &Node) -> Result<Self, Error> {
        let e = node
            .as_object()
            .ok_or_else(|| Error::invalid_type("HistSnapshot", node))?;
        Ok(HistSnapshot {
            count: u64::from_node(field(e, "count", "HistSnapshot")?)?,
            sum: u64::from_node(field(e, "sum", "HistSnapshot")?)?,
            buckets: Vec::from_node(field(e, "buckets", "HistSnapshot")?)?,
        })
    }
}

impl Serialize for RingSlot {
    fn to_node(&self) -> Node {
        Node::Object(vec![
            ("worker".into(), Node::U64(self.worker)),
            ("pos".into(), Node::String(self.pos.clone())),
            ("load".into(), Node::U64(self.load)),
            ("sybils".into(), Node::U64(self.sybils)),
            ("quarantined".into(), Node::U64(self.quarantined)),
        ])
    }
}

impl Deserialize for RingSlot {
    fn from_node(node: &Node) -> Result<Self, Error> {
        let e = node
            .as_object()
            .ok_or_else(|| Error::invalid_type("RingSlot", node))?;
        Ok(RingSlot {
            worker: u64::from_node(field(e, "worker", "RingSlot")?)?,
            pos: String::from_node(field(e, "pos", "RingSlot")?)?,
            load: u64::from_node(field(e, "load", "RingSlot")?)?,
            sybils: u64::from_node(field(e, "sybils", "RingSlot")?)?,
            quarantined: u64::from_node(field(e, "quarantined", "RingSlot")?)?,
        })
    }
}

impl Serialize for MetricsSample {
    fn to_node(&self) -> Node {
        Node::Object(vec![
            ("time".into(), Node::U64(self.time)),
            ("counters".into(), pairs_node(&self.counters)),
            ("gauges".into(), pairs_node(&self.gauges)),
            (
                "hists".into(),
                Node::Object(
                    self.hists
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_node()))
                        .collect(),
                ),
            ),
            ("ring".into(), self.ring.to_node()),
        ])
    }
}

impl Deserialize for MetricsSample {
    fn from_node(node: &Node) -> Result<Self, Error> {
        let e = node
            .as_object()
            .ok_or_else(|| Error::invalid_type("MetricsSample", node))?;
        let hists = field(e, "hists", "MetricsSample")?
            .as_object()
            .ok_or_else(|| Error::custom("hists is not an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), HistSnapshot::from_node(v)?)))
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(MetricsSample {
            time: u64::from_node(field(e, "time", "MetricsSample")?)?,
            counters: pairs_from_node(field(e, "counters", "MetricsSample")?, "counters")?,
            gauges: pairs_from_node(field(e, "gauges", "MetricsSample")?, "gauges")?,
            hists,
            ring: Vec::from_node(field(e, "ring", "MetricsSample")?)?,
        })
    }
}

/// Serializes samples as JSONL, one object per line, trailing newline.
pub fn to_jsonl(samples: &[MetricsSample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&serde_json::to_string(s).expect("metrics sample serializes"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL metrics stream. Blank lines are ignored.
pub fn parse_jsonl(input: &str) -> Result<Vec<MetricsSample>, String> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let sample: MetricsSample =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(sample);
    }
    Ok(out)
}

/// Structural validation of a parsed metrics stream:
/// sample times non-decreasing, every name drawn from the registry
/// vocabulary with the right kind, counters cumulative (monotone
/// non-decreasing), and a stable name set across samples.
pub fn validate_samples(samples: &[MetricsSample]) -> Result<(), String> {
    let kind_of = |name: &str| -> Option<Kind> {
        names::ALL
            .iter()
            .find(|&&(n, _, _)| n == name)
            .map(|&(_, k, _)| k)
    };
    let mut prev_time = 0u64;
    let mut prev_counters: Option<Vec<(String, u64)>> = None;
    for (i, s) in samples.iter().enumerate() {
        if i > 0 && s.time < prev_time {
            return Err(format!(
                "sample {i}: time {} decreases from {prev_time}",
                s.time
            ));
        }
        prev_time = s.time;
        for (name, _) in &s.counters {
            match kind_of(name) {
                Some(Kind::Counter) => {}
                Some(_) => return Err(format!("sample {i}: {name} is not a counter")),
                None => return Err(format!("sample {i}: unknown counter {name}")),
            }
        }
        for (name, _) in &s.gauges {
            match kind_of(name) {
                Some(Kind::Gauge) => {}
                Some(_) => return Err(format!("sample {i}: {name} is not a gauge")),
                None => return Err(format!("sample {i}: unknown gauge {name}")),
            }
        }
        for (name, _) in &s.hists {
            match kind_of(name) {
                Some(Kind::Histogram) => {}
                Some(_) => return Err(format!("sample {i}: {name} is not a histogram")),
                None => return Err(format!("sample {i}: unknown histogram {name}")),
            }
        }
        if let Some(prev) = &prev_counters {
            if prev.len() != s.counters.len()
                || prev.iter().zip(&s.counters).any(|((a, _), (b, _))| a != b)
            {
                return Err(format!("sample {i}: counter name set changed"));
            }
            for ((name, before), (_, after)) in prev.iter().zip(&s.counters) {
                if after < before {
                    return Err(format!(
                        "sample {i}: counter {name} went backwards ({before} -> {after})"
                    ));
                }
            }
        }
        prev_counters = Some(s.counters.clone());
    }
    Ok(())
}

/// Renders samples as a CSV time series: a `time` column followed by
/// every counter and gauge column of the first sample, in stream order.
pub fn timeseries_csv(samples: &[MetricsSample]) -> String {
    let Some(first) = samples.first() else {
        return String::from("time\n");
    };
    let mut out = String::from("time");
    for (name, _) in first.counters.iter().chain(&first.gauges) {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for s in samples {
        out.push_str(&s.time.to_string());
        for (name, _) in first.counters.iter().chain(&first.gauges) {
            out.push(',');
            let v = s.counter(name).or_else(|| s.gauge(name)).unwrap_or(0);
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time: u64, done: u64) -> MetricsSample {
        MetricsSample {
            time,
            counters: vec![
                (names::TICKS.into(), time),
                (names::TASKS_DONE.into(), done),
            ],
            gauges: vec![(names::LOAD_MAX.into(), 7)],
            hists: vec![(
                names::TRANSFER_SIZE.into(),
                HistSnapshot {
                    count: 1,
                    sum: 5,
                    buckets: vec![0, 0, 0, 1],
                },
            )],
            ring: vec![RingSlot {
                worker: 3,
                pos: "00ff".into(),
                load: 7,
                sybils: 1,
                quarantined: 0,
            }],
        }
    }

    #[test]
    fn jsonl_round_trips_byte_stably() {
        let samples = vec![sample(0, 0), sample(5, 40)];
        let text = to_jsonl(&samples);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, samples);
        assert_eq!(to_jsonl(&parsed), text);
        assert!(validate_samples(&parsed).is_ok());
    }

    #[test]
    fn jsonl_key_order_is_fixed() {
        let text = to_jsonl(&[sample(1, 2)]);
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"time\":1,\"counters\":{"));
        let c = line.find("\"counters\"").unwrap();
        let g = line.find("\"gauges\"").unwrap();
        let h = line.find("\"hists\"").unwrap();
        let r = line.find("\"ring\"").unwrap();
        assert!(c < g && g < h && h < r);
    }

    #[test]
    fn validate_rejects_time_regression() {
        let samples = vec![sample(5, 1), sample(3, 2)];
        let err = validate_samples(&samples).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn validate_rejects_counter_regression() {
        let samples = vec![sample(1, 9), sample(2, 4)];
        let err = validate_samples(&samples).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_and_miskinded_names() {
        let mut s = sample(1, 1);
        s.counters.push(("bogus".into(), 1));
        assert!(validate_samples(&[s])
            .unwrap_err()
            .contains("unknown counter"));
        let mut s = sample(1, 1);
        s.gauges.push((names::TICKS.into(), 1));
        assert!(validate_samples(&[s]).unwrap_err().contains("not a gauge"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = timeseries_csv(&[sample(0, 0), sample(5, 40)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "time,ticks,tasks_done,load_max");
        assert_eq!(lines.next().unwrap(), "0,0,0,7");
        assert_eq!(lines.next().unwrap(), "5,5,40,7");
        assert_eq!(timeseries_csv(&[]), "time\n");
    }
}
