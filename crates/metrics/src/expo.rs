//! Prometheus text exposition format, rendered and validated without
//! any external dependency.
//!
//! A metrics JSONL stream is cumulative, so its *last* sample is the
//! run's final registry state; [`render_exposition`] turns one sample
//! into the classic `# HELP` / `# TYPE` / sample-line layout
//! (metric names prefixed `autobal_`), and [`validate_exposition`]
//! re-checks the emitted text against the format's structural rules —
//! the `export` subcommand self-validates before printing, and CI runs
//! the validator over the artifact it uploads.

use crate::names;
use crate::sample::MetricsSample;

const PREFIX: &str = "autobal_";

fn help_for(name: &str) -> &'static str {
    names::ALL
        .iter()
        .find(|&&(n, _, _)| n == name)
        .map(|&(_, _, help)| help)
        .unwrap_or("(unregistered)")
}

/// Renders one sample as Prometheus text exposition format.
pub fn render_exposition(sample: &MetricsSample) -> String {
    let mut out = String::new();
    let emit_head = |out: &mut String, name: &str, ty: &str| {
        out.push_str("# HELP ");
        out.push_str(PREFIX);
        out.push_str(name);
        out.push(' ');
        out.push_str(help_for(name));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(PREFIX);
        out.push_str(name);
        out.push(' ');
        out.push_str(ty);
        out.push('\n');
    };
    for (name, value) in &sample.counters {
        emit_head(&mut out, name, "counter");
        out.push_str(&format!("{PREFIX}{name} {value}\n"));
    }
    for (name, value) in &sample.gauges {
        emit_head(&mut out, name, "gauge");
        out.push_str(&format!("{PREFIX}{name} {value}\n"));
    }
    for (name, h) in &sample.hists {
        emit_head(&mut out, name, "histogram");
        // Log₂ buckets: bucket i holds values of bit length i, so the
        // inclusive upper bound is 2^i − 1; cumulative per the format.
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            let le = (1u128 << i) - 1;
            out.push_str(&format!("{PREFIX}{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!(
            "{PREFIX}{name}_bucket{{le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!("{PREFIX}{name}_sum {}\n", h.sum));
        out.push_str(&format!("{PREFIX}{name}_count {}\n", h.count));
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Structural validation of text exposition format:
/// every sample line names a metric with a preceding `# TYPE`, names
/// are well-formed, TYPE values are known, values parse as numbers,
/// histogram bucket series are cumulative and end with `le="+Inf"`
/// matching `_count`.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    // name -> (last cumulative bucket value, saw +Inf, inf value)
    let mut buckets: BTreeMap<String, (u64, bool, u64)> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {n}: bad HELP metric name {name:?}"));
            }
            helped.insert(name.to_string(), true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let ty = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {n}: bad TYPE metric name {name:?}"));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE {ty:?}"));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return Err(format!("line {n}: no value on sample line")),
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((base, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (base, Some(labels))
            }
            None => (name_part, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {n}: value {value_part:?} is not a number"))?;
        // The family a sample belongs to: histogram series use the
        // _bucket/_sum/_count suffixes of the declared family name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        match types.get(family) {
            None => return Err(format!("line {n}: sample for {name} precedes its TYPE")),
            Some(ty) if ty == "histogram" => {
                if name.ends_with("_bucket") {
                    let labels =
                        labels.ok_or_else(|| format!("line {n}: bucket without le label"))?;
                    let le = labels
                        .strip_prefix("le=\"")
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| format!("line {n}: malformed le label {labels:?}"))?;
                    let entry = buckets.entry(family.to_string()).or_insert((0, false, 0));
                    if entry.1 {
                        return Err(format!("line {n}: bucket after le=\"+Inf\" for {family}"));
                    }
                    let cum = value as u64;
                    if cum < entry.0 {
                        return Err(format!(
                            "line {n}: bucket series for {family} not cumulative"
                        ));
                    }
                    entry.0 = cum;
                    if le == "+Inf" {
                        entry.1 = true;
                        entry.2 = cum;
                    }
                } else if name.ends_with("_count") {
                    counts.insert(family.to_string(), value as u64);
                }
            }
            Some(_) => {
                if labels.is_some() {
                    // Plain counters/gauges in this exposition carry no labels.
                    return Err(format!("line {n}: unexpected labels on {name}"));
                }
            }
        }
        let _ = value;
    }
    for (family, (_, saw_inf, inf_val)) in &buckets {
        if !saw_inf {
            return Err(format!("histogram {family} lacks an le=\"+Inf\" bucket"));
        }
        if let Some(count) = counts.get(family) {
            if count != inf_val {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf_val} != _count {count}"
                ));
            }
        }
    }
    for name in types.keys() {
        if !helped.contains_key(name) {
            return Err(format!("metric {name} has TYPE but no HELP"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::LoadDist;
    use crate::hub::{MetricsHub, MetricsSink};

    fn rendered() -> String {
        let mut hub = MetricsHub::new(true);
        hub.event("sybil_created", 5);
        hub.message(names::MSG_DELIVERED, 1);
        hub.inc(names::TICKS);
        let mut dist = LoadDist::new();
        for l in [0u64, 3, 9] {
            dist.insert(l);
        }
        hub.sample_from_dist(4, &dist, Vec::new());
        render_exposition(&hub.samples()[0])
    }

    #[test]
    fn rendered_exposition_validates() {
        let text = rendered();
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE autobal_sybil_created counter"));
        assert!(text.contains("autobal_sybil_created 1"));
        assert!(text.contains("# TYPE autobal_gini_ppm gauge"));
        assert!(text.contains("# TYPE autobal_transfer_size histogram"));
        assert!(text.contains("autobal_transfer_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("autobal_transfer_size_sum 5"));
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_exposition("autobal_x 1\n")
            .unwrap_err()
            .contains("precedes"));
        assert!(
            validate_exposition("# HELP autobal_x h\n# TYPE autobal_x widget\n")
                .unwrap_err()
                .contains("unknown TYPE")
        );
        assert!(
            validate_exposition("# HELP autobal_x h\n# TYPE autobal_x counter\nautobal_x\n")
                .unwrap_err()
                .contains("no value")
        );
        assert!(validate_exposition(
            "# HELP autobal_x h\n# TYPE autobal_x counter\nautobal_x abc\n"
        )
        .unwrap_err()
        .contains("not a number"));
        let no_inf = "# HELP autobal_h h\n# TYPE autobal_h histogram\nautobal_h_bucket{le=\"1\"} 2\nautobal_h_count 2\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        let non_cum = "# HELP autobal_h h\n# TYPE autobal_h histogram\nautobal_h_bucket{le=\"1\"} 2\nautobal_h_bucket{le=\"3\"} 1\n";
        assert!(validate_exposition(non_cum)
            .unwrap_err()
            .contains("cumulative"));
        let type_no_help = "# TYPE autobal_x counter\nautobal_x 1\n";
        assert!(validate_exposition(type_no_help)
            .unwrap_err()
            .contains("no HELP"));
    }
}
