//! Deterministic, splittable randomness.
//!
//! Every experiment in the workspace is reproducible from a single `u64`
//! seed. Trials run in parallel (rayon), so each trial derives an
//! independent stream with [`trial_rng`]; inside a trial, subsystems
//! (placement, churn, strategy decisions) can derive further independent
//! substreams with [`substream`] so adding randomness to one subsystem
//! never perturbs another.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used everywhere: ChaCha with 8 rounds — fast,
/// high quality, and jump-free seeding via (seed, stream) pairs.
pub type DetRng = ChaCha8Rng;

/// Root RNG for a given seed.
pub fn seeded_rng(seed: u64) -> DetRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Independent RNG for trial `trial` of an experiment with master seed
/// `seed`. Distinct trials get distinct ChaCha streams of the same key,
/// which are independent by construction.
pub fn trial_rng(seed: u64, trial: u64) -> DetRng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(trial);
    rng
}

/// Further split: an independent substream for a named subsystem within
/// a trial. `domain` values must be unique per subsystem (use the
/// constants below).
pub fn substream(seed: u64, trial: u64, domain: u64) -> DetRng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.set_stream(trial);
    rng
}

/// Substream domains used across the workspace.
pub mod domains {
    /// Node ID placement.
    pub const PLACEMENT: u64 = 1;
    /// Task key generation.
    pub const TASKS: u64 = 2;
    /// Churn coin flips and joining IDs.
    pub const CHURN: u64 = 3;
    /// Strategy decisions (Sybil target selection).
    pub const STRATEGY: u64 = 4;
    /// Node strengths in heterogeneous networks.
    pub const STRENGTH: u64 = 5;
    /// Static virtual-server placement (the classic baseline).
    pub const STATICS: u64 = 6;
    /// Fault-plane decisions (crash-victim selection).
    pub const FAULTS: u64 = 7;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn trials_are_independent_streams() {
        let mut t0 = trial_rng(7, 0);
        let mut t1 = trial_rng(7, 1);
        let v0: Vec<u64> = (0..8).map(|_| t0.gen()).collect();
        let v1: Vec<u64> = (0..8).map(|_| t1.gen()).collect();
        assert_ne!(v0, v1);
        // And reproducible.
        let mut t0b = trial_rng(7, 0);
        let v0b: Vec<u64> = (0..8).map(|_| t0b.gen()).collect();
        assert_eq!(v0, v0b);
    }

    #[test]
    fn substreams_do_not_collide() {
        let mut a = substream(7, 0, domains::PLACEMENT);
        let mut b = substream(7, 0, domains::TASKS);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substream_reproducible() {
        let mut a = substream(9, 3, domains::CHURN);
        let mut b = substream(9, 3, domains::CHURN);
        assert_eq!(a.gen::<u128>(), b.gen::<u128>());
    }
}
