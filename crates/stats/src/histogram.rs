//! Linear and logarithmic histograms of workload samples.
//!
//! The paper's figures are all histograms of "tasks per node": Figure 1
//! uses logarithmic task bins; Figures 4–14 use linear bins and compare
//! two networks side by side. Both flavors here produce plain
//! `(bin, count)` rows that the viz crate renders to ASCII/CSV/SVG.

/// A linear-binned histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    /// Inclusive lower edge of bin 0.
    pub origin: u64,
    /// Width of every bin (> 0).
    pub bin_width: u64,
    /// `counts[i]` covers `[origin + i·w, origin + (i+1)·w)`.
    pub counts: Vec<u64>,
    /// Samples below `origin` (should stay 0 in our use).
    pub underflow: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` bins of width `bin_width` starting
    /// at `origin`; samples beyond the top edge are clamped into the last
    /// bin so mass is never silently dropped.
    ///
    /// # Panics
    /// Panics if `bin_width == 0` or `bins == 0`.
    pub fn build(values: &[u64], origin: u64, bin_width: u64, bins: usize) -> Histogram {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0u64; bins];
        let mut underflow = 0;
        for &v in values {
            if v < origin {
                underflow += 1;
                continue;
            }
            let idx = ((v - origin) / bin_width) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        Histogram {
            origin,
            bin_width,
            counts,
            underflow,
        }
    }

    /// Picks a bin width so that `max(values)` lands in the last of
    /// roughly `target_bins` bins, then builds the histogram from zero.
    pub fn auto(values: &[u64], target_bins: usize) -> Histogram {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = (max / target_bins.max(1) as u64).max(1);
        let bins = (max / width + 1) as usize;
        Histogram::build(values, 0, width, bins)
    }

    /// Total number of binned samples (excluding underflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(lower_edge, upper_edge, count)` rows.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = self.origin + i as u64 * self.bin_width;
                (lo, lo + self.bin_width, c)
            })
            .collect()
    }

    /// Normalized probabilities per bin (sums to 1 unless empty).
    pub fn probabilities(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / t as f64).collect()
    }
}

/// A base-2 logarithmic histogram: bin `k ≥ 1` covers `[2^(k−1), 2^k)`,
/// bin 0 counts exact zeros. Matches the paper's Figure 1, which spans
/// workloads from idle nodes to >10⁴ tasks on a log axis.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    /// `counts[0]` = zeros; `counts[k]` = samples in `[2^(k−1), 2^k)`.
    pub counts: Vec<u64>,
}

impl LogHistogram {
    /// Builds the histogram; the vector grows to fit the largest sample.
    pub fn build(values: &[u64]) -> LogHistogram {
        let mut counts: Vec<u64> = Vec::new();
        for &v in values {
            let bin = if v == 0 {
                0
            } else {
                (64 - v.leading_zeros()) as usize
            };
            if counts.len() <= bin {
                counts.resize(bin + 1, 0);
            }
            counts[bin] += 1;
        }
        LogHistogram { counts }
    }

    /// `(lower, upper_exclusive, count)` rows; the zero bin reports
    /// `(0, 1, zeros)`.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                if k == 0 {
                    (0, 1, c)
                } else {
                    (1u64 << (k - 1), 1u64 << k, c)
                }
            })
            .collect()
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_places_values() {
        let h = Histogram::build(&[0, 5, 9, 10, 15, 99], 0, 10, 3);
        // Bins: [0,10) [10,20) [20,30)+clamped
        assert_eq!(h.counts, vec![3, 2, 1]);
        assert_eq!(h.underflow, 0);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn overflow_clamps_into_last_bin() {
        let h = Histogram::build(&[1000], 0, 10, 5);
        assert_eq!(*h.counts.last().unwrap(), 1);
    }

    #[test]
    fn underflow_counted_separately() {
        let h = Histogram::build(&[5, 15], 10, 10, 2);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_bin_width_rejected() {
        Histogram::build(&[1], 0, 0, 1);
    }

    #[test]
    fn rows_report_edges() {
        let h = Histogram::build(&[0, 10], 0, 10, 2);
        assert_eq!(h.rows(), vec![(0, 10, 1), (10, 20, 1)]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let h = Histogram::build(&[1, 2, 3, 11, 12, 25], 0, 10, 3);
        let p: f64 = h.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_of_empty_are_zero() {
        let h = Histogram::build(&[], 0, 10, 3);
        assert_eq!(h.probabilities(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn auto_covers_max() {
        let vals = [0u64, 3, 17, 999];
        let h = Histogram::auto(&vals, 10);
        assert_eq!(h.total(), 4);
        // Max value must not be clamped out of range: last bin holds it.
        let rows = h.rows();
        assert!(rows.last().unwrap().2 >= 1 || rows.iter().any(|r| r.2 > 0));
        assert_eq!(h.rows().iter().map(|r| r.2).sum::<u64>(), 4);
    }

    #[test]
    fn log_bins_are_powers_of_two() {
        let h = LogHistogram::build(&[0, 1, 2, 3, 4, 1024]);
        // zeros:1; [1,2):1; [2,4):2; [4,8):1; ... [1024,2048):1
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[11], 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_rows_edges() {
        let h = LogHistogram::build(&[0, 1, 7]);
        let rows = h.rows();
        assert_eq!(rows[0], (0, 1, 1));
        assert_eq!(rows[1], (1, 2, 1));
        assert_eq!(rows[3], (4, 8, 1));
    }

    #[test]
    fn log_histogram_of_empty() {
        let h = LogHistogram::build(&[]);
        assert_eq!(h.total(), 0);
        assert!(h.rows().is_empty());
    }
}
