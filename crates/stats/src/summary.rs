//! Order statistics and moments of a workload sample.

/// A summary of a sample of non-negative workloads (tasks per node).
///
/// Matches the columns of Table I in the paper: mean, median, and the
/// sample standard deviation σ, plus extremes and quartiles used by the
/// other experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator), the paper's σ.
    pub std_dev: f64,
    pub min: u64,
    pub max: u64,
    pub median: f64,
    pub p25: f64,
    pub p75: f64,
    pub p95: f64,
    pub p99: f64,
    pub total: u64,
}

impl Summary {
    /// Computes a summary of `values`. Returns `None` for an empty sample.
    pub fn from_u64s(values: &[u64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();

        let n = sorted.len();
        let total: u64 = sorted.iter().sum();
        let mean = total as f64 / n as f64;
        let var = if n > 1 {
            sorted
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };

        Some(Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p25: percentile_sorted(&sorted, 25.0),
            p75: percentile_sorted(&sorted, 75.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            total,
        })
    }

    /// The imbalance ratio `max / mean`; 1.0 means a perfectly level
    /// network, `ln n`-ish is typical for random placement.
    pub fn max_over_mean(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
///
/// Uses the standard "linear interpolation between closest ranks" method
/// (R-7, the numpy default): `h = (n−1)·p/100`.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0] as f64;
    }
    let h = (n - 1) as f64 * p / 100.0;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] as f64 + (sorted[hi] as f64 - sorted[lo] as f64) * frac
}

/// Averages a sequence of summaries column-wise — how the paper averages
/// "100 trials" into a single table row.
pub fn average_summaries(rows: &[Summary]) -> Option<Summary> {
    if rows.is_empty() {
        return None;
    }
    let k = rows.len() as f64;
    let avg = |f: fn(&Summary) -> f64| rows.iter().map(f).sum::<f64>() / k;
    Some(Summary {
        count: (rows.iter().map(|r| r.count).sum::<usize>() as f64 / k).round() as usize,
        mean: avg(|r| r.mean),
        std_dev: avg(|r| r.std_dev),
        min: (rows.iter().map(|r| r.min).sum::<u64>() as f64 / k).round() as u64,
        max: (rows.iter().map(|r| r.max).sum::<u64>() as f64 / k).round() as u64,
        median: avg(|r| r.median),
        p25: avg(|r| r.p25),
        p75: avg(|r| r.p75),
        p95: avg(|r| r.p95),
        p99: avg(|r| r.p99),
        total: (rows.iter().map(|r| r.total).sum::<u64>() as f64 / k).round() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::from_u64s(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::from_u64s(&[7]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn known_small_sample() {
        // 1..=5: mean 3, sample variance 2.5, median 3.
        let s = Summary::from_u64s(&[5, 3, 1, 2, 4]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.total, 15);
    }

    #[test]
    fn even_count_median_interpolates() {
        let s = Summary::from_u64s(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [10, 20, 30, 40];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 40.0);
        assert_eq!(percentile_sorted(&v, 50.0), 25.0);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_out_of_range() {
        percentile_sorted(&[1], 101.0);
    }

    #[test]
    fn max_over_mean_detects_imbalance() {
        let level = Summary::from_u64s(&[10, 10, 10, 10]).unwrap();
        assert_eq!(level.max_over_mean(), 1.0);
        let skewed = Summary::from_u64s(&[0, 0, 0, 40]).unwrap();
        assert_eq!(skewed.max_over_mean(), 4.0);
    }

    #[test]
    fn averaging_summaries() {
        let a = Summary::from_u64s(&[0, 10]).unwrap();
        let b = Summary::from_u64s(&[10, 20]).unwrap();
        let avg = average_summaries(&[a, b]).unwrap();
        assert_eq!(avg.mean, 10.0);
        assert_eq!(avg.median, 10.0);
        assert_eq!(avg.count, 2);
        assert!(average_summaries(&[]).is_none());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s1 = Summary::from_u64s(&[9, 1, 5, 3, 7]).unwrap();
        let s2 = Summary::from_u64s(&[1, 3, 5, 7, 9]).unwrap();
        assert_eq!(s1, s2);
    }
}
