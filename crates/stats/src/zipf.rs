//! Zipf sampling and heavy-tail diagnostics.
//!
//! §III of the paper observes that DHT workload distributions are "better
//! represented by a Zipfian distribution" than a uniform one. We provide
//! a Zipf sampler (used by the skewed-workload example) and a crude
//! log–log rank-size slope estimator to quantify that claim on measured
//! workloads.

use rand::Rng;

/// A Zipf(α) distribution over ranks `1..=n`, sampled by inversion over
/// the precomputed CDF (O(log n) per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. `alpha` is the exponent (1.0 = classic
    /// Zipf); `n` the number of ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }
}

/// Least-squares slope of `log(size)` against `log(rank)` for the
/// nonzero values sorted descending — a Zipf-like sample yields a slope
/// near `−α`. Returns `None` with fewer than 3 nonzero values.
pub fn rank_size_slope(values: &[u64]) -> Option<f64> {
    let mut v: Vec<u64> = values.iter().copied().filter(|&x| x > 0).collect();
    if v.len() < 3 {
        return None;
    }
    v.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (((i + 1) as f64).ln(), (x as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(50, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = z.sample(&mut rng);
            assert!((1..=50).contains(&r));
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = vec![0u64; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[50] * 5);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0u64; 5];
        let draws = 40_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate().skip(1) {
            let p = c as f64 / draws as f64;
            assert!((p - 0.25).abs() < 0.02, "rank {k} p={p}");
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn slope_of_exact_zipf_is_minus_alpha() {
        // Sizes k^-1.5 scaled up: slope should recover ≈ -1.5.
        let values: Vec<u64> = (1..=200u64)
            .map(|k| ((1e9 / (k as f64).powf(1.5)) as u64).max(1))
            .collect();
        let s = rank_size_slope(&values).unwrap();
        assert!((s + 1.5).abs() < 0.05, "slope {s}");
    }

    #[test]
    fn slope_requires_enough_points() {
        assert!(rank_size_slope(&[5, 4]).is_none());
        assert!(rank_size_slope(&[0, 0, 0]).is_none());
    }

    #[test]
    fn slope_of_constant_sample_is_zero() {
        let s = rank_size_slope(&[7, 7, 7, 7, 7]).unwrap();
        assert!(s.abs() < 1e-9);
    }
}
