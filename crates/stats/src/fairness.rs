//! Load-balance quality metrics.
//!
//! The paper argues qualitatively from histograms; to make "significantly
//! rebalance the workload" quantitative we track the three standard
//! fairness measures of the load-balancing literature.

/// Gini coefficient of a workload sample, in `[0, 1)`.
///
/// 0 = perfectly equal; → 1 as one node holds everything. Uses the
/// sorted-sample formula `G = (2·Σ i·x_i)/(n·Σ x_i) − (n+1)/n` with
/// 1-based ranks `i`.
pub fn gini(values: &[u64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    gini_sorted(&sorted)
}

/// [`gini`] over an already-ascending sample, skipping the copy and
/// sort. Callers that reuse a scratch buffer (the simulator's per-tick
/// series sampling) sort in place and come here.
pub fn gini_sorted(sorted: &[u64]) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let total: u128 = sorted.iter().map(|&v| v as u128).sum();
    let weighted: u128 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u128 + 1) * v as u128)
        .sum();
    gini_from_sums(sorted.len(), total, weighted)
}

/// The Gini float expression over the exact integer aggregates of a
/// sorted sample: `n`, `total = Σ x_i`, and the rank-weighted sum
/// `weighted = Σ (i+1)·x_i`. This is the *single* place the formula is
/// evaluated — both the batch recompute above and the incremental
/// structure in `autobal-metrics` feed their (identical) integer sums
/// through here, which is what makes the two paths bit-equal.
pub fn gini_from_sums(n: usize, total: u128, weighted: u128) -> f64 {
    if n == 0 || total == 0 {
        return 0.0;
    }
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Nearest-rank percentile of a sorted sample: the k-th smallest value
/// with `k = max(1, ceil(p·n/100))`, clamped to `p ∈ [0, 100]`.
/// Returns 0 for an empty sample. The batch oracle the incremental
/// percentile tracker is pinned against.
pub fn percentile_sorted(sorted: &[u64], p: u64) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let n = sorted.len() as u64;
    if n == 0 {
        return 0;
    }
    let p = p.min(100);
    let k = (p * n).div_ceil(100).max(1);
    sorted[(k - 1) as usize]
}

/// Imbalance factor max/mean of a sorted sample (1.0 = perfectly
/// level). Returns 0.0 for an empty or all-zero sample. Computed as
/// `max·n / total` over the exact integer sums, so the incremental
/// recompute can reproduce it bit-for-bit.
pub fn imbalance_sorted(sorted: &[u64]) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let total: u128 = sorted.iter().map(|&v| v as u128).sum();
    imbalance_from_sums(sorted.last().copied().unwrap_or(0), sorted.len(), total)
}

/// The imbalance float expression over exact integer aggregates; the
/// shared evaluation point for batch and incremental paths.
pub fn imbalance_from_sums(max: u64, n: usize, total: u128) -> f64 {
    if n == 0 || total == 0 {
        return 0.0;
    }
    (max as f64 * n as f64) / total as f64
}

/// Jain's fairness index, in `(0, 1]`: `(Σx)² / (n·Σx²)`.
///
/// 1 = perfectly equal; `1/n` when a single node holds everything.
/// Returns 1.0 for an all-zero (trivially fair) sample.
pub fn jain_index(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().map(|&v| v as f64).sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
    sum * sum / (n as f64 * sum_sq)
}

/// Coefficient of variation σ/μ (population σ). 0 = perfectly level.
/// Returns 0.0 for an empty or all-zero sample.
pub fn coefficient_of_variation(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_equal_sample_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_sample_approaches_one() {
        // One of n holds everything: G = (n-1)/n.
        let mut v = vec![0u64; 99];
        v.push(1000);
        let g = gini(&v);
        assert!((g - 0.99).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert_eq!(gini(&[42]), 0.0);
    }

    #[test]
    fn gini_known_half() {
        // [0, x]: G = 1/2.
        assert!((gini(&[0, 10]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gini_sorted_matches_gini() {
        let samples: [&[u64]; 5] = [&[], &[0, 0], &[42], &[3, 1, 4, 1, 5, 9, 2, 6], &[0, 10]];
        for s in samples {
            let mut sorted = s.to_vec();
            sorted.sort_unstable();
            assert_eq!(gini(s), gini_sorted(&sorted), "sample {s:?}");
        }
    }

    #[test]
    fn jain_of_equal_is_one() {
        assert!((jain_index(&[3, 3, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_of_concentrated_is_one_over_n() {
        let mut v = vec![0u64; 9];
        v.push(100);
        assert!((jain_index(&v) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
    }

    #[test]
    fn cov_zero_for_level_loads() {
        assert_eq!(coefficient_of_variation(&[4, 4, 4]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0, 0]), 0.0);
    }

    #[test]
    fn cov_known_value() {
        // [0, 2]: mean 1, pop σ = 1, CoV = 1.
        assert!((coefficient_of_variation(&[0, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_order_balanced_before_skewed() {
        let balanced = [100u64, 110, 90, 105, 95];
        let skewed = [5u64, 0, 480, 10, 5];
        assert!(gini(&balanced) < gini(&skewed));
        assert!(jain_index(&balanced) > jain_index(&skewed));
        assert!(coefficient_of_variation(&balanced) < coefficient_of_variation(&skewed));
    }
}
