//! # autobal-stats
//!
//! Statistics used throughout the reproduction:
//!
//! * [`summary`] — mean / median / σ / percentiles over workloads
//!   (Table I of the paper reports exactly these).
//! * [`histogram`] — linear and logarithmic histograms (Figures 1 and
//!   4–14 are workload histograms).
//! * [`fairness`] — Gini coefficient, Jain's fairness index, and the
//!   coefficient of variation, the standard load-balance metrics.
//! * [`spacings`] — closed-form theory for random arcs on a circle:
//!   what the workload distribution *should* look like when `n` node IDs
//!   are placed uniformly at random, which the paper's Table I samples
//!   empirically.
//! * [`zipf`] — Zipf sampling and a log–log tail diagnostic (§III argues
//!   DHT workloads are "better represented by a Zipfian distribution").
//! * [`rng`] — deterministic, splittable random number generators so every
//!   experiment is reproducible from a single seed.

pub mod ci;
pub mod fairness;
pub mod histogram;
pub mod rng;
pub mod spacings;
pub mod summary;
pub mod zipf;

pub use ci::{bootstrap_mean_ci, ConfidenceInterval};
pub use fairness::{coefficient_of_variation, gini, gini_sorted, jain_index};
pub use histogram::{Histogram, LogHistogram};
pub use rng::{seeded_rng, DetRng};
pub use summary::Summary;
