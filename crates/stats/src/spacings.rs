//! Closed-form theory of random arcs on a circle.
//!
//! When `n` node IDs are dropped uniformly at random on the ring, the arc
//! lengths (fractions of the circle) are distributed like the spacings of
//! `n` uniform points: each arc is `Beta(1, n−1)`-distributed with mean
//! `1/n`, and for large `n` is well approximated by an exponential with
//! rate `n`. With `T` tasks placed uniformly, a node's expected workload
//! is `T·(arc length)`, which explains every number in Table I:
//!
//! * the **median** workload is `T/n · ln 2 ≈ 0.693·T/n` (the median of an
//!   exponential), e.g. 692.3 for `T = 10⁶, n = 10³`;
//! * the **σ** is ≈ the mean `T/n` (exponential: σ = mean), e.g. ≈ 997;
//! * the **max** workload is ≈ `T·H_n/n ≈ T·ln n / n`, which fixes the
//!   no-strategy runtime factor at ≈ `ln n` (7.5 at n=1000, 5.0 at n=100).

/// Harmonic number `H_n = Σ_{k=1..n} 1/k`.
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n < 10_000 {
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        // Asymptotic expansion: ln n + γ + 1/2n − 1/12n².
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let nf = n as f64;
        nf.ln() + EULER_GAMMA + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// Expected mean workload: `T / n`.
pub fn expected_mean_load(nodes: u64, tasks: u64) -> f64 {
    tasks as f64 / nodes as f64
}

/// Expected **median** workload `T/n · ln 2` — the "Median Workload"
/// column of Table I.
pub fn expected_median_load(nodes: u64, tasks: u64) -> f64 {
    expected_mean_load(nodes, tasks) * std::f64::consts::LN_2
}

/// Expected **standard deviation** of workloads — ≈ the mean for
/// exponential spacings, with the exact Beta correction `√((n−1)/(n+1))`.
pub fn expected_std_load(nodes: u64, tasks: u64) -> f64 {
    let n = nodes as f64;
    expected_mean_load(nodes, tasks) * ((n - 1.0) / (n + 1.0)).sqrt()
}

/// Expected **maximum** arc fraction among `n` random arcs: `H_n / n`.
/// The straggler's workload is `T · H_n / n`, and the no-strategy runtime
/// factor is therefore ≈ `H_n ≈ ln n + γ`.
pub fn expected_max_arc_fraction(nodes: u64) -> f64 {
    harmonic(nodes) / nodes as f64
}

/// Expected maximum workload: `T · H_n / n`.
pub fn expected_max_load(nodes: u64, tasks: u64) -> f64 {
    tasks as f64 * expected_max_arc_fraction(nodes)
}

/// The no-strategy runtime factor predicted by theory: the straggler
/// needs `T·H_n/n` ticks while the ideal runtime is `T/n`, so the factor
/// is simply `H_n`.
pub fn predicted_baseline_runtime_factor(nodes: u64) -> f64 {
    harmonic(nodes)
}

/// Probability an exponential-arc node holds at most `x` tasks when the
/// mean is `mu`: `1 − exp(−x/mu)`. Used to sanity-check histograms.
pub fn workload_cdf(x: f64, mu: f64) -> f64 {
    if mu <= 0.0 {
        return 1.0;
    }
    1.0 - (-x / mu).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_matches_exact_at_crossover() {
        // Compare the direct sum and the expansion near the switch point.
        let exact: f64 = (1..=20_000u64).map(|k| 1.0 / k as f64).sum();
        let approx = harmonic(20_000);
        assert!((exact - approx).abs() < 1e-9);
    }

    #[test]
    fn table1_median_prediction() {
        // Paper Table I: 1000 nodes, 1e6 tasks -> median 692.3.
        let m = expected_median_load(1000, 1_000_000);
        assert!((m - 693.1).abs() < 1.0, "got {m}");
        // 10000 nodes, 1e5 tasks -> median 7.0 in the paper.
        let m2 = expected_median_load(10_000, 100_000);
        assert!((m2 - 6.93).abs() < 0.1, "got {m2}");
    }

    #[test]
    fn table1_sigma_prediction() {
        // Paper: 1000/1e6 -> σ = 996.98 ≈ mean 1000.
        let s = expected_std_load(1000, 1_000_000);
        assert!((s - 999.0).abs() < 2.0, "got {s}");
    }

    #[test]
    fn baseline_factor_matches_paper_magnitudes() {
        // Paper Table II row churn=0: 7.476 for n=1000, ~5.02 for n=100.
        let f1000 = predicted_baseline_runtime_factor(1000);
        let f100 = predicted_baseline_runtime_factor(100);
        assert!((f1000 - 7.48).abs() < 0.2, "got {f1000}");
        assert!((f100 - 5.19).abs() < 0.2, "got {f100}");
    }

    #[test]
    fn max_load_grows_like_log() {
        let m100 = expected_max_load(100, 100_000);
        let m1000 = expected_max_load(1000, 100_000);
        // More nodes, smaller straggler, sublinear shrink.
        assert!(m1000 < m100);
        assert!(m1000 > m100 / 10.0);
    }

    #[test]
    fn cdf_properties() {
        assert_eq!(workload_cdf(0.0, 100.0), 0.0);
        assert!((workload_cdf(100.0 * std::f64::consts::LN_2, 100.0) - 0.5).abs() < 1e-12);
        assert!(workload_cdf(1e9, 100.0) > 0.999999);
        assert_eq!(workload_cdf(5.0, 0.0), 1.0);
    }
}
