//! Percentile-bootstrap confidence intervals for trial means.
//!
//! The paper reports bare means of 100 trials; for EXPERIMENTS.md we
//! attach nonparametric 95 % confidence intervals so paper-vs-measured
//! comparisons can distinguish noise from real divergence.

use crate::rng::DetRng;
use rand::Rng;

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceInterval {
    pub mean: f64,
    pub lo: f64,
    pub hi: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `v`.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Percentile-bootstrap CI of the sample mean with `resamples` draws.
///
/// Deterministic given the RNG. Returns `None` for an empty sample.
///
/// # Panics
/// Panics if `level` is outside `(0, 1)` or `resamples == 0`.
pub fn bootstrap_mean_ci(
    sample: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut DetRng,
) -> Option<ConfidenceInterval> {
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "bad level {level}"
    );
    assert!(resamples > 0, "need at least one resample");
    if sample.is_empty() {
        return None;
    }
    let n = sample.len();
    let mean = sample.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(ConfidenceInterval {
            mean,
            lo: mean,
            hi: mean,
            level,
        });
    }
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += sample[rng.gen_range(0..n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_unstable_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    Some(ConfidenceInterval {
        mean,
        lo: means[lo_idx],
        hi: means[hi_idx],
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn ci_brackets_the_mean() {
        let sample: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&sample, 0.95, 2000, &mut seeded_rng(1)).unwrap();
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.contains(4.5), "true mean 4.5 inside {ci:?}");
        assert!(ci.half_width() < 1.0);
    }

    #[test]
    fn tight_sample_tight_interval() {
        let sample = vec![5.0; 50];
        let ci = bootstrap_mean_ci(&sample, 0.95, 500, &mut seeded_rng(2)).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
    }

    #[test]
    fn single_observation_degenerate() {
        let ci = bootstrap_mean_ci(&[3.25], 0.9, 100, &mut seeded_rng(3)).unwrap();
        assert_eq!((ci.lo, ci.hi), (3.25, 3.25));
    }

    #[test]
    fn empty_sample_none() {
        assert!(bootstrap_mean_ci(&[], 0.95, 100, &mut seeded_rng(4)).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let sample: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&sample, 0.95, 1000, &mut seeded_rng(5)).unwrap();
        let b = bootstrap_mean_ci(&sample, 0.95, 1000, &mut seeded_rng(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wider_level_wider_interval() {
        let sample: Vec<f64> = (0..60).map(|i| ((i * 37) % 23) as f64).collect();
        let narrow = bootstrap_mean_ci(&sample, 0.5, 2000, &mut seeded_rng(6)).unwrap();
        let wide = bootstrap_mean_ci(&sample, 0.99, 2000, &mut seeded_rng(6)).unwrap();
        assert!(wide.half_width() >= narrow.half_width());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_level() {
        bootstrap_mean_ci(&[1.0], 1.5, 10, &mut seeded_rng(7));
    }
}
