//! Routing measurement helpers.
//!
//! Chord's headline routing property is `O(log n)` lookup hops; the
//! `chord_micro` bench and the overlay tests use these helpers to measure
//! average hop counts against the theoretical ≈ ½·log₂ n.

use crate::network::Network;
use autobal_id::Id;

/// Statistics from a batch of measured lookups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopStats {
    pub lookups: u64,
    pub total_hops: u64,
    pub max_hops: u32,
    pub failed: u64,
}

impl HopStats {
    pub fn mean(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.lookups as f64
        }
    }
}

/// Performs `count` lookups of random keys from random starting nodes
/// and aggregates hop counts. Failed lookups (possible mid-churn) are
/// counted, not unwrapped.
pub fn measure_hops<R: rand::Rng + ?Sized>(
    net: &mut Network,
    count: usize,
    rng: &mut R,
) -> HopStats {
    let ids = net.node_ids();
    let mut stats = HopStats {
        lookups: 0,
        total_hops: 0,
        max_hops: 0,
        failed: 0,
    };
    if ids.is_empty() {
        return stats;
    }
    for _ in 0..count {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = Id::random(rng);
        match net.lookup(from, key) {
            Ok(res) => {
                stats.lookups += 1;
                stats.total_hops += res.hops as u64;
                stats.max_hops = stats.max_hops.max(res.hops);
            }
            Err(_) => stats.failed += 1,
        }
    }
    stats
}

/// The theoretical expected hop count for an `n`-node Chord ring:
/// ½·log₂ n.
pub fn expected_hops(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn measured_hops_track_theory() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Network::bootstrap(NetConfig::default(), 512, &mut rng);
        let stats = measure_hops(&mut net, 300, &mut rng);
        assert_eq!(stats.failed, 0);
        let mean = stats.mean();
        let theory = expected_hops(512); // 4.5
        assert!(
            (mean - theory).abs() < 2.0,
            "mean {mean} vs theory {theory}"
        );
    }

    #[test]
    fn empty_network_measures_nothing() {
        let mut net = Network::new(NetConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stats = measure_hops(&mut net, 10, &mut rng);
        assert_eq!(stats.lookups, 0);
        assert_eq!(stats.mean(), 0.0);
    }

    #[test]
    fn expected_hops_values() {
        assert_eq!(expected_hops(0), 0.0);
        assert_eq!(expected_hops(1), 0.0);
        assert!((expected_hops(1024) - 5.0).abs() < 1e-12);
    }
}
