//! The fault-injection plane: deterministic, seeded adversity for both
//! network fidelities.
//!
//! A [`FaultPlan`] is pure configuration — per-message loss, duplication
//! and extra-delay rates, scheduled crash-failures, transient partitions,
//! and the retry/backoff envelope the protocol uses to survive them. A
//! [`FaultState`] is the plan armed with its own ChaCha stream: every
//! fault decision draws from this dedicated RNG and from nothing else,
//! and zero-rate paths draw nothing at all, so an inert plan
//! (`FaultPlan::default()`) is bit-for-bit invisible to every other
//! random stream in the system. That invariant is what keeps the
//! fixed-seed parity pins in `tests/strategy_parity.rs` and
//! `tests/differential.rs` valid.

use autobal_id::Id;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A scheduled crash-failure: at time `at` (ticks on the synchronous
/// substrate, time units on the event-driven one), `count` victims are
/// drawn from the live population using the fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrashEvent {
    /// When the crash strikes (inclusive; applied once).
    pub at: u64,
    /// How many nodes die simultaneously.
    pub count: u32,
}

/// A transient partition: during `[start, end)` the ring is split in two
/// halves at a pivot id derived from the fault seed, and messages that
/// would cross the cut are dropped. Healing is implicit — the window
/// closes and traffic flows again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Partition {
    /// First time unit at which the cut is up.
    pub start: u64,
    /// First time unit at which the cut has healed.
    pub end: u64,
}

/// Declarative description of everything that goes wrong during a run.
///
/// The default plan is fully inert: no loss, no duplication, no delay,
/// no crashes, no partitions — and, crucially, no RNG draws, so a
/// network carrying the default plan behaves identically to one built
/// before the fault plane existed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Seed for the dedicated fault stream (loss coin flips, crash
    /// victim selection, partition pivots).
    #[cfg_attr(feature = "serde", serde(default))]
    pub seed: u64,
    /// Probability that any given message is silently dropped.
    #[cfg_attr(feature = "serde", serde(default))]
    pub loss_rate: f64,
    /// Probability that a delivered message is delivered twice.
    #[cfg_attr(feature = "serde", serde(default))]
    pub dup_rate: f64,
    /// Probability that a delivered message is delayed by `extra_delay`.
    #[cfg_attr(feature = "serde", serde(default))]
    pub delay_rate: f64,
    /// Additional latency (time units) applied to delayed messages.
    #[cfg_attr(feature = "serde", serde(default))]
    pub extra_delay: u64,
    /// Scheduled crash-failures.
    #[cfg_attr(feature = "serde", serde(default))]
    pub crashes: Vec<CrashEvent>,
    /// Transient partition windows.
    #[cfg_attr(feature = "serde", serde(default))]
    pub partitions: Vec<Partition>,
    /// Bounded-attempt semantics: how many times an operation (lookup
    /// hop, join, async lookup) is tried before reporting `TimedOut`.
    #[cfg_attr(feature = "serde", serde(default = "default_max_attempts"))]
    pub max_attempts: u32,
    /// Base wait before the first retry; doubles per attempt
    /// (exponential backoff). On the tick-synchronous substrate this is
    /// accounting only; the event-driven substrate waits it out for real.
    #[cfg_attr(feature = "serde", serde(default = "default_backoff_base"))]
    pub backoff_base: u64,
}

fn default_max_attempts() -> u32 {
    3
}

fn default_backoff_base() -> u64 {
    2
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            loss_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            extra_delay: 0,
            crashes: Vec::new(),
            partitions: Vec::new(),
            max_attempts: 3,
            backoff_base: 2,
        }
    }
}

impl FaultPlan {
    /// A plan that only injects message loss — the most common knob.
    pub fn lossy(seed: u64, loss_rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            loss_rate,
            ..FaultPlan::default()
        }
    }

    /// True when the plan can affect a run at all.
    pub fn is_active(&self) -> bool {
        self.loss_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || !self.crashes.is_empty()
            || !self.partitions.is_empty()
    }

    /// Checks rates and bounds; `Err` carries a human-readable reason.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("loss_rate", self.loss_rate),
            ("dup_rate", self.dup_rate),
            ("delay_rate", self.delay_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if self.loss_rate >= 1.0 {
            return Err("loss_rate 1.0 drops every message; nothing can run".into());
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        for p in &self.partitions {
            if p.start >= p.end {
                return Err(format!(
                    "partition window [{}, {}) is empty",
                    p.start, p.end
                ));
            }
        }
        Ok(())
    }
}

/// A [`FaultPlan`] armed for a run: the dedicated RNG plus the derived
/// partition pivots. Lives inside `Network` / `EventNet`.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    /// One pivot id per partition window; nodes on opposite sides of the
    /// pivot cannot talk while the window is open.
    pivots: Vec<Id>,
}

impl FaultState {
    /// Arms a plan. The pivot ids are drawn first so they depend only on
    /// the seed, not on how many messages flowed before a window opens.
    pub fn new(plan: FaultPlan) -> FaultState {
        #[cfg(feature = "strict")]
        // autobal-lint: allow(panic-safety, "strict mode is opt-in and fails loudly by design")
        plan.validate().expect("invalid fault plan");
        let mut rng = ChaCha8Rng::seed_from_u64(plan.seed ^ 0xFA17_FA17);
        let pivots = plan
            .partitions
            .iter()
            .map(|_| Id::random(&mut rng))
            .collect();
        FaultState { plan, rng, pivots }
    }

    /// The state every network starts with: nothing ever goes wrong.
    pub fn inert() -> FaultState {
        FaultState::new(FaultPlan::default())
    }

    /// The plan this state was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// See [`FaultPlan::is_active`].
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Coin flip: is this message lost? Draws nothing at rate zero.
    pub fn lose_message(&mut self) -> bool {
        self.plan.loss_rate > 0.0 && self.rng.gen::<f64>() < self.plan.loss_rate
    }

    /// Coin flip: is this message delivered twice?
    pub fn duplicate_message(&mut self) -> bool {
        self.plan.dup_rate > 0.0 && self.rng.gen::<f64>() < self.plan.dup_rate
    }

    /// Extra latency for this message (0 unless the delay coin hits).
    pub fn extra_delay(&mut self) -> u64 {
        if self.plan.delay_rate > 0.0 && self.rng.gen::<f64>() < self.plan.delay_rate {
            self.plan.extra_delay
        } else {
            0
        }
    }

    /// True when `a` and `b` sit on opposite sides of an open partition
    /// window at time `now`. Purely a function of the plan and seed — no
    /// RNG draw, so it may be polled freely.
    pub fn partitioned(&self, now: u64, a: Id, b: Id) -> bool {
        self.plan
            .partitions
            .iter()
            .zip(&self.pivots)
            .any(|(p, &pivot)| now >= p.start && now < p.end && (a < pivot) != (b < pivot))
    }

    /// Total victims of crash events scheduled in `(since, upto]`.
    pub fn crashes_due(&self, since: u64, upto: u64) -> u32 {
        self.plan
            .crashes
            .iter()
            .filter(|c| c.at > since && c.at <= upto)
            .map(|c| c.count)
            .sum()
    }

    /// Exponential backoff before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.plan.backoff_base << (attempt.saturating_sub(1)).min(16)
    }

    /// The fault stream itself, for victim selection by the harness.
    /// Anything that must stay deterministic under identical plans and
    /// must not perturb workload/strategy streams draws from here.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        let mut st = FaultState::new(plan);
        // No draws on any path: the RNG stays at its initial position.
        let before = st.rng.clone().gen::<u64>();
        assert!(!st.lose_message());
        assert!(!st.duplicate_message());
        assert_eq!(st.extra_delay(), 0);
        assert!(!st.partitioned(5, Id::from(1u64), Id::from(2u64)));
        let after = st.rng.clone().gen::<u64>();
        assert_eq!(before, after, "inert plan must not consume the stream");
    }

    #[test]
    fn lossy_plan_drops_roughly_the_configured_fraction() {
        let mut st = FaultState::new(FaultPlan::lossy(7, 0.25));
        let lost = (0..10_000).filter(|_| st.lose_message()).count();
        assert!((2_000..3_000).contains(&lost), "lost {lost}/10000 at 25%");
    }

    #[test]
    fn identical_seeds_replay_identical_fault_decisions() {
        let plan = FaultPlan {
            loss_rate: 0.3,
            dup_rate: 0.1,
            delay_rate: 0.2,
            extra_delay: 50,
            seed: 99,
            ..FaultPlan::default()
        };
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..1_000 {
            assert_eq!(a.lose_message(), b.lose_message());
            assert_eq!(a.duplicate_message(), b.duplicate_message());
            assert_eq!(a.extra_delay(), b.extra_delay());
        }
    }

    #[test]
    fn partition_splits_only_inside_its_window() {
        let plan = FaultPlan {
            partitions: vec![Partition { start: 10, end: 20 }],
            seed: 3,
            ..FaultPlan::default()
        };
        let st = FaultState::new(plan);
        let pivot = st.pivots[0];
        let below = Id::from(0u64);
        let above = pivot; // >= pivot, so on the other side of `below`
        assert!(below < pivot, "Id::from(0) is the ring minimum");
        assert!(st.partitioned(10, below, above));
        assert!(st.partitioned(19, above, below), "cut is symmetric");
        assert!(!st.partitioned(9, below, above), "window not yet open");
        assert!(!st.partitioned(20, below, above), "window healed");
        assert!(!st.partitioned(15, below, below), "same side always talks");
    }

    #[test]
    fn crashes_due_sums_the_window() {
        let plan = FaultPlan {
            crashes: vec![
                CrashEvent { at: 5, count: 2 },
                CrashEvent { at: 10, count: 1 },
                CrashEvent { at: 15, count: 4 },
            ],
            ..FaultPlan::default()
        };
        let st = FaultState::new(plan);
        assert_eq!(st.crashes_due(0, 4), 0);
        assert_eq!(st.crashes_due(0, 5), 2);
        assert_eq!(st.crashes_due(5, 10), 1);
        assert_eq!(st.crashes_due(0, 100), 7);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let st = FaultState::new(FaultPlan::default());
        assert_eq!(st.backoff(1), 2);
        assert_eq!(st.backoff(2), 4);
        assert_eq!(st.backoff(3), 8);
        // Shift saturates instead of overflowing on absurd attempts.
        assert!(st.backoff(u32::MAX) >= st.backoff(17));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::lossy(0, 1.5).validate().is_err());
        assert!(FaultPlan::lossy(0, 1.0).validate().is_err());
        assert!(FaultPlan {
            max_attempts: 0,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            partitions: vec![Partition { start: 9, end: 9 }],
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn plan_roundtrips_through_serde_defaults() {
        let plan = FaultPlan {
            loss_rate: 0.1,
            crashes: vec![CrashEvent { at: 40, count: 2 }],
            ..FaultPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Partial configs fill in defaults.
        let partial: FaultPlan = serde_json::from_str(r#"{"loss_rate":0.2}"#).unwrap();
        assert_eq!(partial.max_attempts, 3);
        assert_eq!(partial.loss_rate, 0.2);
    }
}
