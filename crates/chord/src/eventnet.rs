//! An asynchronous, message-level Chord simulation.
//!
//! [`crate::Network`] delivers RPCs synchronously — good for protocol
//! logic, blind to *time*. This module models the network the paper
//! defers to ("requires implementation on a real network"): every
//! message takes `latency` time units, nodes act only on message
//! delivery or timer expiry, routing is **recursive** (each hop forwards
//! `FindSuccessor`; the owner replies directly to the origin), failures
//! silently eat messages, and periodic stabilize/notify timers repair
//! the ring exactly as in the Chord paper.
//!
//! What this adds over the synchronous substrate:
//!
//! * lookup **latency** in time units (≈ hops × latency + reply),
//! * genuinely concurrent joins/failures between maintenance rounds,
//! * message loss on dead nodes and the resulting lookup timeouts.

use crate::fault::{FaultPlan, FaultState};
use crate::messages::MessageStats;
use autobal_id::{ring, Id, ID_BITS};
use autobal_telemetry::{MessageStatus, Trace, TraceSink};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// Tunables for the event-driven overlay.
#[derive(Debug, Clone, Copy)]
pub struct EventConfig {
    /// One-way message latency in time units.
    pub latency: u64,
    /// Interval between a node's stabilize timer firings.
    pub stabilize_every: u64,
    /// How long the origin waits for a lookup reply before declaring
    /// failure.
    pub lookup_timeout: u64,
    /// Successor-list length.
    pub successor_list_len: usize,
    /// Fingers refreshed per stabilize firing.
    pub fingers_per_stabilize: usize,
    /// Safety cap on forwarding hops.
    pub max_hops: u32,
}

impl Default for EventConfig {
    fn default() -> EventConfig {
        EventConfig {
            latency: 10,
            stabilize_every: 100,
            lookup_timeout: 2_000,
            successor_list_len: 5,
            fingers_per_stabilize: 8,
            max_hops: 256,
        }
    }
}

/// Application-level payloads carried over the overlay's wire: the
/// strategy vocabulary (load probes, invitations) the event-time
/// substrate sends between vnodes. These ride the same queue, latency,
/// and fault machinery as protocol traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppMsg {
    /// "How many task keys do you hold?" (billed like the sync probe).
    LoadQuery,
    /// Cross-checking relay probe: "how many task keys does `target`
    /// hold, as far as you can tell?" Billed like a direct probe; the
    /// *relay* answers from its replica knowledge, so a Byzantine relay
    /// distorts the answer while the target stays out of the loop.
    LoadQueryAbout { target: Id },
    /// Reply to a `LoadQuery` or `LoadQueryAbout`.
    LoadReply { load: u64 },
    /// Overload announcement from worker `inviter` (billed).
    Invitation { inviter: u64 },
    /// Reply to an `Invitation`: can the recipient's owner help, and at
    /// what current load?
    InviteReply { can: bool, load: u64 },
    /// Delivery failure bounce: the recipient was dead. Never sent in
    /// response to another `Nack`, so bounces cannot loop.
    Nack,
}

/// What [`EventNet::run_until_app`] surfaces to the embedding
/// substrate: an application message arriving at a live node, an
/// application timer firing, or a watched lookup completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    /// `msg` arrived at live node `at` (sent by `from` under `req`).
    Msg {
        at: Id,
        from: Id,
        req: u64,
        msg: AppMsg,
    },
    /// An application timer armed via
    /// [`EventNet::schedule_app_timer`] fired.
    Timer { token: u64 },
    /// A lookup registered with [`EventNet::watch_lookup`] (or started
    /// by [`EventNet::join_tracked`]) finished.
    LookupDone(AsyncLookup),
}

/// Protocol messages (and local timers).
#[derive(Debug, Clone)]
enum Msg {
    /// Recursive routing step for `key`; the eventual owner replies to
    /// `origin` with `FoundSuccessor`.
    FindSuccessor {
        key: Id,
        origin: Id,
        req: u64,
        hops: u32,
    },
    /// Routing reply delivered to the origin.
    FoundSuccessor {
        key: Id,
        owner: Id,
        req: u64,
        hops: u32,
    },
    /// Stabilize probe: "who is your predecessor?"
    GetPredecessor { from: Id },
    /// Stabilize reply with the successor's predecessor + list.
    PredecessorIs {
        of: Id,
        pred: Option<Id>,
        succ_list: Vec<Id>,
    },
    /// Chord notify.
    Notify { from: Id },
    /// Local periodic timer (self-addressed).
    StabilizeTimer,
    /// Local timeout check for a pending lookup.
    LookupTimeout { req: u64 },
    /// Application message between vnodes (strategy traffic).
    App { from: Id, req: u64, app: AppMsg },
    /// Application timer (substrate tick/check cadence); delivered to
    /// the embedding substrate, not to any node.
    AppTimer { token: u64 },
}

/// Per-node state (message-level variant).
#[derive(Debug, Clone)]
struct ENode {
    id: Id,
    successors: Vec<Id>,
    predecessor: Option<Id>,
    fingers: Vec<Option<Id>>,
    next_finger: usize,
    /// Per-node strategy state: load probes received.
    queries_seen: u64,
    /// Per-node strategy state: invitations received.
    invites_seen: u64,
}

impl ENode {
    fn new(id: Id) -> ENode {
        ENode {
            id,
            successors: vec![id],
            predecessor: None,
            fingers: vec![None; ID_BITS as usize],
            next_finger: 0,
            queries_seen: 0,
            invites_seen: 0,
        }
    }

    fn successor(&self) -> Id {
        self.successors.first().copied().unwrap_or(self.id)
    }

    fn closest_preceding(&self, key: Id) -> Option<Id> {
        for f in self.fingers.iter().rev().flatten() {
            if ring::in_open_arc(self.id, key, *f) {
                return Some(*f);
            }
        }
        for s in self.successors.iter().rev() {
            if ring::in_open_arc(self.id, key, *s) {
                return Some(*s);
            }
        }
        None
    }
}

/// Outcome of an asynchronous lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncLookup {
    pub req: u64,
    pub key: Id,
    /// `Some(owner)` on success, `None` on timeout.
    pub owner: Option<Id>,
    /// Time units from request to reply (or to timeout).
    pub latency: u64,
    pub hops: u32,
}

/// An in-flight lookup: what was asked, when, by whom, and how many
/// times it has been (re)issued.
#[derive(Debug, Clone, Copy)]
struct PendingLookup {
    key: Id,
    sent_at: u64,
    origin: Id,
    attempts: u32,
}

/// The event-driven overlay.
pub struct EventNet {
    cfg: EventConfig,
    time: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: BTreeMap<u64, (Id, Msg)>,
    nodes: BTreeMap<Id, ENode>,
    pending: BTreeMap<u64, PendingLookup>,
    completed: Vec<AsyncLookup>,
    next_req: u64,
    /// Messages that died with their recipient.
    pub dropped: u64,
    /// Delivered-message counters by kind (reusing the sync taxonomy).
    pub stats: MessageStats,
    /// Armed fault plan (inert unless [`EventNet::set_fault_plan`]).
    faults: FaultState,
    /// High-water mark for already-applied scheduled crashes.
    crash_clock: u64,
    /// Flight recorder (inert unless [`EventNet::enable_trace`]);
    /// stamped with event time, never wall-clock.
    trace: Trace,
    /// Reusable buffer for successor-list rebuilds during stabilize —
    /// the per-message hot path — swapped with the node's previous
    /// vector so steady-state stabilization never allocates.
    succ_scratch: Vec<Id>,
    /// Application events (messages, timers, watched-lookup results)
    /// ready for the embedding substrate to consume.
    app_events: VecDeque<AppEvent>,
    /// Lookup request ids whose completion should surface as an
    /// [`AppEvent::LookupDone`].
    watched: BTreeSet<u64>,
    /// Total events handled by the loop (for events/s accounting).
    pub wire_events: u64,
}

/// Telemetry label for a wire message: lookups are traced end-to-end,
/// maintenance traffic is grouped by purpose.
fn wire_kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::FindSuccessor { .. } | Msg::FoundSuccessor { .. } | Msg::LookupTimeout { .. } => {
            "lookup"
        }
        Msg::StabilizeTimer | Msg::GetPredecessor { .. } | Msg::PredecessorIs { .. } => "stabilize",
        Msg::Notify { .. } => "notify",
        Msg::App { app, .. } => match app {
            AppMsg::LoadQuery | AppMsg::LoadQueryAbout { .. } | AppMsg::LoadReply { .. } => {
                "load_query"
            }
            AppMsg::Invitation { .. } | AppMsg::InviteReply { .. } => "invitation",
            AppMsg::Nack => "app",
        },
        Msg::AppTimer { .. } => "timer",
    }
}

impl EventNet {
    fn empty(cfg: EventConfig) -> EventNet {
        EventNet {
            cfg,
            time: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: BTreeMap::new(),
            nodes: BTreeMap::new(),
            pending: BTreeMap::new(),
            completed: Vec::new(),
            next_req: 0,
            dropped: 0,
            stats: MessageStats::new(),
            faults: FaultState::inert(),
            crash_clock: 0,
            trace: Trace::default(),
            succ_scratch: Vec::new(),
            app_events: VecDeque::new(),
            watched: BTreeSet::new(),
            wire_events: 0,
        }
    }

    /// A fully stabilized ring of `n` random nodes with timers armed.
    pub fn bootstrap<R: rand::Rng + ?Sized>(cfg: EventConfig, n: usize, rng: &mut R) -> EventNet {
        let mut net = EventNet::empty(cfg);
        while net.nodes.len() < n {
            let id = Id::random(rng);
            net.nodes.entry(id).or_insert_with(|| ENode::new(id));
        }
        net.finish_bootstrap();
        net
    }

    /// A fully stabilized ring over the given node ids (duplicates
    /// collapse), with timers armed — the differential hook the
    /// event-time substrate uses to mirror a synchronous `Network`.
    pub fn from_ids(cfg: EventConfig, ids: &[Id]) -> EventNet {
        let mut net = EventNet::empty(cfg);
        for &id in ids {
            net.nodes.entry(id).or_insert_with(|| ENode::new(id));
        }
        net.finish_bootstrap();
        net
    }

    fn finish_bootstrap(&mut self) {
        // Ground-truth wiring (paper: the network starts stable).
        self.rewire_ground_truth();
        // Stagger stabilize timers so the network does not thunder.
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        let every = self.cfg.stabilize_every.max(1);
        for (i, &id) in ids.iter().enumerate() {
            let jitter = (i as u64 * 7) % every;
            let at = self.time + jitter + 1;
            self.send_at(at, id, Msg::StabilizeTimer);
        }
    }

    /// Rewires every live node's successor list, predecessor, and
    /// finger table from ground truth — as if stabilization had fully
    /// converged this instant. The degenerate event-substrate
    /// configuration calls this after each membership change
    /// ("stabilize-before-check" ordering), which is what makes its
    /// decision trace bit-comparable to the synchronous substrate's.
    pub fn rewire_ground_truth(&mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        let count = ids.len();
        if count == 0 {
            return;
        }
        for (i, &id) in ids.iter().enumerate() {
            let mut succ = Vec::new();
            for k in 1..=self
                .cfg
                .successor_list_len
                .min(count.saturating_sub(1).max(1))
            {
                // autobal-lint: allow(panic-safety, "index is taken modulo ids.len(), always in bounds")
                succ.push(ids[(i + k) % count]);
            }
            if succ.is_empty() {
                succ.push(id);
            }
            // autobal-lint: allow(panic-safety, "index is taken modulo ids.len(), always in bounds")
            let pred = ids[(i + count - 1) % count];
            let mut fingers = vec![None; ID_BITS as usize];
            for (k, f) in fingers.iter_mut().enumerate() {
                let target = id.wrapping_add(Id::pow2(k as u32));
                let idx = ids.partition_point(|&x| x < target) % count;
                *f = ids.get(idx).copied();
            }
            let Some(node) = self.nodes.get_mut(&id) else {
                continue;
            };
            node.successors = succ;
            node.predecessor = Some(pred);
            node.fingers = fingers;
        }
    }

    /// Arms a fault plan for the rest of the run. Scheduled crash times
    /// earlier than the current clock are considered already consumed.
    /// The default plan is inert, so untouched networks behave exactly
    /// as they did before the fault plane existed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan);
        self.crash_clock = self.time;
    }

    /// The currently armed plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Arms the flight recorder: lookup completions, timeouts (with
    /// their retry counts), and wire-level drops are recorded from now
    /// on, stamped with event time.
    pub fn enable_trace(&mut self, seed: u64) {
        let mut trace = Trace::new(true);
        trace.run_start(self.time, "eventnet", "none", seed);
        self.trace = trace;
    }

    /// The recorded trace (empty unless [`EventNet::enable_trace`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.time
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node_ids(&self) -> Vec<Id> {
        self.nodes.keys().copied().collect()
    }

    /// Ground-truth owner (oracle; used by tests).
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        self.nodes
            .range(key..)
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.nodes.keys().next().copied())
    }

    /// Kills a node instantly; in-flight messages to it are dropped at
    /// delivery time.
    pub fn fail(&mut self, id: Id) -> bool {
        self.nodes.remove(&id).is_some()
    }

    /// A new node joins through `contact`: its own-id lookup resolves
    /// asynchronously; until then it only knows the contact.
    pub fn join(&mut self, id: Id, contact: Id) -> bool {
        self.join_tracked(id, contact).is_some()
    }

    /// [`EventNet::join`], but the join's own-id lookup is watched: its
    /// completion surfaces as an [`AppEvent::LookupDone`] carrying the
    /// returned request id, so the embedding substrate can block on it.
    pub fn join_tracked(&mut self, id: Id, contact: Id) -> Option<u64> {
        if self.nodes.contains_key(&id) || !self.nodes.contains_key(&contact) {
            return None;
        }
        let mut node = ENode::new(id);
        node.successors = vec![contact];
        self.nodes.insert(id, node);
        let req = self.start_lookup_from(id, id);
        self.watched.insert(req);
        let t = self.time + 1;
        self.send_at(t, id, Msg::StabilizeTimer);
        Some(req)
    }

    /// Issues an asynchronous lookup from `origin`; returns the request
    /// id. Results arrive in [`EventNet::take_completed`] once the run
    /// advances far enough.
    pub fn lookup(&mut self, origin: Id, key: Id) -> Option<u64> {
        if !self.nodes.contains_key(&origin) {
            return None;
        }
        Some(self.start_lookup_from(origin, key))
    }

    fn start_lookup_from(&mut self, origin: Id, key: Id) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.pending.insert(
            req,
            PendingLookup {
                key,
                sent_at: self.time,
                origin,
                attempts: 1,
            },
        );
        // Self-delivery kicks off routing locally at +0 latency.
        self.deliver_local(
            origin,
            Msg::FindSuccessor {
                key,
                origin,
                req,
                hops: 0,
            },
        );
        let deadline = self.time + self.cfg.lookup_timeout;
        self.send_at(deadline, origin, Msg::LookupTimeout { req });
        req
    }

    /// Drains finished lookups.
    pub fn take_completed(&mut self) -> Vec<AsyncLookup> {
        std::mem::take(&mut self.completed)
    }

    /// Registers interest in a pending lookup: when it completes (or
    /// times out), an [`AppEvent::LookupDone`] surfaces through
    /// [`EventNet::run_until_app`].
    pub fn watch_lookup(&mut self, req: u64) {
        self.watched.insert(req);
    }

    /// Sends an application request from vnode `from` to vnode `dst`
    /// over the real wire (latency, loss, partitions, duplication all
    /// apply). Requests are billed to [`EventNet::stats`] by kind
    /// before the fault draw, mirroring the synchronous substrate's
    /// bill-then-maybe-drop `try_message`. Returns the request id the
    /// eventual reply (or `Nack`) will carry.
    pub fn send_app(&mut self, from: Id, dst: Id, app: AppMsg) -> u64 {
        use crate::messages::MessageKind as MK;
        match app {
            AppMsg::LoadQuery | AppMsg::LoadQueryAbout { .. } => self.stats.record(MK::LoadQuery),
            AppMsg::Invitation { .. } => self.stats.record(MK::Invitation),
            _ => {}
        }
        let req = self.next_req;
        self.next_req += 1;
        self.send(from, dst, Msg::App { from, req, app });
        req
    }

    /// Sends an application reply (unbilled — the request already paid)
    /// through the same wire machinery.
    pub fn reply_app(&mut self, from: Id, dst: Id, req: u64, app: AppMsg) {
        self.send(from, dst, Msg::App { from, req, app });
    }

    /// Arms an application timer that fires at absolute time `at` as an
    /// [`AppEvent::Timer`]. Timers are local to the embedding substrate
    /// (no node address, no faults) but share the queue, so they
    /// interleave deterministically with wire traffic.
    pub fn schedule_app_timer(&mut self, at: u64, token: u64) {
        let at = at.max(self.time);
        self.send_at(at, Id::ZERO, Msg::AppTimer { token });
    }

    /// Per-node strategy state: `(load queries seen, invitations
    /// seen)` for a live node.
    pub fn app_stats(&self, id: Id) -> Option<(u64, u64)> {
        self.nodes
            .get(&id)
            .map(|n| (n.queries_seen, n.invites_seen))
    }

    /// Runs the event loop until `deadline` (inclusive) or queue
    /// exhaustion. Returns events processed.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        let mut processed = 0;
        while let Some(&Reverse((at, seq))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            self.apply_due_crashes(at.min(deadline));
            self.queue.pop();
            let (dst, msg) = match self.payloads.remove(&seq) {
                Some(p) => p,
                None => continue,
            };
            self.time = self.time.max(at);
            processed += 1;
            self.wire_events += 1;
            self.handle(dst, msg);
        }
        self.apply_due_crashes(deadline);
        self.time = self.time.max(deadline);
        processed
    }

    /// Runs the event loop until the next application event (message
    /// arrival, timer firing, watched-lookup completion), `deadline`,
    /// or queue exhaustion — whichever comes first. Protocol traffic
    /// (stabilize, notify, finger refresh, routing) is processed
    /// inline, so application events genuinely race stabilization.
    ///
    /// A `deadline` of `u64::MAX` means "wait for the next app event":
    /// the clock is left at the last processed event rather than being
    /// catapulted to the horizon when the queue drains.
    pub fn run_until_app(&mut self, deadline: u64) -> Option<AppEvent> {
        loop {
            if let Some(ev) = self.app_events.pop_front() {
                return Some(ev);
            }
            let Some(&Reverse((at, seq))) = self.queue.peek() else {
                break;
            };
            if at > deadline {
                break;
            }
            self.apply_due_crashes(at.min(deadline));
            self.queue.pop();
            let (dst, msg) = match self.payloads.remove(&seq) {
                Some(p) => p,
                None => continue,
            };
            self.time = self.time.max(at);
            self.wire_events += 1;
            self.handle(dst, msg);
        }
        if deadline != u64::MAX {
            self.apply_due_crashes(deadline);
            self.time = self.time.max(deadline);
        }
        None
    }

    // ---- internals --------------------------------------------------

    /// Executes scheduled crash events whose time has come, picking
    /// victims from the fault stream. Always leaves at least one node.
    fn apply_due_crashes(&mut self, upto: u64) {
        if self.faults.plan().crashes.is_empty() || upto <= self.crash_clock {
            return;
        }
        let due = self.faults.crashes_due(self.crash_clock, upto);
        self.crash_clock = upto;
        for _ in 0..due {
            if self.nodes.len() <= 1 {
                break;
            }
            // Same victim the old `node_ids()[gen_range(..)]` picked —
            // the idx-th node in id order — without collecting the ids.
            let len = self.nodes.len();
            let idx = self.faults.rng().gen_range(0..len);
            if let Some(victim) = self.nodes.keys().nth(idx).copied() {
                self.nodes.remove(&victim);
            }
        }
    }

    fn send_at(&mut self, at: u64, dst: Id, msg: Msg) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, seq)));
        self.payloads.insert(seq, (dst, msg));
    }

    /// A real wire message from `from` to `dst`: subject to loss,
    /// duplication, extra delay, and partitions. Local timers bypass
    /// this and use [`EventNet::send_at`] directly — a node can always
    /// talk to itself.
    fn send(&mut self, from: Id, dst: Id, msg: Msg) {
        let mut at = self.time + self.cfg.latency;
        if self.faults.is_active() {
            if self.faults.partitioned(self.time, from, dst) || self.faults.lose_message() {
                self.stats.dropped += 1;
                self.trace
                    .message(self.time, wire_kind(&msg), MessageStatus::Dropped, 0);
                return;
            }
            at += self.faults.extra_delay();
            if self.faults.duplicate_message() {
                self.send_at(at + 1, dst, msg.clone());
            }
        }
        self.send_at(at, dst, msg);
    }

    fn deliver_local(&mut self, dst: Id, msg: Msg) {
        let t = self.time;
        self.send_at(t, dst, msg);
    }

    fn handle(&mut self, dst: Id, msg: Msg) {
        // Application timers belong to the embedding substrate, not to
        // any node — they fire regardless of ring membership.
        if let Msg::AppTimer { token } = msg {
            self.app_events.push_back(AppEvent::Timer { token });
            return;
        }
        if !self.nodes.contains_key(&dst) {
            // Recipient died; the message evaporates.
            self.dropped += 1;
            self.trace
                .message(self.time, wire_kind(&msg), MessageStatus::Dropped, 0);
            // Application *requests* to a corpse bounce, so a blocking
            // caller learns `Unreachable` instead of waiting out its
            // timeout. Replies and bounces die silently — a `Nack` is
            // never Nacked, so bounces cannot loop between two corpses.
            if let Msg::App { from, req, app } = msg {
                if matches!(
                    app,
                    AppMsg::LoadQuery | AppMsg::LoadQueryAbout { .. } | AppMsg::Invitation { .. }
                ) {
                    self.send(
                        dst,
                        from,
                        Msg::App {
                            from: dst,
                            req,
                            app: AppMsg::Nack,
                        },
                    );
                }
            }
            return;
        }
        use crate::messages::MessageKind as MK;
        match msg {
            Msg::AppTimer { .. } => {
                // Intercepted above; unreachable here, but the match
                // must stay exhaustive without a catch-all.
            }
            Msg::App { from, req, app } => {
                if let Some(node) = self.nodes.get_mut(&dst) {
                    match app {
                        AppMsg::LoadQuery | AppMsg::LoadQueryAbout { .. } => node.queries_seen += 1,
                        AppMsg::Invitation { .. } => node.invites_seen += 1,
                        _ => {}
                    }
                }
                self.app_events.push_back(AppEvent::Msg {
                    at: dst,
                    from,
                    req,
                    msg: app,
                });
            }
            Msg::FindSuccessor {
                key,
                origin,
                req,
                hops,
            } => {
                self.stats.record(MK::FindSuccessorHop);
                if hops >= self.cfg.max_hops {
                    return; // let the origin's timeout fire
                }
                let (succ, pred_owns) = {
                    let Some(node) = self.nodes.get(&dst) else {
                        return;
                    };
                    let succ = node.successor();
                    let pred_owns = node
                        .predecessor
                        .is_some_and(|p| ring::in_arc(p, node.id, key));
                    (succ, pred_owns)
                };
                if ring::in_arc(dst, succ, key) && self.nodes.contains_key(&succ) {
                    // The successor owns it; reply straight to origin.
                    self.send(
                        dst,
                        origin,
                        Msg::FoundSuccessor {
                            key,
                            owner: succ,
                            req,
                            hops: hops + 1,
                        },
                    );
                } else if pred_owns {
                    self.send(
                        dst,
                        origin,
                        Msg::FoundSuccessor {
                            key,
                            owner: dst,
                            req,
                            hops,
                        },
                    );
                } else {
                    let next = self
                        .nodes
                        .get(&dst)
                        .and_then(|n| n.closest_preceding(key))
                        .filter(|n| self.nodes.contains_key(n))
                        .unwrap_or(succ);
                    if next == dst {
                        self.send(
                            dst,
                            origin,
                            Msg::FoundSuccessor {
                                key,
                                owner: dst,
                                req,
                                hops,
                            },
                        );
                    } else {
                        self.send(
                            dst,
                            next,
                            Msg::FindSuccessor {
                                key,
                                origin,
                                req,
                                hops: hops + 1,
                            },
                        );
                    }
                }
            }
            Msg::FoundSuccessor {
                key,
                owner,
                req,
                hops,
            } => {
                if let Some(p) = self.pending.remove(&req) {
                    debug_assert_eq!(p.key, key);
                    self.trace.message(
                        self.time,
                        "lookup",
                        MessageStatus::Delivered,
                        u64::from(p.attempts.saturating_sub(1)),
                    );
                    let done = AsyncLookup {
                        req,
                        key,
                        owner: Some(owner),
                        latency: self.time - p.sent_at,
                        hops,
                    };
                    self.completed.push(done);
                    if self.watched.remove(&req) {
                        self.app_events.push_back(AppEvent::LookupDone(done));
                    }
                    // A lookup for one's own id is a join completing:
                    // adopt the owner as successor.
                    if key == dst && owner != dst {
                        if let Some(node) = self.nodes.get_mut(&dst) {
                            node.successors.retain(|&s| s != owner);
                            node.successors.insert(0, owner);
                            node.successors.truncate(self.cfg.successor_list_len);
                        }
                        self.send(dst, owner, Msg::Notify { from: dst });
                    }
                }
            }
            Msg::LookupTimeout { req } => {
                let Some(p) = self.pending.get(&req).copied() else {
                    return;
                };
                // Under an active fault plan the reply may simply have
                // been eaten: re-issue the lookup with exponential
                // backoff until the attempt budget runs out. Without
                // faults, a timeout means routing truly failed (dead
                // nodes), and retrying would only repeat it.
                let budget = self.faults.plan().max_attempts.max(1);
                if self.faults.is_active()
                    && p.attempts < budget
                    && self.nodes.contains_key(&p.origin)
                {
                    self.stats.retries += 1;
                    self.pending.insert(
                        req,
                        PendingLookup {
                            attempts: p.attempts + 1,
                            ..p
                        },
                    );
                    self.deliver_local(
                        p.origin,
                        Msg::FindSuccessor {
                            key: p.key,
                            origin: p.origin,
                            req,
                            hops: 0,
                        },
                    );
                    // Wait twice as long before the next check.
                    let wait = self.cfg.lookup_timeout << p.attempts.min(16);
                    let at = self.time + wait;
                    self.send_at(at, p.origin, Msg::LookupTimeout { req });
                    return;
                }
                self.pending.remove(&req);
                self.stats.timeouts += 1;
                self.trace.message(
                    self.time,
                    "lookup",
                    MessageStatus::TimedOut,
                    u64::from(p.attempts.saturating_sub(1)),
                );
                let done = AsyncLookup {
                    req,
                    key: p.key,
                    owner: None,
                    latency: self.time - p.sent_at,
                    hops: 0,
                };
                self.completed.push(done);
                if self.watched.remove(&req) {
                    self.app_events.push_back(AppEvent::LookupDone(done));
                }
            }
            Msg::StabilizeTimer => {
                self.stats.record(MK::Stabilize);
                // A node cannot test successor liveness locally; dead
                // entries are detected below, when the probe to `succ`
                // finds nobody home, and skipped on the next timer.
                let Some(succ) = self.nodes.get(&dst).map(|n| n.successor()) else {
                    return;
                };
                if succ != dst && self.nodes.contains_key(&succ) {
                    self.send(dst, succ, Msg::GetPredecessor { from: dst });
                } else if succ != dst {
                    // Successor dead: fall to the next list entry.
                    if let Some(node) = self.nodes.get_mut(&dst) {
                        node.successors.retain(|&s| s != succ);
                        for f in node.fingers.iter_mut() {
                            if *f == Some(succ) {
                                *f = None;
                            }
                        }
                        if node.successors.is_empty() {
                            node.successors.push(dst);
                        }
                    }
                }
                // Refresh a few fingers through real routing.
                for _ in 0..self.cfg.fingers_per_stabilize {
                    let Some((k, target)) = self.nodes.get(&dst).map(|node| {
                        let k = node.next_finger % node.fingers.len();
                        (k, node.id.wrapping_add(Id::pow2(k as u32)))
                    }) else {
                        break;
                    };
                    if let Some(node) = self.nodes.get_mut(&dst) {
                        node.next_finger = (k + 1) % ID_BITS as usize;
                    }
                    self.start_lookup_from(dst, target);
                }
                // Re-arm the timer.
                let at = self.time + self.cfg.stabilize_every;
                self.send_at(at, dst, Msg::StabilizeTimer);
            }
            Msg::GetPredecessor { from } => {
                let Some(node) = self.nodes.get(&dst) else {
                    return;
                };
                let reply = Msg::PredecessorIs {
                    of: dst,
                    pred: node.predecessor,
                    succ_list: node.successors.clone(),
                };
                self.send(dst, from, reply);
            }
            Msg::PredecessorIs {
                of,
                pred,
                succ_list,
            } => {
                let cap = self.cfg.successor_list_len;
                // stabilize: adopt x = succ.pred if it lies between
                // (`dst` doubles as the node's own id: map key == id).
                let adopt = pred.filter(|&x| {
                    x != dst && self.nodes.contains_key(&x) && ring::in_open_arc(dst, of, x)
                });
                {
                    // Build the new list in the reusable scratch buffer,
                    // then swap it with the node's old vector — contents
                    // identical to the fresh-`Vec` construction, but the
                    // steady state recycles two buffers forever.
                    let mut list = std::mem::take(&mut self.succ_scratch);
                    list.clear();
                    if let Some(x) = adopt {
                        list.push(x);
                    }
                    list.push(of);
                    list.extend(succ_list.into_iter().filter(|&s| s != dst));
                    list.dedup();
                    list.truncate(cap);
                    let Some(node) = self.nodes.get_mut(&dst) else {
                        self.succ_scratch = list;
                        return;
                    };
                    std::mem::swap(&mut node.successors, &mut list);
                    self.succ_scratch = list;
                }
                let Some(new_succ) = self.nodes.get(&dst).map(|n| n.successor()) else {
                    return;
                };
                if new_succ != dst {
                    self.stats.record(crate::messages::MessageKind::Notify);
                    self.send(dst, new_succ, Msg::Notify { from: dst });
                }
            }
            Msg::Notify { from } => {
                if !self.nodes.contains_key(&from) {
                    return;
                }
                let old_pred = match self.nodes.get(&dst) {
                    Some(node) => node.predecessor,
                    None => return,
                };
                let accept = match old_pred {
                    None => true,
                    Some(p) => !self.nodes.contains_key(&p) || ring::in_open_arc(p, dst, from),
                };
                if accept {
                    if let Some(node) = self.nodes.get_mut(&dst) {
                        node.predecessor = Some(from);
                    }
                }
            }
        }
    }

    /// Checks every live node's successor pointer against ground truth.
    pub fn is_ring_consistent(&self) -> bool {
        if self.nodes.len() < 2 {
            return true;
        }
        for (&id, node) in &self.nodes {
            let Some(truth) = self
                .nodes
                .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
                .next()
                .map(|(i, _)| *i)
                .or_else(|| self.nodes.keys().next().copied())
            else {
                return false;
            };
            if node.successor() != truth {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_id::sha1::sha1_id_of_u64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn drain_app_lookups(net: &mut EventNet, reqs: &[u64]) -> Vec<AsyncLookup> {
        net.take_completed()
            .into_iter()
            .filter(|l| reqs.contains(&l.req))
            .collect()
    }

    #[test]
    fn trace_records_lookup_outcomes_in_event_time() {
        use autobal_telemetry::summarize;
        let mut net = EventNet::bootstrap(EventConfig::default(), 64, &mut rng(40));
        assert!(net.trace().is_empty(), "tracing is strictly opt-in");
        net.enable_trace(40);
        net.set_fault_plan(FaultPlan::lossy(40, 0.15));
        let origin = net.node_ids()[0];
        let mut reqs = Vec::new();
        for i in 0..20u64 {
            reqs.push(net.lookup(origin, sha1_id_of_u64(i)).unwrap());
        }
        net.run_until(60_000);
        let done = drain_app_lookups(&mut net, &reqs);
        assert_eq!(done.len(), 20);
        let s = summarize(net.trace().records());
        assert_eq!(s.substrate, "eventnet");
        // Every lookup (app + finger refresh) ends as exactly one
        // Delivered or TimedOut record; loss shows up as drops/retries.
        let resolved = s.messages.delivered + s.messages.timed_out;
        assert!(resolved >= 20, "at least the app lookups resolved");
        assert!(
            s.messages.dropped > 0,
            "15% loss must surface as Dropped records"
        );
        assert!(s.last_time <= net.now(), "virtual time only");
        for r in net.trace().records() {
            assert!(r.time <= net.now());
        }
    }

    #[test]
    fn async_lookup_resolves_to_oracle_owner() {
        let mut net = EventNet::bootstrap(EventConfig::default(), 64, &mut rng(1));
        let origin = net.node_ids()[0];
        let mut reqs = Vec::new();
        let mut truths = Vec::new();
        for i in 0..20u64 {
            let key = sha1_id_of_u64(i);
            truths.push(net.owner_of(key).unwrap());
            reqs.push(net.lookup(origin, key).unwrap());
        }
        net.run_until(5_000);
        let done = drain_app_lookups(&mut net, &reqs);
        assert_eq!(done.len(), 20);
        for l in &done {
            let idx = reqs.iter().position(|r| *r == l.req).unwrap();
            assert_eq!(l.owner, Some(truths[idx]), "req {}", l.req);
        }
    }

    #[test]
    fn latency_scales_with_hops() {
        let cfg = EventConfig::default();
        let mut net = EventNet::bootstrap(cfg, 128, &mut rng(2));
        let origin = net.node_ids()[0];
        let mut reqs = Vec::new();
        for i in 0..30u64 {
            reqs.push(net.lookup(origin, sha1_id_of_u64(i)).unwrap());
        }
        net.run_until(10_000);
        let done = drain_app_lookups(&mut net, &reqs);
        assert_eq!(done.len(), 30);
        for l in done {
            assert!(l.owner.is_some());
            // Recursive routing: some forwards plus one reply, each
            // costing `latency`; hop counting differs by ±1 across the
            // terminal branches, so bound rather than pin.
            assert!(l.latency >= cfg.latency, "at least the reply hop");
            assert_eq!(l.latency % cfg.latency, 0, "whole message hops");
            assert!(
                l.latency <= (l.hops as u64 + 2) * cfg.latency,
                "hops {} latency {}",
                l.hops,
                l.latency
            );
        }
    }

    #[test]
    fn lookup_after_failure_times_out_or_resolves() {
        let mut net = EventNet::bootstrap(EventConfig::default(), 32, &mut rng(8));
        let ids = net.node_ids();
        let origin = ids[0];
        // Kill a third of the ring with no stabilization time.
        for id in ids.iter().skip(1).step_by(3) {
            net.fail(*id);
        }
        let mut reqs = Vec::new();
        for i in 0..20u64 {
            reqs.push(net.lookup(origin, sha1_id_of_u64(i)).unwrap());
        }
        net.run_until(30_000);
        let done = drain_app_lookups(&mut net, &reqs);
        assert_eq!(done.len(), 20, "every lookup completes or times out");
        // At least some succeed even mid-carnage (stale fingers route
        // around corpses via live entries).
        let ok = done.iter().filter(|l| l.owner.is_some()).count();
        assert!(ok >= 5, "resolved lookups mid-carnage: {ok}");
        assert!(net.dropped > 0, "messages to dead nodes are dropped");
    }

    #[test]
    fn stabilization_repairs_the_ring_after_failures() {
        let cfg = EventConfig::default();
        let mut net = EventNet::bootstrap(cfg, 48, &mut rng(4));
        let ids = net.node_ids();
        for id in ids.iter().skip(2).step_by(8) {
            net.fail(*id);
        }
        assert!(!net.is_ring_consistent());
        // Run a generous number of stabilize rounds.
        let t = net.now();
        net.run_until(t + cfg.stabilize_every * 40);
        assert!(
            net.is_ring_consistent(),
            "stabilize/notify must repair successor pointers"
        );
    }

    #[test]
    fn join_converges_to_correct_position() {
        let cfg = EventConfig::default();
        let mut net = EventNet::bootstrap(cfg, 32, &mut rng(5));
        let contact = net.node_ids()[0];
        let mut r = rng(6);
        for _ in 0..5 {
            assert!(net.join(Id::random(&mut r), contact));
        }
        let t = net.now();
        net.run_until(t + cfg.stabilize_every * 60);
        assert_eq!(net.len(), 37);
        assert!(net.is_ring_consistent(), "joins integrate via notify");
    }

    #[test]
    fn join_duplicate_or_bad_contact_rejected() {
        let mut net = EventNet::bootstrap(EventConfig::default(), 8, &mut rng(7));
        let existing = net.node_ids()[0];
        assert!(!net.join(existing, existing));
        assert!(!net.join(Id::from(42u64), Id::from(43u64)));
    }

    #[test]
    fn timers_keep_firing() {
        let mut net = EventNet::bootstrap(EventConfig::default(), 16, &mut rng(8));
        let before = net.stats.stabilize;
        net.run_until(1_000);
        let after = net.stats.stabilize;
        // 16 nodes × 10 intervals ≈ 160 firings.
        assert!(
            after - before >= 100,
            "stabilize fired {} times",
            after - before
        );
    }

    #[test]
    fn lossy_links_are_survived_by_lookup_retries() {
        use crate::fault::FaultPlan;
        let mut net = EventNet::bootstrap(EventConfig::default(), 64, &mut rng(20));
        net.set_fault_plan(FaultPlan {
            loss_rate: 0.20,
            dup_rate: 0.10,
            delay_rate: 0.20,
            extra_delay: 25,
            seed: 77,
            // A whole recursive chain must survive per attempt; at 20%
            // loss that is ~40% per try, so give the budget headroom.
            max_attempts: 5,
            ..FaultPlan::default()
        });
        let origin = net.node_ids()[0];
        let mut reqs = Vec::new();
        let mut truths = Vec::new();
        for i in 0..40u64 {
            let key = sha1_id_of_u64(i);
            truths.push(net.owner_of(key).unwrap());
            reqs.push(net.lookup(origin, key).unwrap());
        }
        // Generous horizon: retries back off exponentially, so five
        // attempts need 2000·(1+2+4+8+16) = 62k time units plus slack.
        net.run_until(80_000);
        let done = drain_app_lookups(&mut net, &reqs);
        assert_eq!(done.len(), 40, "every lookup completes or times out");
        let ok = done.iter().filter(|l| l.owner.is_some()).count();
        assert!(ok >= 33, "resolved under 20% loss with retries: {ok}/40");
        for l in done.iter().filter(|l| l.owner.is_some()) {
            let idx = reqs.iter().position(|r| *r == l.req).unwrap();
            assert_eq!(l.owner, Some(truths[idx]), "correct despite faults");
        }
        assert!(net.stats.dropped > 0, "the plan really dropped messages");
        assert!(net.stats.retries > 0, "timeouts triggered re-issues");
    }

    #[test]
    fn scheduled_crashes_fire_and_ring_recovers() {
        use crate::fault::{CrashEvent, FaultPlan};
        let cfg = EventConfig::default();
        let mut net = EventNet::bootstrap(cfg, 48, &mut rng(21));
        net.set_fault_plan(FaultPlan {
            crashes: vec![
                CrashEvent { at: 500, count: 3 },
                CrashEvent {
                    at: 1_500,
                    count: 3,
                },
            ],
            seed: 5,
            ..FaultPlan::default()
        });
        net.run_until(400);
        assert_eq!(net.len(), 48, "nothing crashes early");
        net.run_until(1_000);
        assert_eq!(net.len(), 45, "first crash wave");
        net.run_until(cfg.stabilize_every * 50);
        assert_eq!(net.len(), 42, "second crash wave");
        assert!(net.is_ring_consistent(), "stabilization healed the ring");
    }

    #[test]
    fn partition_window_splits_then_heals() {
        use crate::fault::{FaultPlan, Partition};
        let cfg = EventConfig::default();
        let mut net = EventNet::bootstrap(cfg, 32, &mut rng(22));
        net.set_fault_plan(FaultPlan {
            partitions: vec![Partition {
                start: 0,
                end: 3_000,
            }],
            seed: 9,
            ..FaultPlan::default()
        });
        // During the cut plenty of traffic dies.
        net.run_until(3_000);
        let dropped_during = net.stats.dropped;
        assert!(dropped_during > 0, "cross-cut traffic is eaten");
        // After healing, stabilization repairs any damage.
        net.run_until(3_000 + cfg.stabilize_every * 40);
        assert!(net.is_ring_consistent(), "ring heals after the window");
    }

    #[test]
    fn identical_fault_seeds_replay_identically() {
        use crate::fault::{CrashEvent, FaultPlan};
        let plan = FaultPlan {
            loss_rate: 0.15,
            dup_rate: 0.05,
            crashes: vec![CrashEvent { at: 800, count: 2 }],
            seed: 31,
            ..FaultPlan::default()
        };
        let run = |p: FaultPlan| {
            let mut net = EventNet::bootstrap(EventConfig::default(), 40, &mut rng(23));
            net.set_fault_plan(p);
            let origin = net.node_ids()[0];
            for i in 0..30u64 {
                net.lookup(origin, sha1_id_of_u64(i));
            }
            net.run_until(15_000);
            let mut done = net.take_completed();
            done.sort_by_key(|l| l.req);
            (done, net.node_ids(), net.stats.clone())
        };
        let (a_done, a_ids, a_stats) = run(plan.clone());
        let (b_done, b_ids, b_stats) = run(plan);
        assert_eq!(a_done, b_done);
        assert_eq!(a_ids, b_ids, "same crash victims");
        assert_eq!(a_stats, b_stats);
    }

    #[test]
    fn empty_and_single_node_edge_cases() {
        let mut net = EventNet::bootstrap(EventConfig::default(), 1, &mut rng(9));
        assert_eq!(net.len(), 1);
        let id = net.node_ids()[0];
        let req = net.lookup(id, Id::from(5u64)).unwrap();
        net.run_until(3_000);
        let done = net.take_completed();
        let mine: Vec<_> = done.iter().filter(|l| l.req == req).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].owner, Some(id));
        assert!(net.is_ring_consistent());
    }
}
