//! The key-value API — the DHT's original use case ("whether a DHT is
//! being used for file access or distributing a large-scale computing
//! job", §I).
//!
//! `put`/`get`/`remove` route through the normal iterative lookup (every
//! hop counted), store on the owner, and inherit the active-backup
//! replication: once a maintenance cycle has run, a stored value
//! survives the owner's failure.

use crate::messages::MessageKind;
use crate::network::{Network, NetworkError};
use autobal_id::Id;
use bytes::Bytes;

impl Network {
    /// Stores `value` under `key`, routing from `from`. Returns the
    /// owner that accepted the write.
    pub fn put(&mut self, from: Id, key: Id, value: Bytes) -> Result<Id, NetworkError> {
        let owner = self.lookup(from, key)?.owner;
        self.stats.record(MessageKind::StoreValue);
        let node = self.node_mut(owner).expect("owner is live");
        node.keys.insert(key);
        node.store.insert(key, value);
        Ok(owner)
    }

    /// Fetches the value under `key`, routing from `from`. `Ok(None)`
    /// means the key is unknown (or holds no value).
    pub fn get(&mut self, from: Id, key: Id) -> Result<Option<Bytes>, NetworkError> {
        let owner = self.lookup(from, key)?.owner;
        self.stats.record(MessageKind::FetchValue);
        Ok(self.node(owner).and_then(|n| n.store.get(&key)).cloned())
    }

    /// Removes the value (and key) stored under `key`. Returns the value
    /// that was removed, if any. Replicas forget it on the owner's next
    /// replica push.
    pub fn remove(&mut self, from: Id, key: Id) -> Result<Option<Bytes>, NetworkError> {
        let owner = self.lookup(from, key)?.owner;
        self.stats.record(MessageKind::StoreValue);
        let node = self.node_mut(owner).expect("owner is live");
        node.keys.remove(&key);
        Ok(node.store.remove(&key))
    }

    /// Total number of stored values across all primaries.
    pub fn total_values(&self) -> usize {
        self.node_ids()
            .iter()
            .filter_map(|id| self.node(*id))
            .map(|n| n.store.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use autobal_id::sha1::sha1_id_of_u64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn value(i: u64) -> Bytes {
        Bytes::from(format!("block-{i}"))
    }

    #[test]
    fn put_get_roundtrip() {
        let mut net = Network::bootstrap(NetConfig::default(), 20, &mut rng(1));
        let from = net.node_ids()[0];
        for i in 0..50u64 {
            let key = sha1_id_of_u64(i);
            let owner = net.put(from, key, value(i)).unwrap();
            assert_eq!(net.owner_of(key), Some(owner));
        }
        assert_eq!(net.total_values(), 50);
        for i in 0..50u64 {
            let got = net.get(from, sha1_id_of_u64(i)).unwrap();
            assert_eq!(got, Some(value(i)), "key {i}");
        }
    }

    #[test]
    fn get_unknown_key_is_none() {
        let mut net = Network::bootstrap(NetConfig::default(), 5, &mut rng(2));
        let from = net.node_ids()[0];
        assert_eq!(net.get(from, sha1_id_of_u64(99)).unwrap(), None);
    }

    #[test]
    fn remove_deletes_and_returns() {
        let mut net = Network::bootstrap(NetConfig::default(), 5, &mut rng(3));
        let from = net.node_ids()[0];
        let key = sha1_id_of_u64(7);
        net.put(from, key, value(7)).unwrap();
        assert_eq!(net.remove(from, key).unwrap(), Some(value(7)));
        assert_eq!(net.get(from, key).unwrap(), None);
        assert_eq!(net.remove(from, key).unwrap(), None);
        assert_eq!(net.total_values(), 0);
    }

    #[test]
    fn values_survive_owner_failure() {
        let mut net = Network::bootstrap(NetConfig::default(), 25, &mut rng(4));
        let from = net.node_ids()[0];
        for i in 0..100u64 {
            net.put(from, sha1_id_of_u64(i), value(i)).unwrap();
        }
        net.maintenance_cycle(); // replicate values

        // Kill the owner of key 5.
        let key = sha1_id_of_u64(5);
        let owner = net.owner_of(key).unwrap();
        net.fail(owner).unwrap();
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        let from = net.node_ids()[0];
        assert_eq!(
            net.get(from, key).unwrap(),
            Some(value(5)),
            "value recovered"
        );
        assert_eq!(net.total_values(), 100);
    }

    #[test]
    fn values_follow_join_handoff() {
        let mut net = Network::bootstrap(NetConfig::default(), 8, &mut rng(5));
        let from = net.node_ids()[0];
        for i in 0..60u64 {
            net.put(from, sha1_id_of_u64(i), value(i)).unwrap();
        }
        // A newcomer splits some arc; its values must move with the keys.
        let mut r = rng(6);
        for _ in 0..8 {
            let contact = net.node_ids()[0];
            net.join(Id::random(&mut r), contact).unwrap();
        }
        assert_eq!(net.total_values(), 60);
        for i in 0..60u64 {
            let key = sha1_id_of_u64(i);
            let owner = net.owner_of(key).unwrap();
            assert!(
                net.node(owner).unwrap().store.contains_key(&key),
                "value {i} must live on its owner after joins"
            );
        }
    }

    #[test]
    fn values_follow_graceful_leave() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(7));
        let from = net.node_ids()[0];
        for i in 0..40u64 {
            net.put(from, sha1_id_of_u64(i), value(i)).unwrap();
        }
        let ids = net.node_ids();
        for id in ids.iter().take(5) {
            net.leave(*id).unwrap();
        }
        assert_eq!(net.total_values(), 40);
        let from = net.node_ids()[0];
        for i in 0..40u64 {
            assert_eq!(net.get(from, sha1_id_of_u64(i)).unwrap(), Some(value(i)));
        }
    }

    #[test]
    fn kv_messages_are_counted() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(8));
        let from = net.node_ids()[0];
        net.put(from, sha1_id_of_u64(1), value(1)).unwrap();
        net.get(from, sha1_id_of_u64(1)).unwrap();
        assert_eq!(net.stats.store_value, 1);
        assert_eq!(net.stats.fetch_value, 1);
    }
}
