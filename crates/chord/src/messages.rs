//! Message accounting.
//!
//! Every simulated RPC increments a counter here. The paper repeatedly
//! argues about strategies' *bandwidth* ("the estimation based neighbor
//! injection requires fewer messages", "invitation … greatly reducing the
//! maintenance costs"); counting messages lets the experiments check the
//! ordering instead of taking it on faith.

/// The kinds of protocol messages Chord exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// One hop of an iterative `find_successor` routing step.
    FindSuccessorHop,
    /// `get_predecessor` / stabilize probe.
    Stabilize,
    /// `notify` — informing a successor about a potential predecessor.
    Notify,
    /// Fetching a successor's successor list for repair.
    SuccessorListPull,
    /// Finger-table fix lookup (counted separately from app lookups).
    FixFinger,
    /// Liveness probe.
    Ping,
    /// Pushing a replica of a key range to a successor.
    ReplicaPush,
    /// Transferring key ownership (join/leave handoff).
    KeyTransfer,
    /// Asking a neighbor how many tasks it has (smart neighbor injection).
    LoadQuery,
    /// An invitation broadcast from an overloaded node to predecessors.
    Invitation,
    /// A routed value store (key-value API put).
    StoreValue,
    /// A routed value fetch (key-value API get).
    FetchValue,
}

/// Tallies of every message kind plus derived totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageStats {
    pub find_successor_hops: u64,
    pub stabilize: u64,
    pub notify: u64,
    pub successor_list_pulls: u64,
    pub fix_finger: u64,
    pub ping: u64,
    pub replica_push: u64,
    pub key_transfer: u64,
    pub load_query: u64,
    pub invitation: u64,
    pub store_value: u64,
    pub fetch_value: u64,
    // ---- fault-plane meta-counters -------------------------------
    // These describe what happened *to* messages rather than being
    // message kinds themselves, so they are excluded from `total()`
    // (each retry already re-records its underlying kind above; a
    // dropped message was recorded when it was sent).
    /// Resends triggered by the retry/backoff machinery.
    pub retries: u64,
    /// Operations that exhausted their attempt budget.
    pub timeouts: u64,
    /// Messages eaten by the fault plane (loss or partition).
    pub dropped: u64,
    /// Task keys permanently lost to crash-failures (no live replica).
    pub keys_lost: u64,
    /// Load replies distorted by a Byzantine reporter (the reply itself
    /// is already counted under `load_query`).
    pub lied: u64,
}

impl MessageStats {
    pub fn new() -> MessageStats {
        MessageStats::default()
    }

    /// Records one message of the given kind.
    pub fn record(&mut self, kind: MessageKind) {
        self.record_n(kind, 1);
    }

    /// Records `n` messages of the given kind.
    pub fn record_n(&mut self, kind: MessageKind, n: u64) {
        let slot = match kind {
            MessageKind::FindSuccessorHop => &mut self.find_successor_hops,
            MessageKind::Stabilize => &mut self.stabilize,
            MessageKind::Notify => &mut self.notify,
            MessageKind::SuccessorListPull => &mut self.successor_list_pulls,
            MessageKind::FixFinger => &mut self.fix_finger,
            MessageKind::Ping => &mut self.ping,
            MessageKind::ReplicaPush => &mut self.replica_push,
            MessageKind::KeyTransfer => &mut self.key_transfer,
            MessageKind::LoadQuery => &mut self.load_query,
            MessageKind::Invitation => &mut self.invitation,
            MessageKind::StoreValue => &mut self.store_value,
            MessageKind::FetchValue => &mut self.fetch_value,
        };
        *slot += n;
    }

    /// Total messages of every kind.
    pub fn total(&self) -> u64 {
        self.find_successor_hops
            + self.stabilize
            + self.notify
            + self.successor_list_pulls
            + self.fix_finger
            + self.ping
            + self.replica_push
            + self.key_transfer
            + self.load_query
            + self.invitation
            + self.store_value
            + self.fetch_value
    }

    /// Messages attributable to load-balancing decisions rather than
    /// routine ring upkeep.
    pub fn strategy_overhead(&self) -> u64 {
        self.load_query + self.invitation
    }

    /// Column-wise sum, for aggregating parallel trials.
    pub fn merge(&mut self, other: &MessageStats) {
        self.find_successor_hops += other.find_successor_hops;
        self.stabilize += other.stabilize;
        self.notify += other.notify;
        self.successor_list_pulls += other.successor_list_pulls;
        self.fix_finger += other.fix_finger;
        self.ping += other.ping;
        self.replica_push += other.replica_push;
        self.key_transfer += other.key_transfer;
        self.load_query += other.load_query;
        self.invitation += other.invitation;
        self.store_value += other.store_value;
        self.fetch_value += other.fetch_value;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.dropped += other.dropped;
        self.keys_lost += other.keys_lost;
        self.lied += other.lied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_increments_the_right_counter() {
        let mut s = MessageStats::new();
        s.record(MessageKind::Notify);
        s.record(MessageKind::Notify);
        s.record(MessageKind::Ping);
        assert_eq!(s.notify, 2);
        assert_eq!(s.ping, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn record_n_bulk() {
        let mut s = MessageStats::new();
        s.record_n(MessageKind::ReplicaPush, 50);
        assert_eq!(s.replica_push, 50);
        assert_eq!(s.total(), 50);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = MessageStats::new();
        a.record(MessageKind::LoadQuery);
        let mut b = MessageStats::new();
        b.record_n(MessageKind::LoadQuery, 3);
        b.record(MessageKind::Invitation);
        a.merge(&b);
        assert_eq!(a.load_query, 4);
        assert_eq!(a.invitation, 1);
        assert_eq!(a.strategy_overhead(), 5);
    }

    #[test]
    fn every_kind_is_counted_in_total() {
        let kinds = [
            MessageKind::FindSuccessorHop,
            MessageKind::Stabilize,
            MessageKind::Notify,
            MessageKind::SuccessorListPull,
            MessageKind::FixFinger,
            MessageKind::Ping,
            MessageKind::ReplicaPush,
            MessageKind::KeyTransfer,
            MessageKind::LoadQuery,
            MessageKind::Invitation,
            MessageKind::StoreValue,
            MessageKind::FetchValue,
        ];
        let mut s = MessageStats::new();
        for k in kinds {
            s.record(k);
        }
        assert_eq!(s.total(), kinds.len() as u64);
    }

    #[test]
    fn meta_counters_merge_but_stay_out_of_total() {
        let mut a = MessageStats::new();
        a.retries = 3;
        a.dropped = 2;
        let mut b = MessageStats::new();
        b.retries = 1;
        b.timeouts = 4;
        b.keys_lost = 7;
        b.lied = 5;
        b.record(MessageKind::Ping);
        a.merge(&b);
        assert_eq!(a.retries, 4);
        assert_eq!(a.timeouts, 4);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.keys_lost, 7);
        assert_eq!(a.lied, 5);
        assert_eq!(a.total(), 1, "only the ping is a message");
    }
}
