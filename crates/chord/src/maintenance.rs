//! Ring maintenance: stabilization, list repair, finger fixing, and
//! active replication.
//!
//! One [`Network::maintenance_cycle`] is what the paper assumes fits in a
//! tick: "a tick is enough time to accomplish at least one maintenance
//! cycle". The cycle follows the Chord paper's stabilize/notify/
//! fix-fingers trio, extended with the ChordReduce *active backup*
//! behavior (each node aggressively re-pushes its keys to its successor
//! list every cycle, and replica holders promote a dead owner's keys the
//! moment they become responsible for them).

use crate::messages::MessageKind;
use crate::network::Network;
use autobal_id::ring;

impl Network {
    /// Runs one full maintenance cycle on every live node (in ring
    /// order): prune dead neighbors, stabilize successor/predecessor
    /// pointers, refresh the successor and predecessor lists, fix a batch
    /// of fingers, push replicas, and promote replicas of dead owners.
    pub fn maintenance_cycle(&mut self) {
        let ids = self.node_ids();
        for &id in &ids {
            if !self.contains(id) {
                continue;
            }
            self.prune_dead_neighbors(id);
            self.stabilize_one(id);
            self.refresh_lists(id);
            self.fix_fingers(id);
        }
        // Promote before pushing: keys recovered from a dead owner's
        // replica must be re-replicated in the *same* cycle, otherwise a
        // follow-up failure of the promoting node inside the window
        // would lose them (their original replicas are consumed by the
        // promotion). Pushing afterwards also guarantees pushes land on
        // current successors.
        for &id in &ids {
            if self.contains(id) {
                self.promote_replicas(id);
            }
        }
        for &id in &ids {
            if self.contains(id) {
                self.push_replicas(id);
            }
        }
    }

    /// True if the node is still alive.
    pub fn contains(&self, id: autobal_id::Id) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Drops dead entries from the node's neighbor lists (each discovery
    /// costs a ping). Falls back to the ground-truth successor when the
    /// entire successor list has died — standing in for the out-of-band
    /// re-bootstrap a real deployment would perform.
    fn prune_dead_neighbors(&mut self, id: autobal_id::Id) {
        let node = &self.nodes[&id];
        let stale: Vec<autobal_id::Id> = node
            .successors
            .iter()
            .chain(node.predecessors.iter())
            .chain(node.fingers.iter().flatten())
            .copied()
            .filter(|n| !self.nodes.contains_key(n))
            .collect();
        if !stale.is_empty() {
            self.stats.record_n(MessageKind::Ping, stale.len() as u64);
            let node = self.nodes.get_mut(&id).unwrap();
            for d in stale {
                node.forget(d);
            }
        }
        let node = self.nodes.get_mut(&id).unwrap();
        if node.successors.is_empty() {
            if let Some(s) = self.truth_successor(id) {
                let node = self.nodes.get_mut(&id).unwrap();
                node.successors.push(s);
                self.stats.record(MessageKind::SuccessorListPull);
            }
        }
        let node = self.nodes.get_mut(&id).unwrap();
        if node.predecessors.is_empty() {
            if let Some(p) = self.truth_predecessor(id) {
                let node = self.nodes.get_mut(&id).unwrap();
                node.predecessors.push(p);
            }
        }
    }

    /// Chord `stabilize` + `notify` for one node. Under an active fault
    /// plan either probe can be lost; the sub-step is then skipped for
    /// this cycle and retried naturally on the next one — maintenance
    /// never wedges on a dropped message.
    fn stabilize_one(&mut self, id: autobal_id::Id) {
        let succ = match self.first_live_successor(id) {
            Some(s) => s,
            None => return,
        };
        if succ == id {
            self.stats.record(MessageKind::Stabilize);
        } else if self.deliver(MessageKind::Stabilize, id, succ).is_err() {
            return;
        }
        if succ != id {
            // x = successor.predecessor; adopt it if it sits between us.
            let x = self.nodes[&succ].predecessor();
            if x != id && self.nodes.contains_key(&x) && ring::in_open_arc(id, succ, x) {
                let node = self.nodes.get_mut(&id).unwrap();
                node.successors.retain(|&s| s != x);
                node.successors.insert(0, x);
                let cap = self.cfg.successor_list_len;
                self.nodes.get_mut(&id).unwrap().successors.truncate(cap);
            }
        }
        // notify(new successor, self)
        let succ = self.nodes[&id].successor();
        if succ != id && self.nodes.contains_key(&succ) {
            if self.deliver(MessageKind::Notify, id, succ).is_err() {
                return;
            }
            let plen = self.cfg.predecessor_list_len;
            let s = self.nodes.get_mut(&succ).unwrap();
            let cur_pred = s.predecessor();
            if cur_pred == succ
                || !ring::in_open_arc(id, succ, cur_pred) && ring::in_open_arc(cur_pred, succ, id)
            {
                s.predecessors.retain(|&p| p != id);
                s.predecessors.insert(0, id);
                s.predecessors.truncate(plen);
            }
        }
    }

    /// Pulls the successor's successor list and the predecessor's
    /// predecessor list, keeping ours fresh.
    fn refresh_lists(&mut self, id: autobal_id::Id) {
        let succ = self.nodes[&id].successor();
        if succ != id
            && self.nodes.contains_key(&succ)
            && self
                .deliver(MessageKind::SuccessorListPull, id, succ)
                .is_ok()
        {
            let pulled: Vec<autobal_id::Id> = {
                let s = &self.nodes[&succ];
                let mut list = vec![succ];
                list.extend(
                    s.successors
                        .iter()
                        .copied()
                        .filter(|&x| x != id && x != succ),
                );
                list.truncate(self.cfg.successor_list_len);
                list
            };
            self.nodes.get_mut(&id).unwrap().successors = pulled;
        }
        let pred = self.nodes[&id].predecessor();
        if pred != id
            && self.nodes.contains_key(&pred)
            && self
                .deliver(MessageKind::SuccessorListPull, id, pred)
                .is_ok()
        {
            let pulled: Vec<autobal_id::Id> = {
                let p = &self.nodes[&pred];
                let mut list = vec![pred];
                list.extend(
                    p.predecessors
                        .iter()
                        .copied()
                        .filter(|&x| x != id && x != pred),
                );
                list.truncate(self.cfg.predecessor_list_len);
                list
            };
            self.nodes.get_mut(&id).unwrap().predecessors = pulled;
        }
    }

    /// Fixes `fingers_per_cycle` finger entries via real lookups.
    fn fix_fingers(&mut self, id: autobal_id::Id) {
        let per_cycle = self.cfg.fingers_per_cycle;
        for _ in 0..per_cycle {
            let (k, target) = {
                let node = &self.nodes[&id];
                let k = node.next_finger % node.fingers.len();
                (k, node.finger_target(k))
            };
            self.stats.record(MessageKind::FixFinger);
            let resolved = match self.lookup(id, target) {
                Ok(r) => Some(r.owner),
                // A fault-plane timeout says nothing about the old
                // entry; keep it rather than tearing a working finger.
                Err(crate::network::NetworkError::TimedOut { .. }) => self.nodes[&id].fingers[k],
                Err(_) => None,
            };
            let node = self.nodes.get_mut(&id).unwrap();
            node.fingers[k] = resolved;
            node.next_finger = (k + 1) % node.fingers.len();
        }
    }

    /// Pushes a full replica of this node's keys to its first
    /// `replication_factor` live successors (active backup).
    fn push_replicas(&mut self, id: autobal_id::Id) {
        let (keys, store, targets) = {
            let node = &self.nodes[&id];
            let targets: Vec<autobal_id::Id> = node
                .successors
                .iter()
                .copied()
                .filter(|s| *s != id && self.nodes.contains_key(s))
                .take(self.cfg.replication_factor)
                .collect();
            (node.keys.clone(), node.store.clone(), targets)
        };
        for t in targets {
            // A lost push leaves the target's previous (stale) replica
            // in place — strictly less fresh, never less safe.
            if self.deliver(MessageKind::ReplicaPush, id, t).is_err() {
                continue;
            }
            let tgt = self.nodes.get_mut(&t).unwrap();
            tgt.replicas.insert(id, keys.clone());
            tgt.replica_store.insert(id, store.clone());
        }
    }

    /// Promotes keys from replicas whose owner has died and whose keys
    /// now fall into this node's responsibility; drops replica entries
    /// that can never be promoted here.
    fn promote_replicas(&mut self, id: autobal_id::Id) {
        let dead_owners: Vec<autobal_id::Id> = self.nodes[&id]
            .replicas
            .keys()
            .copied()
            .filter(|o| !self.nodes.contains_key(o))
            .collect();
        if dead_owners.is_empty() {
            return;
        }
        let pred = self.nodes[&id].predecessor();
        for owner in dead_owners {
            let node = self.nodes.get_mut(&id).unwrap();
            let keys = node.replicas.remove(&owner).unwrap();
            let mut values = node.replica_store.remove(&owner).unwrap_or_default();
            let mut promoted = 0u64;
            let mut forwarded = Vec::new();
            for k in keys {
                if ring::in_arc(pred, id, k) {
                    let node = self.nodes.get_mut(&id).unwrap();
                    node.keys.insert(k);
                    if let Some(v) = values.remove(&k) {
                        node.store.insert(k, v);
                    }
                    promoted += 1;
                } else {
                    // A node joined inside the dead owner's old arc and
                    // now owns this key; forward it there (an ordinary
                    // routed store — duplicates are idempotent since
                    // other replica holders may forward the same key).
                    forwarded.push((k, values.remove(&k)));
                }
            }
            let nforwarded = forwarded.len() as u64;
            for (k, v) in forwarded {
                let target = self.insert_key(k);
                if let Some(v) = v {
                    self.nodes.get_mut(&target).unwrap().store.insert(k, v);
                }
            }
            if promoted + nforwarded > 0 {
                self.stats
                    .record_n(MessageKind::KeyTransfer, promoted + nforwarded);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::network::{NetConfig, Network};
    use autobal_id::sha1::sha1_id_of_u64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn cycle_on_stable_ring_keeps_consistency() {
        let mut net = Network::bootstrap(NetConfig::default(), 40, &mut rng(1));
        for k in 0..100u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        assert!(net.is_consistent());
        assert_eq!(net.total_keys(), 100);
    }

    #[test]
    fn replicas_are_pushed_to_successors() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(2));
        for k in 0..50u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle();
        // Every node with keys must be replicated on its successor.
        for id in net.node_ids() {
            let keys = net.node(id).unwrap().keys.clone();
            if keys.is_empty() {
                continue;
            }
            let succ = net.node(id).unwrap().successor();
            let rep = net.node(succ).unwrap().replicas.get(&id).cloned();
            assert_eq!(rep, Some(keys), "replica of {id} on {succ}");
        }
    }

    #[test]
    fn failure_recovery_restores_all_keys() {
        let mut net = Network::bootstrap(NetConfig::default(), 30, &mut rng(3));
        for k in 0..300u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle(); // seed replicas
        let victims: Vec<_> = net.node_ids().into_iter().step_by(7).take(4).collect();
        for v in &victims {
            net.fail(*v).unwrap();
        }
        assert!(net.total_keys() < 300 || victims.iter().all(|v| !net.contains(*v)));
        // A couple of cycles repair pointers and promote replicas.
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        assert_eq!(net.total_keys(), 300, "all keys recovered");
        assert!(net.is_consistent());
    }

    #[test]
    fn recovery_after_adjacent_failures() {
        // Kill two neighboring nodes at once; the next live successor
        // holds replicas of both (replication_factor = 5 > 2).
        let mut net = Network::bootstrap(NetConfig::default(), 20, &mut rng(4));
        for k in 0..200u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle();
        let ids = net.node_ids();
        net.fail(ids[5]).unwrap();
        net.fail(ids[6]).unwrap();
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        assert_eq!(net.total_keys(), 200);
        assert!(net.is_consistent());
    }

    #[test]
    fn join_then_cycles_rebuild_fingers() {
        let mut net = Network::bootstrap(NetConfig::default(), 16, &mut rng(5));
        let contact = net.node_ids()[0];
        let mut r = rng(6);
        for _ in 0..4 {
            net.join(autobal_id::Id::random(&mut r), contact).unwrap();
        }
        // Enough cycles to fix all 160 fingers (16 per cycle).
        for _ in 0..10 {
            net.maintenance_cycle();
        }
        assert!(net.is_consistent());
        // Fingers of newcomers resolve to live nodes.
        for id in net.node_ids() {
            let node = net.node(id).unwrap();
            for f in node.fingers.iter().flatten() {
                assert!(net.contains(*f));
            }
        }
    }

    #[test]
    fn churn_storm_converges() {
        let mut net = Network::bootstrap(NetConfig::default(), 50, &mut rng(7));
        for k in 0..200u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle();
        let mut r = rng(8);
        use rand::Rng;
        // 10 rounds of simultaneous join+fail, maintenance between.
        for round in 0..10 {
            let ids = net.node_ids();
            let victim = ids[r.gen_range(0..ids.len())];
            net.fail(victim).unwrap();
            let contact = net.node_ids()[0];
            let newcomer = autobal_id::Id::random(&mut r);
            net.join(newcomer, contact).unwrap();
            net.maintenance_cycle();
            assert_eq!(net.len(), 50, "round {round}");
        }
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        assert_eq!(net.total_keys(), 200);
        assert!(net.is_consistent());
    }

    #[test]
    fn message_counters_move_during_maintenance() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(9));
        let before = net.stats.total();
        net.maintenance_cycle();
        let after = net.stats.total();
        assert!(after > before);
        assert!(net.stats.stabilize >= 10);
        assert!(net.stats.fix_finger >= 10);
    }
}
