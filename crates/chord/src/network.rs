//! The simulated Chord network: node container, membership, key
//! placement, and iterative lookups with message accounting.

use crate::fault::{FaultPlan, FaultState};
use crate::messages::{MessageKind, MessageStats};
use crate::node::Node;
use autobal_id::{ring, Id, ID_BITS};
use std::collections::BTreeMap;

/// Configuration knobs for the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Successor-list length (paper default: 5, also tested at 10).
    pub successor_list_len: usize,
    /// Predecessor-list length (paper: "nodes also keep track of the same
    /// number of predecessors").
    pub predecessor_list_len: usize,
    /// How many successors receive active backups of a node's keys.
    pub replication_factor: usize,
    /// Fingers fixed per node per maintenance cycle.
    pub fingers_per_cycle: usize,
    /// Abort threshold for a single lookup (routing loop safety valve).
    pub max_lookup_hops: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            successor_list_len: 5,
            predecessor_list_len: 5,
            replication_factor: 5,
            fingers_per_cycle: 16,
            max_lookup_hops: 512,
        }
    }
}

/// Errors surfaced by network operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkError {
    /// Operation requires at least one live node.
    EmptyNetwork,
    /// A node with this id already exists.
    DuplicateId(Id),
    /// The referenced node is not in the network.
    UnknownNode(Id),
    /// Routing did not converge within `max_lookup_hops`.
    LookupFailed { hops: u32 },
    /// The fault plane ate every attempt: retries exhausted without an
    /// answer (message loss) or the peer sits behind an open partition.
    TimedOut { attempts: u32 },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::EmptyNetwork => write!(f, "network has no live nodes"),
            NetworkError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            NetworkError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetworkError::LookupFailed { hops } => {
                write!(f, "lookup failed to converge after {hops} hops")
            }
            NetworkError::TimedOut { attempts } => {
                write!(f, "operation timed out after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Outcome of an iterative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// The node responsible for the key.
    pub owner: Id,
    /// Routing hops taken (0 when the starting node already knows).
    pub hops: u32,
    /// The nodes visited, starting node first.
    pub path: Vec<Id>,
}

/// What a ground-truth rewire found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewireReport {
    /// Keys that only survived inside replicas of dead owners and were
    /// re-inserted at their rightful owners.
    pub keys_rescued: u64,
    /// Dead-owner replica entries dropped after rescue.
    pub stale_replicas_purged: u64,
}

/// What an abrupt [`Network::fail`] took with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailReport {
    /// Primary keys with no live replica anywhere: permanently gone.
    /// Also billed to [`MessageStats::keys_lost`].
    pub keys_lost: u64,
    /// Primary keys covered by at least one live replica; maintenance
    /// will promote them back.
    pub keys_recoverable: u64,
}

/// A whole simulated Chord overlay.
///
/// Nodes are owned by the network and communicate through it; every
/// simulated RPC bumps [`Network::stats`]. An optional [`FaultPlan`]
/// (inert by default) makes message delivery fallible.
#[derive(Debug, Clone)]
pub struct Network {
    pub(crate) cfg: NetConfig,
    pub(crate) nodes: BTreeMap<Id, Node>,
    /// Message counters for the lifetime of the network.
    pub stats: MessageStats,
    /// The armed fault plan (inert unless [`Network::set_fault_plan`]).
    pub(crate) faults: FaultState,
    /// Harness-driven clock used only to evaluate partition windows;
    /// the synchronous substrate otherwise has no notion of time.
    pub(crate) clock: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new(cfg: NetConfig) -> Network {
        Network {
            cfg,
            nodes: BTreeMap::new(),
            stats: MessageStats::new(),
            faults: FaultState::inert(),
            clock: 0,
        }
    }

    /// Arms a fault plan. The default plan is inert, so a network that
    /// never calls this behaves exactly as before the fault plane
    /// existed (no extra RNG draws, no counter movement).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan);
    }

    /// The currently armed plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Advances the partition-window clock (the harness calls this once
    /// per tick; see [`Network::set_clock`]).
    pub fn set_clock(&mut self, now: u64) {
        #[cfg(feature = "strict")]
        debug_assert!(now >= self.clock, "clock must be monotonic");
        self.clock = now;
    }

    /// Message-level fault shim for single-shot application messages
    /// (load queries, invitations). The message is billed either way —
    /// bandwidth is spent whether or not the packet arrives — and
    /// `false` means the fault plane ate it.
    pub fn try_message(&mut self, kind: MessageKind) -> bool {
        self.stats.record(kind);
        if self.faults.lose_message() {
            self.stats.dropped += 1;
            return false;
        }
        true
    }

    /// True when an open partition window separates `a` and `b` right
    /// now. Always false under the inert plan.
    pub fn partitioned(&self, a: Id, b: Id) -> bool {
        self.faults.partitioned(self.clock, a, b)
    }

    /// Delivers one protocol message from `from` to `to`, retrying up to
    /// `max_attempts` times on loss (each resend bills `retries` plus
    /// the message kind again — the bytes really cross the wire twice).
    /// A partition fails immediately: backoff inside one tick cannot
    /// outwait a multi-tick cut.
    pub(crate) fn deliver(
        &mut self,
        kind: MessageKind,
        from: Id,
        to: Id,
    ) -> Result<(), NetworkError> {
        self.stats.record(kind);
        if !self.faults.is_active() {
            return Ok(());
        }
        if self.faults.partitioned(self.clock, from, to) {
            self.stats.dropped += 1;
            self.stats.timeouts += 1;
            return Err(NetworkError::TimedOut { attempts: 1 });
        }
        let max = self.faults.plan().max_attempts.max(1);
        let mut attempt = 1;
        while self.faults.lose_message() {
            self.stats.dropped += 1;
            if attempt >= max {
                self.stats.timeouts += 1;
                return Err(NetworkError::TimedOut { attempts: attempt });
            }
            attempt += 1;
            self.stats.retries += 1;
            self.stats.record(kind);
        }
        Ok(())
    }

    /// Creates a network of `n` nodes with uniformly random IDs and a
    /// fully stabilized ring (correct successor/predecessor lists and
    /// finger tables). This models the paper's assumption that "the
    /// network starts our experiments stable".
    pub fn bootstrap<R: rand::Rng + ?Sized>(cfg: NetConfig, n: usize, rng: &mut R) -> Network {
        let mut ids = Vec::with_capacity(n);
        let mut net = Network::new(cfg);
        while ids.len() < n {
            let id = Id::random(rng);
            if let std::collections::btree_map::Entry::Vacant(e) = net.nodes.entry(id) {
                e.insert(Node::solo(id));
                ids.push(id);
            }
        }
        net.rewire_ground_truth();
        net
    }

    /// Creates a fully stabilized network from explicit ids (used for
    /// evenly-spaced rings and deterministic tests). Duplicate ids error.
    pub fn from_ids(cfg: NetConfig, ids: &[Id]) -> Result<Network, NetworkError> {
        let mut net = Network::new(cfg);
        for &id in ids {
            if net.nodes.insert(id, Node::solo(id)).is_some() {
                return Err(NetworkError::DuplicateId(id));
            }
        }
        net.rewire_ground_truth();
        Ok(net)
    }

    /// The configuration this network runs with.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All live node ids in ring (ascending) order.
    pub fn node_ids(&self) -> Vec<Id> {
        self.nodes.keys().copied().collect()
    }

    /// Immutable access to one node's state.
    pub fn node(&self, id: Id) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Mutable access (tests and strategies that tweak state directly).
    pub fn node_mut(&mut self, id: Id) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// Ground-truth owner of `key`: the first live node clockwise from
    /// the key (the BTreeMap oracle, *not* a protocol message).
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(key..)
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.nodes.keys().next().copied())
    }

    /// Ground-truth successor of an id, excluding the id itself.
    pub(crate) fn truth_successor(&self, id: Id) -> Option<Id> {
        if self.nodes.len() < 2 && self.nodes.contains_key(&id) {
            return Some(id);
        }
        let after = self
            .nodes
            .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
            .next()
            .map(|(i, _)| *i);
        after.or_else(|| self.nodes.keys().next().copied())
    }

    /// Ground-truth predecessor of an id, excluding the id itself.
    pub(crate) fn truth_predecessor(&self, id: Id) -> Option<Id> {
        if self.nodes.len() < 2 && self.nodes.contains_key(&id) {
            return Some(id);
        }
        let before = self.nodes.range(..id).next_back().map(|(i, _)| *i);
        before.or_else(|| self.nodes.keys().next_back().copied())
    }

    /// Stores a key on its ground-truth owner. Returns the owner.
    ///
    /// # Panics
    /// Panics if the network is empty.
    pub fn insert_key(&mut self, key: Id) -> Id {
        // autobal-lint: allow(panic-safety, "documented panic: inserting into an empty network is a caller bug")
        let owner = self.owner_of(key).expect("insert_key on empty network");
        if let Some(n) = self.nodes.get_mut(&owner) {
            n.keys.insert(key);
        }
        owner
    }

    /// Total number of primary-copy keys across all nodes.
    pub fn total_keys(&self) -> usize {
        self.nodes.values().map(|n| n.keys.len()).sum()
    }

    /// Workload (key count) per node, in ring order.
    pub fn loads(&self) -> Vec<u64> {
        self.nodes.values().map(|n| n.keys.len() as u64).collect()
    }

    /// Iterative Chord lookup from node `from` for `key`, using only
    /// node-local routing state. Dead references encountered en route are
    /// lazily repaired (timeout → forget), exactly like a real deployment.
    pub fn lookup(&mut self, from: Id, key: Id) -> Result<LookupResult, NetworkError> {
        if !self.nodes.contains_key(&from) {
            return Err(NetworkError::UnknownNode(from));
        }
        let mut cur = from;
        let mut hops = 0u32;
        let mut path = vec![cur];
        loop {
            if hops as usize > self.cfg.max_lookup_hops {
                return Err(NetworkError::LookupFailed { hops });
            }
            let Some(node) = self.nodes.get(&cur) else {
                return Err(NetworkError::UnknownNode(cur));
            };
            // Does the current node already own the key?
            if node.owns(key) && self.nodes.contains_key(&node.predecessor()) {
                return Ok(LookupResult {
                    owner: cur,
                    hops,
                    path,
                });
            }
            let succ = node.successor();
            // Key between cur and its live successor → successor owns it.
            if self.nodes.contains_key(&succ) && ring::in_arc(cur, succ, key) {
                self.deliver(MessageKind::FindSuccessorHop, cur, succ)?;
                hops += 1;
                path.push(succ);
                return Ok(LookupResult {
                    owner: succ,
                    hops,
                    path,
                });
            }
            // Otherwise route through the closest preceding live entry.
            let next = {
                let Some(node) = self.nodes.get(&cur) else {
                    return Err(NetworkError::UnknownNode(cur));
                };
                let mut candidate = node.closest_preceding(key);
                // Skip dead candidates, forgetting them as we go.
                loop {
                    match candidate {
                        Some(c) if self.nodes.contains_key(&c) => break Some(c),
                        Some(c) => {
                            self.stats.record(MessageKind::Ping);
                            let Some(n) = self.nodes.get_mut(&cur) else {
                                break None;
                            };
                            n.forget(c);
                            candidate = n.closest_preceding(key);
                        }
                        None => break None,
                    }
                }
            };
            match next {
                Some(n) if n != cur => {
                    self.deliver(MessageKind::FindSuccessorHop, cur, n)?;
                    hops += 1;
                    path.push(n);
                    cur = n;
                }
                _ => {
                    // No better candidate: fall to the live successor.
                    let succ = self.first_live_successor(cur);
                    match succ {
                        Some(s) if s != cur => {
                            self.deliver(MessageKind::FindSuccessorHop, cur, s)?;
                            hops += 1;
                            path.push(s);
                            cur = s;
                        }
                        _ => {
                            // Alone in the ring (or fully partitioned):
                            // current node is the owner by default.
                            return Ok(LookupResult {
                                owner: cur,
                                hops,
                                path,
                            });
                        }
                    }
                }
            }
        }
    }

    /// First entry of `id`'s successor list that is still alive, pruning
    /// dead ones (each probe counts as a ping).
    pub(crate) fn first_live_successor(&mut self, id: Id) -> Option<Id> {
        loop {
            let cand = self.nodes.get(&id)?.successors.first().copied()?;
            if cand == id {
                return Some(id);
            }
            if self.nodes.contains_key(&cand) {
                return Some(cand);
            }
            self.stats.record(MessageKind::Ping);
            if let Some(n) = self.nodes.get_mut(&id) {
                n.forget(cand);
            }
            if self.nodes.get(&id)?.successors.is_empty() {
                return None;
            }
        }
    }

    /// A new node joins through `contact`. Performs the Chord join
    /// protocol: lookup of the new id, key handoff from the successor,
    /// and immediate linking of the neighbor pointers (the paper cites
    /// \[21\] for nodes joining "extremely quickly"; subsequent maintenance
    /// cycles rebuild fingers and lists incrementally).
    pub fn join(&mut self, new_id: Id, contact: Id) -> Result<(), NetworkError> {
        if self.nodes.contains_key(&new_id) {
            return Err(NetworkError::DuplicateId(new_id));
        }
        if self.nodes.is_empty() {
            self.nodes.insert(new_id, Node::solo(new_id));
            return Ok(());
        }
        if !self.nodes.contains_key(&contact) {
            return Err(NetworkError::UnknownNode(contact));
        }

        let succ_id = self.lookup(contact, new_id)?.owner;
        let Some(pred_id) = self
            .nodes
            .get(&succ_id)
            .map(|s| s.predecessor())
            .filter(|p| self.nodes.contains_key(p))
            .or_else(|| self.truth_predecessor(succ_id))
        else {
            return Err(NetworkError::UnknownNode(succ_id));
        };

        // Take over keys in (pred, new_id] from the successor, values
        // included.
        let Some(succ) = self.nodes.get_mut(&succ_id) else {
            return Err(NetworkError::UnknownNode(succ_id));
        };
        let moved: Vec<Id> = succ
            .keys
            .iter()
            .copied()
            .filter(|&k| !ring::in_arc(new_id, succ_id, k))
            .collect();
        let mut moved_values = std::collections::BTreeMap::new();
        for k in &moved {
            succ.keys.remove(k);
            if let Some(v) = succ.store.remove(k) {
                moved_values.insert(*k, v);
            }
        }
        self.stats
            .record_n(MessageKind::KeyTransfer, moved.len().max(1) as u64);

        // Build the new node.
        let mut node = Node::solo(new_id);
        node.successors = {
            let mut list = vec![succ_id];
            if let Some(succ) = self.nodes.get(&succ_id) {
                list.extend(succ.successors.iter().copied().filter(|&s| s != new_id));
            }
            list.truncate(self.cfg.successor_list_len);
            list
        };
        node.predecessors = {
            let mut list = vec![pred_id];
            if let Some(pred) = self.nodes.get(&pred_id) {
                list.extend(pred.predecessors.iter().copied().filter(|&p| p != new_id));
            }
            list.truncate(self.cfg.predecessor_list_len);
            list
        };
        node.keys = moved.into_iter().collect();
        node.store = moved_values;
        self.nodes.insert(new_id, node);

        // Link the neighbors to us.
        let slen = self.cfg.successor_list_len;
        let plen = self.cfg.predecessor_list_len;
        if let Some(p) = self.nodes.get_mut(&pred_id) {
            p.successors.retain(|&s| s != new_id);
            p.successors.insert(0, new_id);
            p.successors.truncate(slen);
        }
        if let Some(s) = self.nodes.get_mut(&succ_id) {
            s.predecessors.retain(|&q| q != new_id);
            s.predecessors.insert(0, new_id);
            s.predecessors.truncate(plen);
        }
        self.stats.record(MessageKind::Notify);
        Ok(())
    }

    /// [`Network::join`] with bounded-attempt semantics: under an active
    /// fault plan the join's lookup can time out; this retries the whole
    /// join up to the plan's `max_attempts` (billing each extra round
    /// as a retry) before giving up. Non-transient errors (duplicate id,
    /// dead contact) are returned immediately.
    pub fn join_with_retry(&mut self, new_id: Id, contact: Id) -> Result<(), NetworkError> {
        let max = self.faults.plan().max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match self.join(new_id, contact) {
                Err(NetworkError::TimedOut { .. }) if attempt < max => {
                    attempt += 1;
                    self.stats.retries += 1;
                }
                other => return other,
            }
        }
    }

    /// Graceful departure: keys are handed to the successor, neighbors
    /// are relinked, and the node is removed.
    pub fn leave(&mut self, id: Id) -> Result<(), NetworkError> {
        if !self.nodes.contains_key(&id) {
            return Err(NetworkError::UnknownNode(id));
        }
        if self.nodes.len() == 1 {
            self.nodes.remove(&id);
            return Ok(());
        }
        let (Some(succ_id), Some(pred_id)) = (self.truth_successor(id), self.truth_predecessor(id))
        else {
            return Err(NetworkError::UnknownNode(id));
        };

        let Some(node) = self.nodes.remove(&id) else {
            return Err(NetworkError::UnknownNode(id));
        };
        let keys = node.keys;
        let store = node.store;
        self.stats
            .record_n(MessageKind::KeyTransfer, keys.len().max(1) as u64);
        let Some(succ) = self.nodes.get_mut(&succ_id) else {
            return Err(NetworkError::UnknownNode(succ_id));
        };
        succ.keys.extend(keys);
        succ.store.extend(store);
        succ.forget(id);
        succ.predecessors.retain(|&p| p != pred_id);
        succ.predecessors.insert(0, pred_id);
        succ.predecessors.truncate(self.cfg.predecessor_list_len);

        let slen = self.cfg.successor_list_len;
        let Some(pred) = self.nodes.get_mut(&pred_id) else {
            return Err(NetworkError::UnknownNode(pred_id));
        };
        pred.forget(id);
        pred.successors.retain(|&s| s != succ_id);
        pred.successors.insert(0, succ_id);
        pred.successors.truncate(slen);
        self.stats.record(MessageKind::Notify);
        Ok(())
    }

    /// Abrupt failure: the node vanishes without handing anything off.
    /// Replicated keys stay recoverable (the next maintenance cycles
    /// promote them); keys with no live replica are gone for good, and
    /// the report says so explicitly — they are also billed to
    /// [`MessageStats::keys_lost`] rather than silently vanishing.
    pub fn fail(&mut self, id: Id) -> Result<FailReport, NetworkError> {
        let node = self
            .nodes
            .remove(&id)
            .ok_or(NetworkError::UnknownNode(id))?;
        let mut covered: std::collections::BTreeSet<Id> = std::collections::BTreeSet::new();
        for n in self.nodes.values() {
            if let Some(rep) = n.replicas.get(&id) {
                covered.extend(rep.iter().copied());
            }
        }
        let keys_lost = node.keys.iter().filter(|k| !covered.contains(k)).count() as u64;
        self.stats.keys_lost += keys_lost;
        Ok(FailReport {
            keys_lost,
            keys_recoverable: node.keys.len() as u64 - keys_lost,
        })
    }

    /// Rebuilds every node's successor/predecessor lists and finger
    /// tables from ground truth — the "perfectly stabilized" state.
    ///
    /// Replica entries of dead owners are not silently discarded: any
    /// key they hold that no live node owns is rescued onto its rightful
    /// owner first (billed as key transfers), then the stale entries are
    /// dropped. The report makes both counts explicit.
    pub fn rewire_ground_truth(&mut self) -> RewireReport {
        let report = self.reconcile_stale_replicas();
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        let n = ids.len();
        if n == 0 {
            return report;
        }
        for (i, &id) in ids.iter().enumerate() {
            let mut successors = Vec::with_capacity(self.cfg.successor_list_len);
            for k in 1..=self.cfg.successor_list_len.min(n.saturating_sub(1).max(1)) {
                // autobal-lint: allow(panic-safety, "index is taken modulo ids.len(), always in bounds")
                successors.push(ids[(i + k) % n]);
            }
            if successors.is_empty() {
                successors.push(id);
            }
            let mut predecessors = Vec::with_capacity(self.cfg.predecessor_list_len);
            for k in 1..=self
                .cfg
                .predecessor_list_len
                .min(n.saturating_sub(1).max(1))
            {
                // autobal-lint: allow(panic-safety, "index is taken modulo ids.len(), always in bounds")
                predecessors.push(ids[(i + n - k % n) % n]);
            }
            if predecessors.is_empty() {
                predecessors.push(id);
            }
            let mut fingers = vec![None; ID_BITS as usize];
            for (k, f) in fingers.iter_mut().enumerate() {
                let target = id.wrapping_add(Id::pow2(k as u32));
                *f = self.owner_of_in(&ids, target);
            }
            let Some(node) = self.nodes.get_mut(&id) else {
                continue;
            };
            node.successors = successors;
            node.predecessors = predecessors;
            node.fingers = fingers;
        }
        report
    }

    /// Rescues keys stranded in replicas of dead owners, then purges
    /// those entries (helper for [`Network::rewire_ground_truth`]).
    fn reconcile_stale_replicas(&mut self) -> RewireReport {
        let mut report = RewireReport::default();
        if self.nodes.is_empty() {
            return report;
        }
        let live_primaries: std::collections::BTreeSet<Id> = self
            .nodes
            .values()
            .flat_map(|n| n.keys.iter().copied())
            .collect();
        let holders: Vec<Id> = self.nodes.keys().copied().collect();
        let mut stranded: Vec<(Id, Option<bytes::Bytes>)> = Vec::new();
        for h in holders {
            let Some(holder) = self.nodes.get(&h) else {
                continue;
            };
            let dead: Vec<Id> = holder
                .replicas
                .keys()
                .copied()
                .filter(|o| !self.nodes.contains_key(o))
                .collect();
            for owner in dead {
                let Some(node) = self.nodes.get_mut(&h) else {
                    continue;
                };
                let keys = node.replicas.remove(&owner).unwrap_or_default();
                let mut values = node.replica_store.remove(&owner).unwrap_or_default();
                report.stale_replicas_purged += 1;
                for k in keys {
                    if !live_primaries.contains(&k) {
                        stranded.push((k, values.remove(&k)));
                    }
                }
            }
        }
        stranded.sort_by_key(|(k, _)| *k);
        stranded.dedup_by_key(|(k, _)| *k);
        report.keys_rescued = stranded.len() as u64;
        if !stranded.is_empty() {
            self.stats
                .record_n(MessageKind::KeyTransfer, report.keys_rescued);
        }
        for (k, v) in stranded {
            let owner = self.insert_key(k);
            if let Some(v) = v {
                if let Some(n) = self.nodes.get_mut(&owner) {
                    n.store.insert(k, v);
                }
            }
        }
        report
    }

    /// Owner lookup against a sorted id slice (helper for rewiring).
    fn owner_of_in(&self, sorted: &[Id], key: Id) -> Option<Id> {
        if sorted.is_empty() {
            return None;
        }
        match sorted.binary_search(&key) {
            Ok(i) => sorted.get(i).copied(),
            Err(i) => sorted.get(i).copied().or_else(|| sorted.first().copied()),
        }
    }

    /// Checks that every node's immediate successor and predecessor agree
    /// with ground truth and every key sits on its rightful owner.
    pub fn is_consistent(&self) -> bool {
        for (&id, node) in &self.nodes {
            if node.successor() != self.truth_successor(id).unwrap_or(id) {
                return false;
            }
            if node.predecessor() != self.truth_predecessor(id).unwrap_or(id) {
                return false;
            }
            for &k in &node.keys {
                if self.owner_of(k) != Some(id) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_id::sha1::sha1_id_of_u64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn bootstrap_is_consistent() {
        let net = Network::bootstrap(NetConfig::default(), 50, &mut rng(1));
        assert_eq!(net.len(), 50);
        assert!(net.is_consistent());
    }

    #[test]
    fn bootstrap_single_node() {
        let net = Network::bootstrap(NetConfig::default(), 1, &mut rng(2));
        let id = net.node_ids()[0];
        let n = net.node(id).unwrap();
        assert_eq!(n.successor(), id);
        assert_eq!(n.predecessor(), id);
        assert!(net.is_consistent());
    }

    #[test]
    fn from_ids_rejects_duplicates() {
        let a = Id::from(5u64);
        assert!(matches!(
            Network::from_ids(NetConfig::default(), &[a, a]),
            Err(NetworkError::DuplicateId(_))
        ));
    }

    #[test]
    fn owner_of_wraps_around() {
        let ids = [Id::from(100u64), Id::from(200u64)];
        let net = Network::from_ids(NetConfig::default(), &ids).unwrap();
        assert_eq!(net.owner_of(Id::from(150u64)), Some(Id::from(200u64)));
        assert_eq!(net.owner_of(Id::from(250u64)), Some(Id::from(100u64)));
        assert_eq!(net.owner_of(Id::from(100u64)), Some(Id::from(100u64)));
        assert_eq!(net.owner_of(Id::from(50u64)), Some(Id::from(100u64)));
    }

    #[test]
    fn insert_key_lands_on_owner() {
        let mut net = Network::bootstrap(NetConfig::default(), 20, &mut rng(3));
        for k in 0..200u64 {
            let key = sha1_id_of_u64(k);
            let owner = net.insert_key(key);
            assert_eq!(net.owner_of(key), Some(owner));
            assert!(net.node(owner).unwrap().keys.contains(&key));
        }
        assert_eq!(net.total_keys(), 200);
        assert!(net.is_consistent());
    }

    #[test]
    fn lookup_finds_owner_from_every_node() {
        let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng(4));
        let key = sha1_id_of_u64(999);
        let truth = net.owner_of(key).unwrap();
        for from in net.node_ids() {
            let res = net.lookup(from, key).unwrap();
            assert_eq!(res.owner, truth, "from {from}");
            assert_eq!(res.path.first(), Some(&from));
            assert_eq!(res.path.last(), Some(&res.owner));
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let mut net = Network::bootstrap(NetConfig::default(), 256, &mut rng(5));
        let ids = net.node_ids();
        let mut total_hops = 0u64;
        let mut lookups = 0u64;
        for k in 0..200u64 {
            let key = sha1_id_of_u64(k);
            let from = ids[(k as usize * 37) % ids.len()];
            let res = net.lookup(from, key).unwrap();
            total_hops += res.hops as u64;
            lookups += 1;
        }
        let avg = total_hops as f64 / lookups as f64;
        // Expected ≈ ½ log2 256 = 4; allow generous slack.
        assert!(avg < 8.0, "average hops {avg}");
        assert!(avg > 1.0, "suspiciously fast: {avg}");
    }

    #[test]
    fn lookup_from_unknown_node_errors() {
        let mut net = Network::bootstrap(NetConfig::default(), 4, &mut rng(6));
        let bogus = Id::from(1u64);
        assert!(!net.nodes.contains_key(&bogus));
        assert_eq!(
            net.lookup(bogus, Id::from(2u64)),
            Err(NetworkError::UnknownNode(bogus))
        );
    }

    #[test]
    fn join_takes_over_key_range() {
        let ids = [Id::from(1000u64), Id::from(2000u64)];
        let mut net = Network::from_ids(NetConfig::default(), &ids).unwrap();
        // Keys 1500 and 1800 belong to 2000.
        net.insert_key(Id::from(1500u64));
        net.insert_key(Id::from(1800u64));
        // A node at 1600 takes over (1000, 1600]: key 1500.
        net.join(Id::from(1600u64), ids[0]).unwrap();
        let newcomer = net.node(Id::from(1600u64)).unwrap();
        assert!(newcomer.keys.contains(&Id::from(1500u64)));
        assert!(!newcomer.keys.contains(&Id::from(1800u64)));
        let old = net.node(Id::from(2000u64)).unwrap();
        assert!(old.keys.contains(&Id::from(1800u64)));
        assert!(net.is_consistent());
    }

    #[test]
    fn join_into_empty_network() {
        let mut net = Network::new(NetConfig::default());
        net.join(Id::from(42u64), Id::from(42u64)).unwrap();
        assert_eq!(net.len(), 1);
        assert!(net.is_consistent());
    }

    #[test]
    fn join_duplicate_errors() {
        let mut net = Network::bootstrap(NetConfig::default(), 3, &mut rng(7));
        let existing = net.node_ids()[0];
        assert_eq!(
            net.join(existing, existing),
            Err(NetworkError::DuplicateId(existing))
        );
    }

    #[test]
    fn many_joins_preserve_consistency_and_keys() {
        let mut net = Network::bootstrap(NetConfig::default(), 8, &mut rng(8));
        for k in 0..300u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        let contact = net.node_ids()[0];
        let mut r = rng(9);
        for _ in 0..32 {
            let id = Id::random(&mut r);
            net.join(id, contact).unwrap();
        }
        assert_eq!(net.len(), 40);
        assert_eq!(net.total_keys(), 300);
        assert!(net.is_consistent());
    }

    #[test]
    fn graceful_leave_hands_keys_to_successor() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(10));
        for k in 0..100u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        let victim = net.node_ids()[3];
        let succ = net.truth_successor(victim).unwrap();
        let expected = net.node(victim).unwrap().keys.len() + net.node(succ).unwrap().keys.len();
        net.leave(victim).unwrap();
        assert_eq!(net.node(succ).unwrap().keys.len(), expected);
        assert_eq!(net.total_keys(), 100);
        assert!(net.is_consistent());
    }

    #[test]
    fn leave_last_node_empties_network() {
        let mut net = Network::bootstrap(NetConfig::default(), 1, &mut rng(11));
        let id = net.node_ids()[0];
        net.leave(id).unwrap();
        assert!(net.is_empty());
        assert_eq!(net.leave(id), Err(NetworkError::UnknownNode(id)));
    }

    #[test]
    fn fail_drops_primary_keys() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(12));
        for k in 0..100u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        let victim = net.node_ids()[0];
        let lost = net.node(victim).unwrap().keys.len();
        net.fail(victim).unwrap();
        assert_eq!(net.total_keys(), 100 - lost);
    }

    #[test]
    fn lookup_survives_stale_fingers() {
        let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng(13));
        // Kill a quarter of the nodes without any repair.
        let ids = net.node_ids();
        for id in ids.iter().step_by(4) {
            net.fail(*id).unwrap();
        }
        let live = net.node_ids();
        let key = sha1_id_of_u64(5);
        let truth = net.owner_of(key).unwrap();
        let res = net.lookup(live[0], key).unwrap();
        assert_eq!(res.owner, truth);
    }

    #[test]
    fn single_node_lookup_is_trivial() {
        let mut net = Network::bootstrap(NetConfig::default(), 1, &mut rng(14));
        let id = net.node_ids()[0];
        let res = net.lookup(id, Id::from(123u64)).unwrap();
        assert_eq!(res.owner, id);
        assert_eq!(res.hops, 0);
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let id = Id::from(7u64);
        assert_eq!(
            NetworkError::EmptyNetwork.to_string(),
            "network has no live nodes"
        );
        assert!(NetworkError::DuplicateId(id)
            .to_string()
            .contains("duplicate"));
        assert!(NetworkError::UnknownNode(id)
            .to_string()
            .contains("unknown"));
        assert!(NetworkError::LookupFailed { hops: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NetworkError::EmptyNetwork);
    }

    #[test]
    fn config_default_values() {
        let c = NetConfig::default();
        assert_eq!(c.successor_list_len, 5);
        assert_eq!(c.predecessor_list_len, 5);
        assert_eq!(c.replication_factor, 5);
        assert!(c.max_lookup_hops >= 160);
    }

    #[test]
    fn join_through_dead_contact_errors() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x0dead);
        let mut net = Network::bootstrap(NetConfig::default(), 4, &mut rng);
        let ghost = Id::from(1u64);
        assert!(!net.contains(ghost));
        let newcomer = Id::from(2u64);
        assert_eq!(
            net.join(newcomer, ghost),
            Err(NetworkError::UnknownNode(ghost))
        );
    }

    #[test]
    fn owner_of_on_empty_network_is_none() {
        let net = Network::new(NetConfig::default());
        assert_eq!(net.owner_of(Id::from(5u64)), None);
        assert!(net.is_empty());
        assert!(net.is_consistent(), "vacuously consistent");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultPlan, Partition};
    use autobal_id::sha1::sha1_id_of_u64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn default_plan_changes_nothing() {
        // Identical seeds, one network with the (inert) plan explicitly
        // armed: every counter and every lookup must match bit-for-bit.
        let mut a = Network::bootstrap(NetConfig::default(), 32, &mut rng(50));
        let mut b = Network::bootstrap(NetConfig::default(), 32, &mut rng(50));
        b.set_fault_plan(FaultPlan::default());
        for k in 0..100u64 {
            a.insert_key(sha1_id_of_u64(k));
            b.insert_key(sha1_id_of_u64(k));
        }
        for _ in 0..3 {
            a.maintenance_cycle();
            b.maintenance_cycle();
        }
        let from_a = a.node_ids()[0];
        let from_b = b.node_ids()[0];
        for k in 0..50u64 {
            let key = sha1_id_of_u64(k);
            assert_eq!(a.lookup(from_a, key), b.lookup(from_b, key));
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stats.dropped, 0);
        assert_eq!(a.stats.retries, 0);
    }

    #[test]
    fn lossy_lookups_retry_and_mostly_succeed() {
        let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng(51));
        net.set_fault_plan(FaultPlan::lossy(9, 0.10));
        let from = net.node_ids()[0];
        let mut ok = 0;
        let mut timed_out = 0;
        for k in 0..200u64 {
            match net.lookup(from, sha1_id_of_u64(k)) {
                Ok(_) => ok += 1,
                Err(NetworkError::TimedOut { .. }) => timed_out += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // Per-hop drop probability after 3 attempts is 0.1^3 = 0.1%;
        // nearly everything resolves, and the plumbing bills its work.
        assert!(ok >= 190, "ok {ok}/200 at 10% loss with retries");
        assert_eq!(ok + timed_out, 200);
        assert!(net.stats.retries > 0, "losses triggered retries");
        assert!(net.stats.dropped > 0);
        assert_eq!(net.stats.timeouts, timed_out as u64);
    }

    #[test]
    fn partition_blocks_cross_cut_lookups_then_heals() {
        let mut net = Network::bootstrap(NetConfig::default(), 32, &mut rng(52));
        net.set_fault_plan(FaultPlan {
            partitions: vec![Partition { start: 5, end: 10 }],
            seed: 4,
            ..FaultPlan::default()
        });
        let ids = net.node_ids();
        // Find a pair on opposite sides of the cut.
        let (a, b) = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .find(|&(x, y)| net.faults.partitioned(5, x, y))
            .expect("some pair straddles the pivot");
        net.set_clock(5);
        assert!(net.partitioned(a, b));
        // A lookup from a for b's own id must cross the cut eventually.
        let r = net.lookup(a, b);
        assert!(
            matches!(r, Err(NetworkError::TimedOut { .. })),
            "cross-cut lookup fails during the window, got {r:?}"
        );
        net.set_clock(10);
        assert!(!net.partitioned(a, b));
        assert_eq!(net.lookup(a, b).unwrap().owner, b, "heals after window");
    }

    #[test]
    fn fail_report_separates_lost_from_recoverable() {
        let mut net = Network::bootstrap(NetConfig::default(), 16, &mut rng(53));
        for k in 0..120u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        // No maintenance yet: no replicas, everything on the victim is lost.
        let victim = net.node_ids()[2];
        let held = net.node(victim).unwrap().keys.len() as u64;
        let rep = net.fail(victim).unwrap();
        assert_eq!(rep.keys_lost, held);
        assert_eq!(rep.keys_recoverable, 0);
        assert_eq!(net.stats.keys_lost, held);

        // With replicas seeded, a crash loses nothing.
        net.maintenance_cycle();
        let victim2 = net.node_ids()[3];
        let held2 = net.node(victim2).unwrap().keys.len() as u64;
        let rep2 = net.fail(victim2).unwrap();
        assert_eq!(rep2.keys_lost, 0, "replicated keys are recoverable");
        assert_eq!(rep2.keys_recoverable, held2);
        assert_eq!(net.stats.keys_lost, held, "unchanged by covered crash");
        for _ in 0..3 {
            net.maintenance_cycle();
        }
        assert_eq!(net.total_keys() as u64, 120 - held);
    }

    #[test]
    fn rewire_rescues_keys_stranded_in_stale_replicas() {
        let mut net = Network::bootstrap(NetConfig::default(), 12, &mut rng(54));
        for k in 0..80u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle(); // seed replicas
        let victim = net.node_ids()[4];
        let held = net.node(victim).unwrap().keys.len() as u64;
        let rep = net.fail(victim).unwrap();
        assert_eq!(rep.keys_recoverable, held);
        // Ground-truth rewire instead of maintenance: the rescue must be
        // explicit, not an accident of promotion ordering.
        let rewire = net.rewire_ground_truth();
        assert_eq!(rewire.keys_rescued, held);
        assert!(rewire.stale_replicas_purged >= 1);
        assert_eq!(net.total_keys(), 80);
        assert!(net.is_consistent());
        // A second rewire finds nothing left to do.
        let again = net.rewire_ground_truth();
        assert_eq!(again, RewireReport::default());
    }

    #[test]
    fn join_with_retry_survives_a_lossy_ring() {
        let mut net = Network::bootstrap(NetConfig::default(), 24, &mut rng(55));
        net.set_fault_plan(FaultPlan::lossy(11, 0.15));
        let contact = net.node_ids()[0];
        let mut r = rng(56);
        let mut joined = 0;
        for _ in 0..20 {
            if net.join_with_retry(Id::random(&mut r), contact).is_ok() {
                joined += 1;
            }
        }
        assert!(joined >= 18, "joins with retry at 15% loss: {joined}/20");
    }

    #[test]
    fn maintenance_converges_under_loss_once_faults_subside() {
        let mut net = Network::bootstrap(NetConfig::default(), 40, &mut rng(57));
        for k in 0..200u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle();
        net.set_fault_plan(FaultPlan::lossy(13, 0.30));
        // Heavy loss plus a few crashes while maintenance keeps running.
        let mut r = rng(58);
        use rand::Rng;
        for _ in 0..6 {
            let ids = net.node_ids();
            let victim = ids[r.gen_range(0..ids.len())];
            net.fail(victim).unwrap();
            net.maintenance_cycle();
        }
        // Faults subside; the ring must converge and keep what the fault
        // plane did not explicitly bill as lost.
        net.set_fault_plan(FaultPlan::default());
        for _ in 0..20 {
            net.maintenance_cycle();
            if net.is_consistent() {
                break;
            }
        }
        assert!(net.is_consistent(), "ring reconverges after faults");
        assert_eq!(
            net.total_keys() as u64 + net.stats.keys_lost,
            200,
            "every key is either alive or explicitly billed lost"
        );
    }
}
