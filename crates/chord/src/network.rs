//! The simulated Chord network: node container, membership, key
//! placement, and iterative lookups with message accounting.

use crate::messages::{MessageKind, MessageStats};
use crate::node::Node;
use autobal_id::{ring, Id, ID_BITS};
use std::collections::BTreeMap;

/// Configuration knobs for the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Successor-list length (paper default: 5, also tested at 10).
    pub successor_list_len: usize,
    /// Predecessor-list length (paper: "nodes also keep track of the same
    /// number of predecessors").
    pub predecessor_list_len: usize,
    /// How many successors receive active backups of a node's keys.
    pub replication_factor: usize,
    /// Fingers fixed per node per maintenance cycle.
    pub fingers_per_cycle: usize,
    /// Abort threshold for a single lookup (routing loop safety valve).
    pub max_lookup_hops: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            successor_list_len: 5,
            predecessor_list_len: 5,
            replication_factor: 5,
            fingers_per_cycle: 16,
            max_lookup_hops: 512,
        }
    }
}

/// Errors surfaced by network operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkError {
    /// Operation requires at least one live node.
    EmptyNetwork,
    /// A node with this id already exists.
    DuplicateId(Id),
    /// The referenced node is not in the network.
    UnknownNode(Id),
    /// Routing did not converge within `max_lookup_hops`.
    LookupFailed { hops: u32 },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::EmptyNetwork => write!(f, "network has no live nodes"),
            NetworkError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            NetworkError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetworkError::LookupFailed { hops } => {
                write!(f, "lookup failed to converge after {hops} hops")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Outcome of an iterative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// The node responsible for the key.
    pub owner: Id,
    /// Routing hops taken (0 when the starting node already knows).
    pub hops: u32,
    /// The nodes visited, starting node first.
    pub path: Vec<Id>,
}

/// A whole simulated Chord overlay.
///
/// Nodes are owned by the network and communicate through it; every
/// simulated RPC bumps [`Network::stats`].
#[derive(Debug, Clone)]
pub struct Network {
    pub(crate) cfg: NetConfig,
    pub(crate) nodes: BTreeMap<Id, Node>,
    /// Message counters for the lifetime of the network.
    pub stats: MessageStats,
}

impl Network {
    /// Creates an empty network.
    pub fn new(cfg: NetConfig) -> Network {
        Network {
            cfg,
            nodes: BTreeMap::new(),
            stats: MessageStats::new(),
        }
    }

    /// Creates a network of `n` nodes with uniformly random IDs and a
    /// fully stabilized ring (correct successor/predecessor lists and
    /// finger tables). This models the paper's assumption that "the
    /// network starts our experiments stable".
    pub fn bootstrap<R: rand::Rng + ?Sized>(cfg: NetConfig, n: usize, rng: &mut R) -> Network {
        let mut ids = Vec::with_capacity(n);
        let mut net = Network::new(cfg);
        while ids.len() < n {
            let id = Id::random(rng);
            if let std::collections::btree_map::Entry::Vacant(e) = net.nodes.entry(id) {
                e.insert(Node::solo(id));
                ids.push(id);
            }
        }
        net.rewire_ground_truth();
        net
    }

    /// Creates a fully stabilized network from explicit ids (used for
    /// evenly-spaced rings and deterministic tests). Duplicate ids error.
    pub fn from_ids(cfg: NetConfig, ids: &[Id]) -> Result<Network, NetworkError> {
        let mut net = Network::new(cfg);
        for &id in ids {
            if net.nodes.insert(id, Node::solo(id)).is_some() {
                return Err(NetworkError::DuplicateId(id));
            }
        }
        net.rewire_ground_truth();
        Ok(net)
    }

    /// The configuration this network runs with.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All live node ids in ring (ascending) order.
    pub fn node_ids(&self) -> Vec<Id> {
        self.nodes.keys().copied().collect()
    }

    /// Immutable access to one node's state.
    pub fn node(&self, id: Id) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Mutable access (tests and strategies that tweak state directly).
    pub fn node_mut(&mut self, id: Id) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// Ground-truth owner of `key`: the first live node clockwise from
    /// the key (the BTreeMap oracle, *not* a protocol message).
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(key..)
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.nodes.keys().next().copied())
    }

    /// Ground-truth successor of an id, excluding the id itself.
    pub(crate) fn truth_successor(&self, id: Id) -> Option<Id> {
        if self.nodes.len() < 2 && self.nodes.contains_key(&id) {
            return Some(id);
        }
        let after = self
            .nodes
            .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
            .next()
            .map(|(i, _)| *i);
        after.or_else(|| self.nodes.keys().next().copied())
    }

    /// Ground-truth predecessor of an id, excluding the id itself.
    pub(crate) fn truth_predecessor(&self, id: Id) -> Option<Id> {
        if self.nodes.len() < 2 && self.nodes.contains_key(&id) {
            return Some(id);
        }
        let before = self.nodes.range(..id).next_back().map(|(i, _)| *i);
        before.or_else(|| self.nodes.keys().next_back().copied())
    }

    /// Stores a key on its ground-truth owner. Returns the owner.
    ///
    /// # Panics
    /// Panics if the network is empty.
    pub fn insert_key(&mut self, key: Id) -> Id {
        let owner = self.owner_of(key).expect("insert_key on empty network");
        self.nodes.get_mut(&owner).unwrap().keys.insert(key);
        owner
    }

    /// Total number of primary-copy keys across all nodes.
    pub fn total_keys(&self) -> usize {
        self.nodes.values().map(|n| n.keys.len()).sum()
    }

    /// Workload (key count) per node, in ring order.
    pub fn loads(&self) -> Vec<u64> {
        self.nodes.values().map(|n| n.keys.len() as u64).collect()
    }

    /// Iterative Chord lookup from node `from` for `key`, using only
    /// node-local routing state. Dead references encountered en route are
    /// lazily repaired (timeout → forget), exactly like a real deployment.
    pub fn lookup(&mut self, from: Id, key: Id) -> Result<LookupResult, NetworkError> {
        if !self.nodes.contains_key(&from) {
            return Err(NetworkError::UnknownNode(from));
        }
        let mut cur = from;
        let mut hops = 0u32;
        let mut path = vec![cur];
        loop {
            if hops as usize > self.cfg.max_lookup_hops {
                return Err(NetworkError::LookupFailed { hops });
            }
            let node = &self.nodes[&cur];
            // Does the current node already own the key?
            if node.owns(key) && self.nodes.contains_key(&node.predecessor()) {
                return Ok(LookupResult {
                    owner: cur,
                    hops,
                    path,
                });
            }
            let succ = node.successor();
            // Key between cur and its live successor → successor owns it.
            if self.nodes.contains_key(&succ) && ring::in_arc(cur, succ, key) {
                self.stats.record(MessageKind::FindSuccessorHop);
                hops += 1;
                path.push(succ);
                return Ok(LookupResult {
                    owner: succ,
                    hops,
                    path,
                });
            }
            // Otherwise route through the closest preceding live entry.
            let next = {
                let node = &self.nodes[&cur];
                let mut candidate = node.closest_preceding(key);
                // Skip dead candidates, forgetting them as we go.
                loop {
                    match candidate {
                        Some(c) if self.nodes.contains_key(&c) => break Some(c),
                        Some(c) => {
                            self.stats.record(MessageKind::Ping);
                            let n = self.nodes.get_mut(&cur).unwrap();
                            n.forget(c);
                            candidate = n.closest_preceding(key);
                        }
                        None => break None,
                    }
                }
            };
            match next {
                Some(n) if n != cur => {
                    self.stats.record(MessageKind::FindSuccessorHop);
                    hops += 1;
                    path.push(n);
                    cur = n;
                }
                _ => {
                    // No better candidate: fall to the live successor.
                    let succ = self.first_live_successor(cur);
                    match succ {
                        Some(s) if s != cur => {
                            self.stats.record(MessageKind::FindSuccessorHop);
                            hops += 1;
                            path.push(s);
                            cur = s;
                        }
                        _ => {
                            // Alone in the ring (or fully partitioned):
                            // current node is the owner by default.
                            return Ok(LookupResult {
                                owner: cur,
                                hops,
                                path,
                            });
                        }
                    }
                }
            }
        }
    }

    /// First entry of `id`'s successor list that is still alive, pruning
    /// dead ones (each probe counts as a ping).
    pub(crate) fn first_live_successor(&mut self, id: Id) -> Option<Id> {
        loop {
            let cand = self.nodes.get(&id)?.successors.first().copied()?;
            if cand == id {
                return Some(id);
            }
            if self.nodes.contains_key(&cand) {
                return Some(cand);
            }
            self.stats.record(MessageKind::Ping);
            self.nodes.get_mut(&id).unwrap().forget(cand);
            if self.nodes.get(&id)?.successors.is_empty() {
                return None;
            }
        }
    }

    /// A new node joins through `contact`. Performs the Chord join
    /// protocol: lookup of the new id, key handoff from the successor,
    /// and immediate linking of the neighbor pointers (the paper cites
    /// \[21\] for nodes joining "extremely quickly"; subsequent maintenance
    /// cycles rebuild fingers and lists incrementally).
    pub fn join(&mut self, new_id: Id, contact: Id) -> Result<(), NetworkError> {
        if self.nodes.contains_key(&new_id) {
            return Err(NetworkError::DuplicateId(new_id));
        }
        if self.nodes.is_empty() {
            self.nodes.insert(new_id, Node::solo(new_id));
            return Ok(());
        }
        if !self.nodes.contains_key(&contact) {
            return Err(NetworkError::UnknownNode(contact));
        }

        let succ_id = self.lookup(contact, new_id)?.owner;
        let pred_id = self
            .nodes
            .get(&succ_id)
            .map(|s| s.predecessor())
            .filter(|p| self.nodes.contains_key(p))
            .unwrap_or_else(|| self.truth_predecessor(succ_id).unwrap());

        // Take over keys in (pred, new_id] from the successor, values
        // included.
        let succ = self.nodes.get_mut(&succ_id).unwrap();
        let moved: Vec<Id> = succ
            .keys
            .iter()
            .copied()
            .filter(|&k| !ring::in_arc(new_id, succ_id, k))
            .collect();
        let mut moved_values = std::collections::BTreeMap::new();
        for k in &moved {
            succ.keys.remove(k);
            if let Some(v) = succ.store.remove(k) {
                moved_values.insert(*k, v);
            }
        }
        self.stats
            .record_n(MessageKind::KeyTransfer, moved.len().max(1) as u64);

        // Build the new node.
        let mut node = Node::solo(new_id);
        node.successors = {
            let succ = &self.nodes[&succ_id];
            let mut list = vec![succ_id];
            list.extend(succ.successors.iter().copied().filter(|&s| s != new_id));
            list.truncate(self.cfg.successor_list_len);
            list
        };
        node.predecessors = {
            let pred = &self.nodes[&pred_id];
            let mut list = vec![pred_id];
            list.extend(pred.predecessors.iter().copied().filter(|&p| p != new_id));
            list.truncate(self.cfg.predecessor_list_len);
            list
        };
        node.keys = moved.into_iter().collect();
        node.store = moved_values;
        self.nodes.insert(new_id, node);

        // Link the neighbors to us.
        let slen = self.cfg.successor_list_len;
        let plen = self.cfg.predecessor_list_len;
        if let Some(p) = self.nodes.get_mut(&pred_id) {
            p.successors.retain(|&s| s != new_id);
            p.successors.insert(0, new_id);
            p.successors.truncate(slen);
        }
        if let Some(s) = self.nodes.get_mut(&succ_id) {
            s.predecessors.retain(|&q| q != new_id);
            s.predecessors.insert(0, new_id);
            s.predecessors.truncate(plen);
        }
        self.stats.record(MessageKind::Notify);
        Ok(())
    }

    /// Graceful departure: keys are handed to the successor, neighbors
    /// are relinked, and the node is removed.
    pub fn leave(&mut self, id: Id) -> Result<(), NetworkError> {
        if !self.nodes.contains_key(&id) {
            return Err(NetworkError::UnknownNode(id));
        }
        if self.nodes.len() == 1 {
            self.nodes.remove(&id);
            return Ok(());
        }
        let succ_id = self.truth_successor(id).unwrap();
        let pred_id = self.truth_predecessor(id).unwrap();

        let node = self.nodes.remove(&id).unwrap();
        let keys = node.keys;
        let store = node.store;
        self.stats
            .record_n(MessageKind::KeyTransfer, keys.len().max(1) as u64);
        let succ = self.nodes.get_mut(&succ_id).unwrap();
        succ.keys.extend(keys);
        succ.store.extend(store);
        succ.forget(id);
        succ.predecessors.retain(|&p| p != pred_id);
        succ.predecessors.insert(0, pred_id);
        succ.predecessors.truncate(self.cfg.predecessor_list_len);

        let slen = self.cfg.successor_list_len;
        let pred = self.nodes.get_mut(&pred_id).unwrap();
        pred.forget(id);
        pred.successors.retain(|&s| s != succ_id);
        pred.successors.insert(0, succ_id);
        pred.successors.truncate(slen);
        self.stats.record(MessageKind::Notify);
        Ok(())
    }

    /// Abrupt failure: the node vanishes without handing anything off.
    /// Its primary keys are gone until replicas are promoted by the next
    /// maintenance cycle.
    pub fn fail(&mut self, id: Id) -> Result<(), NetworkError> {
        self.nodes
            .remove(&id)
            .map(|_| ())
            .ok_or(NetworkError::UnknownNode(id))
    }

    /// Rebuilds every node's successor/predecessor lists and finger
    /// tables from ground truth — the "perfectly stabilized" state.
    pub fn rewire_ground_truth(&mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        let n = ids.len();
        if n == 0 {
            return;
        }
        for (i, &id) in ids.iter().enumerate() {
            let mut successors = Vec::with_capacity(self.cfg.successor_list_len);
            for k in 1..=self.cfg.successor_list_len.min(n.saturating_sub(1).max(1)) {
                successors.push(ids[(i + k) % n]);
            }
            if successors.is_empty() {
                successors.push(id);
            }
            let mut predecessors = Vec::with_capacity(self.cfg.predecessor_list_len);
            for k in 1..=self
                .cfg
                .predecessor_list_len
                .min(n.saturating_sub(1).max(1))
            {
                predecessors.push(ids[(i + n - k % n) % n]);
            }
            if predecessors.is_empty() {
                predecessors.push(id);
            }
            let mut fingers = vec![None; ID_BITS as usize];
            for (k, f) in fingers.iter_mut().enumerate() {
                let target = id.wrapping_add(Id::pow2(k as u32));
                *f = self.owner_of_in(&ids, target);
            }
            let node = self.nodes.get_mut(&id).unwrap();
            node.successors = successors;
            node.predecessors = predecessors;
            node.fingers = fingers;
        }
    }

    /// Owner lookup against a sorted id slice (helper for rewiring).
    fn owner_of_in(&self, sorted: &[Id], key: Id) -> Option<Id> {
        if sorted.is_empty() {
            return None;
        }
        match sorted.binary_search(&key) {
            Ok(i) => Some(sorted[i]),
            Err(i) if i < sorted.len() => Some(sorted[i]),
            Err(_) => Some(sorted[0]),
        }
    }

    /// Checks that every node's immediate successor and predecessor agree
    /// with ground truth and every key sits on its rightful owner.
    pub fn is_consistent(&self) -> bool {
        for (&id, node) in &self.nodes {
            if node.successor() != self.truth_successor(id).unwrap_or(id) {
                return false;
            }
            if node.predecessor() != self.truth_predecessor(id).unwrap_or(id) {
                return false;
            }
            for &k in &node.keys {
                if self.owner_of(k) != Some(id) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_id::sha1::sha1_id_of_u64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn bootstrap_is_consistent() {
        let net = Network::bootstrap(NetConfig::default(), 50, &mut rng(1));
        assert_eq!(net.len(), 50);
        assert!(net.is_consistent());
    }

    #[test]
    fn bootstrap_single_node() {
        let net = Network::bootstrap(NetConfig::default(), 1, &mut rng(2));
        let id = net.node_ids()[0];
        let n = net.node(id).unwrap();
        assert_eq!(n.successor(), id);
        assert_eq!(n.predecessor(), id);
        assert!(net.is_consistent());
    }

    #[test]
    fn from_ids_rejects_duplicates() {
        let a = Id::from(5u64);
        assert!(matches!(
            Network::from_ids(NetConfig::default(), &[a, a]),
            Err(NetworkError::DuplicateId(_))
        ));
    }

    #[test]
    fn owner_of_wraps_around() {
        let ids = [Id::from(100u64), Id::from(200u64)];
        let net = Network::from_ids(NetConfig::default(), &ids).unwrap();
        assert_eq!(net.owner_of(Id::from(150u64)), Some(Id::from(200u64)));
        assert_eq!(net.owner_of(Id::from(250u64)), Some(Id::from(100u64)));
        assert_eq!(net.owner_of(Id::from(100u64)), Some(Id::from(100u64)));
        assert_eq!(net.owner_of(Id::from(50u64)), Some(Id::from(100u64)));
    }

    #[test]
    fn insert_key_lands_on_owner() {
        let mut net = Network::bootstrap(NetConfig::default(), 20, &mut rng(3));
        for k in 0..200u64 {
            let key = sha1_id_of_u64(k);
            let owner = net.insert_key(key);
            assert_eq!(net.owner_of(key), Some(owner));
            assert!(net.node(owner).unwrap().keys.contains(&key));
        }
        assert_eq!(net.total_keys(), 200);
        assert!(net.is_consistent());
    }

    #[test]
    fn lookup_finds_owner_from_every_node() {
        let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng(4));
        let key = sha1_id_of_u64(999);
        let truth = net.owner_of(key).unwrap();
        for from in net.node_ids() {
            let res = net.lookup(from, key).unwrap();
            assert_eq!(res.owner, truth, "from {from}");
            assert_eq!(res.path.first(), Some(&from));
            assert_eq!(res.path.last(), Some(&res.owner));
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let mut net = Network::bootstrap(NetConfig::default(), 256, &mut rng(5));
        let ids = net.node_ids();
        let mut total_hops = 0u64;
        let mut lookups = 0u64;
        for k in 0..200u64 {
            let key = sha1_id_of_u64(k);
            let from = ids[(k as usize * 37) % ids.len()];
            let res = net.lookup(from, key).unwrap();
            total_hops += res.hops as u64;
            lookups += 1;
        }
        let avg = total_hops as f64 / lookups as f64;
        // Expected ≈ ½ log2 256 = 4; allow generous slack.
        assert!(avg < 8.0, "average hops {avg}");
        assert!(avg > 1.0, "suspiciously fast: {avg}");
    }

    #[test]
    fn lookup_from_unknown_node_errors() {
        let mut net = Network::bootstrap(NetConfig::default(), 4, &mut rng(6));
        let bogus = Id::from(1u64);
        assert!(!net.nodes.contains_key(&bogus));
        assert_eq!(
            net.lookup(bogus, Id::from(2u64)),
            Err(NetworkError::UnknownNode(bogus))
        );
    }

    #[test]
    fn join_takes_over_key_range() {
        let ids = [Id::from(1000u64), Id::from(2000u64)];
        let mut net = Network::from_ids(NetConfig::default(), &ids).unwrap();
        // Keys 1500 and 1800 belong to 2000.
        net.insert_key(Id::from(1500u64));
        net.insert_key(Id::from(1800u64));
        // A node at 1600 takes over (1000, 1600]: key 1500.
        net.join(Id::from(1600u64), ids[0]).unwrap();
        let newcomer = net.node(Id::from(1600u64)).unwrap();
        assert!(newcomer.keys.contains(&Id::from(1500u64)));
        assert!(!newcomer.keys.contains(&Id::from(1800u64)));
        let old = net.node(Id::from(2000u64)).unwrap();
        assert!(old.keys.contains(&Id::from(1800u64)));
        assert!(net.is_consistent());
    }

    #[test]
    fn join_into_empty_network() {
        let mut net = Network::new(NetConfig::default());
        net.join(Id::from(42u64), Id::from(42u64)).unwrap();
        assert_eq!(net.len(), 1);
        assert!(net.is_consistent());
    }

    #[test]
    fn join_duplicate_errors() {
        let mut net = Network::bootstrap(NetConfig::default(), 3, &mut rng(7));
        let existing = net.node_ids()[0];
        assert_eq!(
            net.join(existing, existing),
            Err(NetworkError::DuplicateId(existing))
        );
    }

    #[test]
    fn many_joins_preserve_consistency_and_keys() {
        let mut net = Network::bootstrap(NetConfig::default(), 8, &mut rng(8));
        for k in 0..300u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        let contact = net.node_ids()[0];
        let mut r = rng(9);
        for _ in 0..32 {
            let id = Id::random(&mut r);
            net.join(id, contact).unwrap();
        }
        assert_eq!(net.len(), 40);
        assert_eq!(net.total_keys(), 300);
        assert!(net.is_consistent());
    }

    #[test]
    fn graceful_leave_hands_keys_to_successor() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(10));
        for k in 0..100u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        let victim = net.node_ids()[3];
        let succ = net.truth_successor(victim).unwrap();
        let expected = net.node(victim).unwrap().keys.len() + net.node(succ).unwrap().keys.len();
        net.leave(victim).unwrap();
        assert_eq!(net.node(succ).unwrap().keys.len(), expected);
        assert_eq!(net.total_keys(), 100);
        assert!(net.is_consistent());
    }

    #[test]
    fn leave_last_node_empties_network() {
        let mut net = Network::bootstrap(NetConfig::default(), 1, &mut rng(11));
        let id = net.node_ids()[0];
        net.leave(id).unwrap();
        assert!(net.is_empty());
        assert_eq!(net.leave(id), Err(NetworkError::UnknownNode(id)));
    }

    #[test]
    fn fail_drops_primary_keys() {
        let mut net = Network::bootstrap(NetConfig::default(), 10, &mut rng(12));
        for k in 0..100u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        let victim = net.node_ids()[0];
        let lost = net.node(victim).unwrap().keys.len();
        net.fail(victim).unwrap();
        assert_eq!(net.total_keys(), 100 - lost);
    }

    #[test]
    fn lookup_survives_stale_fingers() {
        let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng(13));
        // Kill a quarter of the nodes without any repair.
        let ids = net.node_ids();
        for id in ids.iter().step_by(4) {
            net.fail(*id).unwrap();
        }
        let live = net.node_ids();
        let key = sha1_id_of_u64(5);
        let truth = net.owner_of(key).unwrap();
        let res = net.lookup(live[0], key).unwrap();
        assert_eq!(res.owner, truth);
    }

    #[test]
    fn single_node_lookup_is_trivial() {
        let mut net = Network::bootstrap(NetConfig::default(), 1, &mut rng(14));
        let id = net.node_ids()[0];
        let res = net.lookup(id, Id::from(123u64)).unwrap();
        assert_eq!(res.owner, id);
        assert_eq!(res.hops, 0);
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let id = Id::from(7u64);
        assert_eq!(
            NetworkError::EmptyNetwork.to_string(),
            "network has no live nodes"
        );
        assert!(NetworkError::DuplicateId(id)
            .to_string()
            .contains("duplicate"));
        assert!(NetworkError::UnknownNode(id)
            .to_string()
            .contains("unknown"));
        assert!(NetworkError::LookupFailed { hops: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NetworkError::EmptyNetwork);
    }

    #[test]
    fn config_default_values() {
        let c = NetConfig::default();
        assert_eq!(c.successor_list_len, 5);
        assert_eq!(c.predecessor_list_len, 5);
        assert_eq!(c.replication_factor, 5);
        assert!(c.max_lookup_hops >= 160);
    }

    #[test]
    fn join_through_dead_contact_errors() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x0dead);
        let mut net = Network::bootstrap(NetConfig::default(), 4, &mut rng);
        let ghost = Id::from(1u64);
        assert!(!net.contains(ghost));
        let newcomer = Id::from(2u64);
        assert_eq!(
            net.join(newcomer, ghost),
            Err(NetworkError::UnknownNode(ghost))
        );
    }

    #[test]
    fn owner_of_on_empty_network_is_none() {
        let net = Network::new(NetConfig::default());
        assert_eq!(net.owner_of(Id::from(5u64)), None);
        assert!(net.is_empty());
        assert!(net.is_consistent(), "vacuously consistent");
    }
}
