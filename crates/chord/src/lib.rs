//! # autobal-chord
//!
//! A from-scratch **Chord** distributed-hash-table substrate
//! (Stoica et al., SIGCOMM 2001), the overlay the paper runs its
//! load-balancing strategies on.
//!
//! The implementation is protocol-faithful but runs inside a single
//! process: a [`Network`] owns every [`Node`], delivers "RPCs"
//! synchronously, and counts every message so the paper's bandwidth
//! arguments (invitation < neighbor < smart-neighbor < random injection)
//! can be measured rather than asserted.
//!
//! What is implemented:
//!
//! * **Routing** — 160-entry finger tables, iterative
//!   `find_successor` with hop counting (`O(log n)` hops with high
//!   probability; the `chord_micro` bench checks ≈ ½·log₂ n).
//! * **Membership** — `join` through a bootstrap node, graceful `leave`
//!   with key handoff, abrupt `fail` with recovery.
//! * **Maintenance** — `stabilize` + `notify`, successor-list repair,
//!   predecessor tracking, incremental `fix_fingers`; one
//!   [`Network::maintenance_cycle`] is the paper's "tick worth" of
//!   upkeep.
//! * **Replication** — the ChordReduce *active backup* assumption: every
//!   node pushes its key set to its `replication_factor` successors each
//!   cycle, so a failing node loses nothing once a cycle has run.
//! * **Key-value API** — `put`/`get`/`remove` with values that ride the
//!   same handoff and replication machinery (see [`kv`]).
//!
//! ```
//! use autobal_chord::{Network, NetConfig};
//! use autobal_id::sha1::sha1_id_of_u64;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let mut net = Network::bootstrap(NetConfig::default(), 32, &mut rng);
//! for k in 0..100 {
//!     net.insert_key(sha1_id_of_u64(k));
//! }
//! let some_node = net.node_ids()[0];
//! let res = net.lookup(some_node, sha1_id_of_u64(5)).unwrap();
//! assert_eq!(res.owner, net.owner_of(sha1_id_of_u64(5)).unwrap());
//! ```

pub mod adversary;
pub mod eventnet;
pub mod fault;
pub mod kv;
pub mod maintenance;
pub mod messages;
pub mod network;
pub mod node;
pub mod routing;

pub use adversary::{AdversaryPlan, AdversaryState, LiePolicy};
pub use eventnet::{AppEvent, AppMsg, AsyncLookup, EventConfig, EventNet};
pub use fault::{CrashEvent, FaultPlan, FaultState, Partition};
pub use messages::{MessageKind, MessageStats};
pub use network::{FailReport, LookupResult, NetConfig, Network, NetworkError, RewireReport};
pub use node::Node;
