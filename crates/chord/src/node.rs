//! Per-node Chord state.

use autobal_id::{ring, Id, ID_BITS};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet};

/// The local state of one Chord participant.
///
/// A node only ever *reads* its own fields; learning about other nodes
/// happens through the [`crate::Network`]'s message-counted RPCs, which
/// keeps the implementation honest about what is local knowledge — the
/// property the paper's strategies depend on.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's ring identifier.
    pub id: Id,
    /// Successor list, nearest first. `successors[0]` is *the* successor.
    pub successors: Vec<Id>,
    /// Predecessor list, nearest (counter-clockwise) first.
    pub predecessors: Vec<Id>,
    /// Finger table: `fingers[k]` routes toward `id + 2^k`. Entries are
    /// `None` until `fix_fingers` resolves them.
    pub fingers: Vec<Option<Id>>,
    /// Keys this node is primary owner of.
    pub keys: BTreeSet<Id>,
    /// Values for keys that carry data (the key-value API); keys used
    /// purely as task markers have no entry here.
    pub store: BTreeMap<Id, Bytes>,
    /// Active backups: owner id → that owner's key set as of the last
    /// replica push received.
    pub replicas: BTreeMap<Id, BTreeSet<Id>>,
    /// Value backups mirroring [`Node::replicas`].
    pub replica_store: BTreeMap<Id, BTreeMap<Id, Bytes>>,
    /// Next finger index to fix (incremental `fix_fingers` cursor).
    pub next_finger: usize,
}

impl Node {
    /// Creates a node that believes it is alone in the ring.
    pub fn solo(id: Id) -> Node {
        Node {
            id,
            successors: vec![id],
            predecessors: vec![id],
            fingers: vec![None; ID_BITS as usize],
            keys: BTreeSet::new(),
            store: BTreeMap::new(),
            replicas: BTreeMap::new(),
            replica_store: BTreeMap::new(),
            next_finger: 0,
        }
    }

    /// The immediate successor (self when alone).
    pub fn successor(&self) -> Id {
        self.successors.first().copied().unwrap_or(self.id)
    }

    /// The immediate predecessor (self when alone).
    pub fn predecessor(&self) -> Id {
        self.predecessors.first().copied().unwrap_or(self.id)
    }

    /// Number of keys this node currently owns.
    pub fn load(&self) -> usize {
        self.keys.len()
    }

    /// Whether `key` falls in this node's responsibility arc
    /// `(predecessor, id]`.
    pub fn owns(&self, key: Id) -> bool {
        ring::in_arc(self.predecessor(), self.id, key)
    }

    /// The finger target `id + 2^k`.
    pub fn finger_target(&self, k: usize) -> Id {
        self.id.wrapping_add(Id::pow2(k as u32))
    }

    /// The best local routing candidate strictly between `self.id` and
    /// `key`: scans fingers (longest first) then the successor list.
    /// Returns `None` when no local entry improves on the successor.
    pub fn closest_preceding(&self, key: Id) -> Option<Id> {
        for f in self.fingers.iter().rev().flatten() {
            if ring::in_open_arc(self.id, key, *f) {
                return Some(*f);
            }
        }
        for s in self.successors.iter().rev() {
            if ring::in_open_arc(self.id, key, *s) {
                return Some(*s);
            }
        }
        None
    }

    /// Removes every reference to `dead` from routing state (lazy failure
    /// repair). Returns `true` if anything changed.
    pub fn forget(&mut self, dead: Id) -> bool {
        let mut changed = false;
        let before = self.successors.len();
        self.successors.retain(|&s| s != dead);
        changed |= self.successors.len() != before;
        let before = self.predecessors.len();
        self.predecessors.retain(|&p| p != dead);
        changed |= self.predecessors.len() != before;
        for f in self.fingers.iter_mut() {
            if *f == Some(dead) {
                *f = None;
                changed = true;
            }
        }
        changed
    }

    /// The largest gap (clockwise arc) between consecutive entries of the
    /// successor list, including the arc from `self` to the first
    /// successor. Returns the `(from, to)` pair bounding the widest gap.
    /// This is the *estimate* the plain neighbor-injection strategy uses.
    pub fn widest_successor_gap(&self) -> Option<(Id, Id)> {
        if self.successors.is_empty() || self.successors[0] == self.id {
            return None;
        }
        let mut hops: Vec<Id> = Vec::with_capacity(self.successors.len() + 1);
        hops.push(self.id);
        hops.extend(self.successors.iter().copied());
        let mut best: Option<(Id, Id)> = None;
        let mut best_len = Id::ZERO;
        for w in hops.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                continue;
            }
            let len = ring::distance(a, b);
            if len > best_len {
                best_len = len;
                best = Some((a, b));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::from(v)
    }

    #[test]
    fn solo_node_owns_everything() {
        let n = Node::solo(id(100));
        assert_eq!(n.successor(), id(100));
        assert_eq!(n.predecessor(), id(100));
        assert!(n.owns(id(0)));
        assert!(n.owns(id(100)));
        assert!(n.owns(Id::MAX));
    }

    #[test]
    fn ownership_follows_predecessor_arc() {
        let mut n = Node::solo(id(100));
        n.predecessors = vec![id(50)];
        assert!(n.owns(id(51)));
        assert!(n.owns(id(100)));
        assert!(!n.owns(id(50)));
        assert!(!n.owns(id(101)));
    }

    #[test]
    fn finger_targets_are_power_offsets() {
        let n = Node::solo(id(10));
        assert_eq!(n.finger_target(0), id(11));
        assert_eq!(n.finger_target(4), id(26));
    }

    #[test]
    fn closest_preceding_prefers_far_fingers() {
        let mut n = Node::solo(id(0));
        n.successors = vec![id(10)];
        n.fingers[3] = Some(id(8)); // id+8
        n.fingers[6] = Some(id(64)); // id+64
                                     // Routing toward 100: the 64-finger precedes it and beats 8.
        assert_eq!(n.closest_preceding(id(100)), Some(id(64)));
        // Routing toward 50: 64 is past it, so the 8-finger wins.
        assert_eq!(n.closest_preceding(id(50)), Some(id(8)));
    }

    #[test]
    fn closest_preceding_falls_back_to_successors() {
        let mut n = Node::solo(id(0));
        n.successors = vec![id(5), id(9)];
        assert_eq!(n.closest_preceding(id(100)), Some(id(9)));
        assert_eq!(n.closest_preceding(id(7)), Some(id(5)));
        // Nothing precedes 3.
        assert_eq!(n.closest_preceding(id(3)), None);
    }

    #[test]
    fn forget_scrubs_all_references() {
        let mut n = Node::solo(id(0));
        n.successors = vec![id(5), id(9)];
        n.predecessors = vec![id(200), id(150)];
        n.fingers[2] = Some(id(5));
        assert!(n.forget(id(5)));
        assert_eq!(n.successors, vec![id(9)]);
        assert_eq!(n.fingers[2], None);
        assert!(n.forget(id(200)));
        assert_eq!(n.predecessors, vec![id(150)]);
        assert!(!n.forget(id(5)));
    }

    #[test]
    fn widest_gap_spots_the_big_hole() {
        let mut n = Node::solo(id(0));
        n.successors = vec![id(10), id(20), id(1000)];
        let (a, b) = n.widest_successor_gap().unwrap();
        assert_eq!((a, b), (id(20), id(1000)));
    }

    #[test]
    fn widest_gap_includes_self_to_first() {
        let mut n = Node::solo(id(0));
        n.successors = vec![id(500), id(510)];
        let (a, b) = n.widest_successor_gap().unwrap();
        assert_eq!((a, b), (id(0), id(500)));
    }

    #[test]
    fn widest_gap_none_when_alone() {
        let n = Node::solo(id(7));
        assert!(n.widest_successor_gap().is_none());
    }
}
