//! The Byzantine adversary plane: deterministic lying load reports.
//!
//! An [`AdversaryPlan`] is pure configuration — which fraction of the
//! initial worker population is Byzantine and how those workers lie
//! when asked for their load. An [`AdversaryState`] is the plan armed
//! for a run: a dedicated ChaCha stream (seeded like the fault stream,
//! `seed ^ ADVERSARY_SALT`) is consumed **once, at construction**, to
//! pick the liar set; answering a query draws nothing. Lies are a pure
//! function of `(plan, worker, true_load, now)`, so the same query
//! answered on the synchronous tick shim and on the event wire distorts
//! to the same value — that is what keeps the degenerate-parity pins
//! valid with an *active* adversary, and what makes an inert plan
//! (`AdversaryPlan::default()`) bit-for-bit invisible: a zero fraction
//! selects no liars and draws nothing at all.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// Salt XOR-ed into the plan seed so the adversary stream can never
/// collide with the fault stream (`0xFA17_FA17`) under equal seeds.
const ADVERSARY_SALT: u64 = 0xBAD1_E5B0;

/// How a Byzantine worker distorts its reported load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LiePolicy {
    /// Report a fraction of the true load (`true / gain`) — the worker
    /// looks idle, attracting Sybils and invitations it then wastes.
    #[default]
    UnderReport,
    /// Report a multiple of the true load (`true * gain + gain`) — the
    /// worker looks swamped, repelling help it actually needs and
    /// pushing it toward honest neighbors.
    OverReport,
    /// Report a pseudo-random distortion derived by hashing
    /// `(seed, worker, now)` — no stream draws, so replays are exact.
    RandomNoise,
    /// Alternate under/over by the parity of `now` — targeted
    /// flip-flopping that defeats single-sample smoothing.
    FlipFlop,
}

/// Declarative description of who lies and how.
///
/// The default plan is fully inert: fraction zero marks nobody
/// Byzantine, the construction-time RNG draws nothing, and every load
/// reply is truthful — a run carrying the default plan is bit-for-bit
/// identical to one built before the adversary plane existed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdversaryPlan {
    /// Seed for the liar-selection draw (and the `RandomNoise` hash).
    #[cfg_attr(feature = "serde", serde(default))]
    pub seed: u64,
    /// Fraction of the initial worker population that lies, in [0, 1].
    /// `ceil(fraction * workers)` liars are selected when positive.
    #[cfg_attr(feature = "serde", serde(default))]
    pub fraction: f64,
    /// The distortion every liar applies.
    #[cfg_attr(feature = "serde", serde(default))]
    pub policy: LiePolicy,
    /// Distortion strength: divisor for under-reporting, multiplier for
    /// over-reporting, spread bound for noise. Must be ≥ 1.
    #[cfg_attr(feature = "serde", serde(default = "default_gain"))]
    pub gain: u64,
}

fn default_gain() -> u64 {
    4
}

impl Default for AdversaryPlan {
    fn default() -> AdversaryPlan {
        AdversaryPlan {
            seed: 0,
            fraction: 0.0,
            policy: LiePolicy::UnderReport,
            gain: 4,
        }
    }
}

impl AdversaryPlan {
    /// A plan marking `fraction` of workers as liars under `policy`.
    pub fn lying(seed: u64, fraction: f64, policy: LiePolicy) -> AdversaryPlan {
        AdversaryPlan {
            seed,
            fraction,
            policy,
            ..AdversaryPlan::default()
        }
    }

    /// True when the plan can affect a run at all.
    pub fn is_active(&self) -> bool {
        self.fraction > 0.0
    }

    /// Checks rates and bounds; `Err` carries a human-readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.fraction) || self.fraction.is_nan() {
            return Err(format!("fraction must be in [0, 1], got {}", self.fraction));
        }
        if self.gain == 0 {
            return Err("gain must be at least 1".into());
        }
        Ok(())
    }
}

/// An [`AdversaryPlan`] armed for a run: the liar set, drawn once from
/// the dedicated stream. Query-time lying is stateless — no RNG, no
/// interior mutability — so it is trivially `Sync` and identical across
/// substrates and thread counts.
#[derive(Debug, Clone)]
pub struct AdversaryState {
    plan: AdversaryPlan,
    liars: BTreeSet<usize>,
}

impl AdversaryState {
    /// Arms a plan over an initial population of `workers`. Liars are
    /// drawn by a partial Fisher–Yates over the worker indices using
    /// the dedicated stream; a zero fraction draws nothing. Workers
    /// churned in later (indices ≥ `workers`) are always honest.
    pub fn new(plan: AdversaryPlan, workers: usize) -> AdversaryState {
        #[cfg(feature = "strict")]
        // autobal-lint: allow(panic-safety, "strict mode is opt-in and fails loudly by design")
        plan.validate().expect("invalid adversary plan");
        let mut liars = BTreeSet::new();
        if plan.fraction > 0.0 && workers > 0 {
            let want = ((plan.fraction * workers as f64).ceil() as usize).min(workers);
            let mut rng = ChaCha8Rng::seed_from_u64(plan.seed ^ ADVERSARY_SALT);
            let mut pool: Vec<usize> = (0..workers).collect();
            for i in 0..want {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
                if let Some(&picked) = pool.get(i) {
                    liars.insert(picked);
                }
            }
        }
        AdversaryState { plan, liars }
    }

    /// The state every run starts with: everyone is honest.
    pub fn inert() -> AdversaryState {
        AdversaryState::new(AdversaryPlan::default(), 0)
    }

    /// The plan this state was armed with.
    pub fn plan(&self) -> &AdversaryPlan {
        &self.plan
    }

    /// See [`AdversaryPlan::is_active`].
    pub fn is_active(&self) -> bool {
        self.plan.is_active() && !self.liars.is_empty()
    }

    /// True when worker `w` is Byzantine.
    pub fn is_liar(&self, w: usize) -> bool {
        self.liars.contains(&w)
    }

    /// The selected liar set (worker indices).
    pub fn liars(&self) -> &BTreeSet<usize> {
        &self.liars
    }

    /// The distorted load worker `w` reports at time `now` when its
    /// true load is `true_load` — or `None` if `w` answers honestly.
    /// Pure function of the inputs: no RNG, no state, so both real
    /// substrates distort identically and replays are exact.
    pub fn lie(&self, w: usize, true_load: u64, now: u64) -> Option<u64> {
        if !self.liars.contains(&w) {
            return None;
        }
        let gain = self.plan.gain.max(1);
        let lied = match self.plan.policy {
            LiePolicy::UnderReport => true_load / gain,
            LiePolicy::OverReport => true_load.saturating_mul(gain).saturating_add(gain),
            LiePolicy::RandomNoise => {
                // splitmix64 over (seed, worker, now): deterministic
                // noise without touching any stream.
                let mut x = self
                    .plan
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((w as u64) << 32)
                    .wrapping_add(now);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                if x & 1 == 0 {
                    true_load / gain
                } else {
                    true_load.saturating_mul(gain).saturating_add(gain)
                }
            }
            LiePolicy::FlipFlop => {
                if now & 1 == 0 {
                    true_load / gain
                } else {
                    true_load.saturating_mul(gain).saturating_add(gain)
                }
            }
        };
        Some(lied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = AdversaryPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        let st = AdversaryState::new(plan, 64);
        assert!(!st.is_active());
        assert!(st.liars().is_empty());
        for w in 0..64 {
            assert_eq!(st.lie(w, 17, 5), None, "inert plan must never lie");
        }
        // A zero fraction never touches the stream, so two states over
        // different populations are indistinguishable.
        let other = AdversaryState::new(AdversaryPlan::default(), 4096);
        assert_eq!(st.liars(), other.liars());
    }

    #[test]
    fn fraction_selects_the_ceiling_count() {
        let st = AdversaryState::new(AdversaryPlan::lying(7, 0.25, LiePolicy::UnderReport), 10);
        assert_eq!(st.liars().len(), 3, "ceil(0.25 * 10) = 3");
        assert!(st.is_active());
        let all = AdversaryState::new(AdversaryPlan::lying(7, 1.0, LiePolicy::UnderReport), 10);
        assert_eq!(all.liars().len(), 10);
    }

    #[test]
    fn liar_selection_is_seed_deterministic() {
        let a = AdversaryState::new(AdversaryPlan::lying(9, 0.3, LiePolicy::OverReport), 40);
        let b = AdversaryState::new(AdversaryPlan::lying(9, 0.3, LiePolicy::OverReport), 40);
        assert_eq!(a.liars(), b.liars());
        let c = AdversaryState::new(AdversaryPlan::lying(10, 0.3, LiePolicy::OverReport), 40);
        assert_ne!(a.liars(), c.liars(), "different seed, different liars");
    }

    #[test]
    fn policies_distort_as_documented() {
        let mk = |policy| AdversaryState::new(AdversaryPlan::lying(1, 1.0, policy), 4);
        let under = mk(LiePolicy::UnderReport);
        assert_eq!(under.lie(0, 40, 0), Some(10));
        assert_eq!(under.lie(0, 3, 0), Some(0), "small loads vanish");

        let over = mk(LiePolicy::OverReport);
        assert_eq!(over.lie(0, 40, 0), Some(164));
        assert_eq!(over.lie(0, 0, 0), Some(4), "idle liars still look busy");

        let flip = mk(LiePolicy::FlipFlop);
        assert_eq!(flip.lie(0, 40, 0), Some(10), "even time under-reports");
        assert_eq!(flip.lie(0, 40, 1), Some(164), "odd time over-reports");

        let noise = mk(LiePolicy::RandomNoise);
        let v1 = noise.lie(0, 40, 0);
        assert_eq!(v1, noise.lie(0, 40, 0), "noise is a pure function");
        assert!(matches!(v1, Some(10) | Some(164)));
        // Across times the hash flips direction at least once.
        let dirs: BTreeSet<u64> = (0..32).filter_map(|t| noise.lie(0, 40, t)).collect();
        assert!(dirs.len() > 1, "noise never varied over 32 times");
    }

    #[test]
    fn honest_workers_and_late_joiners_never_lie() {
        let st = AdversaryState::new(AdversaryPlan::lying(3, 0.5, LiePolicy::OverReport), 8);
        for w in 0..8 {
            assert_eq!(st.lie(w, 10, 2).is_some(), st.is_liar(w));
        }
        // Churn-pool indices beyond the initial population are honest.
        assert_eq!(st.lie(8, 10, 2), None);
        assert_eq!(st.lie(10_000, 10, 2), None);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(AdversaryPlan::lying(0, 1.5, LiePolicy::UnderReport)
            .validate()
            .is_err());
        assert!(AdversaryPlan::lying(0, -0.1, LiePolicy::UnderReport)
            .validate()
            .is_err());
        assert!(AdversaryPlan {
            gain: 0,
            ..AdversaryPlan::default()
        }
        .validate()
        .is_err());
        assert!(AdversaryPlan::lying(0, 0.2, LiePolicy::FlipFlop)
            .validate()
            .is_ok());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn plan_roundtrips_through_serde_defaults() {
        let plan = AdversaryPlan {
            fraction: 0.25,
            policy: LiePolicy::FlipFlop,
            seed: 11,
            ..AdversaryPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: AdversaryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Partial configs fill in defaults.
        let partial: AdversaryPlan = serde_json::from_str(r#"{"fraction":0.2}"#).unwrap();
        assert_eq!(partial.gain, 4);
        assert_eq!(partial.policy, LiePolicy::UnderReport);
        assert_eq!(partial.fraction, 0.2);
    }
}
