//! Deterministic flight recorder for the load-balancing substrates.
//!
//! Every substrate in the workspace — the oracle tick sim
//! (`autobal-core`), the synchronous Chord protocol sim, and the
//! event-driven `EventNet` — produces the same fragmented signals:
//! message counters, retry totals, an event log. This crate unifies
//! them behind one [`TraceSink`] with a span model:
//!
//! * a **span** brackets one strategy decision — it opens when the
//!   substrate hands a worker to the strategy and closes when the
//!   strategy returns;
//! * the **decisions** (Sybil planted, invitation refused, gap split…)
//!   and **messages** (load query delivered, join timed out after two
//!   retries…) that the decision causes attach to the open span;
//! * every record is stamped with **virtual time** — the oracle tick or
//!   the event-net's simulated clock, never wall-clock — so a trace is
//!   a pure function of `(config, seed)` and two same-seed runs emit
//!   byte-identical JSONL.
//!
//! The disabled path is free: [`Trace::new(false)`](Trace::new) never
//! allocates, and every sink method is an inlined `enabled` check.
//! Callers that must build a string argument (a hex position, say)
//! gate on [`TraceSink::enabled`] first.
//!
//! [`diff`] turns two same-seed traces from different substrates into a
//! causal report: the first divergent decision plus the non-delivered
//! messages inside its enclosing spans — "worker 3's load query timed
//! out, so it fell back to the gap estimate" instead of "decisions
//! differ at tick 40".

pub mod diff;
pub mod jsonl;
pub mod record;
pub mod sink;
pub mod summary;

pub use diff::{diff_traces, render_divergence, DecisionAt, Divergence, DivergencePoint};
pub use jsonl::{check_framing, parse_jsonl, to_jsonl, validate_jsonl};
pub use record::{MessageStatus, SpanId, TraceBody, TraceRecord, ROOT_SPAN};
pub use sink::{Trace, TraceSink};
pub use summary::{render_summary, span_breakdown_csv, summarize, MessageCounts, Summary};
