//! `autobal-trace` — inspect, validate, and diff flight-recorder
//! traces.
//!
//! ```text
//! autobal-trace summary FILE      print aggregate stats for a trace
//! autobal-trace validate FILE     schema-check a JSONL trace
//! autobal-trace diff A B          first causal divergence of two
//!                                 same-seed traces (exit 1 if any)
//! autobal-trace timeseries FILE   metrics JSONL -> per-sample CSV
//! autobal-trace export FILE       metrics JSONL -> Prometheus text
//!                                 exposition (final sample)
//! ```
//!
//! This binary is one of the two audited output endpoints of the
//! workspace (the other is `autobal-cli`): all user-facing text
//! funnels through the two helpers below, each carrying one audited
//! output-discipline exemption.

use autobal_telemetry::{
    check_framing, diff_traces, parse_jsonl, render_divergence, render_summary, summarize,
    validate_jsonl, Divergence, TraceRecord,
};

/// The blessed stdout endpoint for this CLI.
fn outln(line: &str) {
    // autobal-lint: allow(output-discipline, "autobal-trace is an audited CLI output endpoint")
    println!("{line}");
}

/// The blessed stderr endpoint for this CLI.
fn errln(line: &str) {
    // autobal-lint: allow(output-discipline, "autobal-trace is an audited CLI output endpoint")
    eprintln!("{line}");
}

fn usage() -> ! {
    errln("usage: autobal-trace <summary FILE | validate FILE | diff A B | timeseries FILE | export FILE>");
    std::process::exit(2);
}

/// Loads and structurally validates a metrics JSONL stream.
fn load_metrics(path: &str) -> Vec<autobal_metrics::MetricsSample> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errln(&format!("autobal-trace: cannot read {path}: {e}"));
            std::process::exit(2);
        }
    };
    let samples = match autobal_metrics::sample::parse_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            errln(&format!("autobal-trace: {path}: {e}"));
            std::process::exit(2);
        }
    };
    if let Err(e) = autobal_metrics::sample::validate_samples(&samples) {
        errln(&format!("autobal-trace: {path}: {e}"));
        std::process::exit(2);
    }
    samples
}

fn load(path: &str) -> Vec<TraceRecord> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errln(&format!("autobal-trace: cannot read {path}: {e}"));
            std::process::exit(2);
        }
    };
    match parse_jsonl(&text) {
        Ok(records) => records,
        Err(e) => {
            errln(&format!("autobal-trace: {path}: {e}"));
            std::process::exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(String::as_str);
    match (cmd, argv.len()) {
        (Some("summary"), 2) => {
            let records = load(&argv[1]);
            outln(render_summary(&summarize(&records)).trim_end());
        }
        (Some("validate"), 2) => {
            let path = &argv[1];
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    errln(&format!("autobal-trace: cannot read {path}: {e}"));
                    std::process::exit(2);
                }
            };
            match validate_jsonl(&text).and_then(|n| {
                let records = parse_jsonl(&text)?;
                check_framing(&records)?;
                Ok(n)
            }) {
                Ok(n) => outln(&format!("{path}: valid trace, {n} records")),
                Err(e) => {
                    errln(&format!("{path}: INVALID: {e}"));
                    std::process::exit(1);
                }
            }
        }
        (Some("timeseries"), 2) => {
            let samples = load_metrics(&argv[1]);
            outln(autobal_metrics::sample::timeseries_csv(&samples).trim_end());
        }
        (Some("export"), 2) => {
            let samples = load_metrics(&argv[1]);
            let Some(last) = samples.last() else {
                errln(&format!("autobal-trace: {}: no samples to export", argv[1]));
                std::process::exit(1);
            };
            let expo = autobal_metrics::expo::render_exposition(last);
            if let Err(e) = autobal_metrics::expo::validate_exposition(&expo) {
                errln(&format!("autobal-trace: internal exposition invalid: {e}"));
                std::process::exit(1);
            }
            outln(expo.trim_end());
        }
        (Some("diff"), 3) => {
            let a = load(&argv[1]);
            let b = load(&argv[2]);
            let d = diff_traces(&a, &b);
            outln(render_divergence(&d).trim_end());
            if matches!(d, Divergence::Diverged(_)) {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
