//! Byte-stable JSONL export, parsing, and schema validation.
//!
//! One compact JSON object per line, fields in declaration order,
//! trailing newline. Because the record model holds no floats and the
//! vendored `serde_json` writes objects in declaration order, the
//! rendered bytes are a pure function of the record sequence — which
//! the determinism tests pin.

use crate::record::{TraceBody, TraceRecord};
use serde_json::Value;

/// Renders records as JSONL (one object per line, trailing newline;
/// empty string for an empty trace).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        // The record model contains only strings, integers, bools and
        // enums of those, so serialization cannot fail.
        if let Ok(line) = serde_json::to_string(rec) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parses JSONL back into records. Blank lines are ignored; any
/// malformed line fails with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not a trace record: {e:?}", idx + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// The body variants the schema admits, with their required fields.
/// An accidental rename of either a variant or a field shows up as a
/// validation failure against the golden fixture.
const SCHEMA: &[(&str, &[&str])] = &[
    ("RunStart", &["substrate", "strategy", "seed"]),
    ("SpanOpen", &["kind", "worker"]),
    ("Decision", &["name", "worker", "pos", "value"]),
    ("Message", &["kind", "status", "retries"]),
    ("SpanClose", &["records"]),
    ("RunEnd", &["completed"]),
];

/// Validates JSONL structurally, without going through the typed
/// deserializer: every line must be an object with `seq`/`time`/`span`
/// integers and a single-variant `body` carrying exactly the schema's
/// fields; `seq` must be dense from 0. Returns the record count.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {lineno}: invalid JSON: {e:?}"))?;
        let seq = v["seq"]
            .as_u64()
            .ok_or_else(|| format!("line {lineno}: missing integer `seq`"))?;
        if seq != count as u64 {
            return Err(format!(
                "line {lineno}: seq {seq} out of order (expected {count})"
            ));
        }
        v["time"]
            .as_u64()
            .ok_or_else(|| format!("line {lineno}: missing integer `time`"))?;
        v["span"]
            .as_u64()
            .ok_or_else(|| format!("line {lineno}: missing integer `span`"))?;
        validate_body(&v["body"]).map_err(|e| format!("line {lineno}: {e}"))?;
        count += 1;
    }
    Ok(count)
}

fn validate_body(body: &Value) -> Result<(), String> {
    let entries = match body {
        Value::Object(entries) => entries,
        _ => return Err("`body` is not an object".to_string()),
    };
    // Unit variants would arrive as strings; the body enum has none,
    // so the object must carry exactly one known variant key.
    if entries.len() != 1 {
        return Err(format!(
            "`body` must have exactly one variant key, found {}",
            entries.len()
        ));
    }
    let (variant, fields) = &entries[0];
    let required = SCHEMA
        .iter()
        .find(|(name, _)| name == variant)
        .map(|(_, fields)| *fields)
        .ok_or_else(|| format!("unknown body variant `{variant}`"))?;
    let inner = match fields {
        Value::Object(inner) => inner,
        _ => return Err(format!("variant `{variant}` payload is not an object")),
    };
    for field in required {
        if !inner.iter().any(|(k, _)| k == field) {
            return Err(format!("variant `{variant}` missing field `{field}`"));
        }
    }
    for (k, _) in inner {
        if !required.contains(&k.as_str()) {
            return Err(format!("variant `{variant}` has unknown field `{k}`"));
        }
    }
    if variant == "Message" {
        let status = fields["status"]
            .as_str()
            .ok_or_else(|| "Message `status` is not a string".to_string())?;
        if !["Delivered", "Dropped", "TimedOut", "Unreachable"].contains(&status) {
            return Err(format!("unknown message status `{status}`"));
        }
    }
    Ok(())
}

/// Lightweight structural check used by [`parse_jsonl`] callers that
/// also want RunStart/RunEnd framing (full traces, as opposed to
/// record fragments).
pub fn check_framing(records: &[TraceRecord]) -> Result<(), String> {
    match records.first() {
        Some(rec) if matches!(rec.body, TraceBody::RunStart { .. }) => {}
        _ => return Err("trace does not begin with RunStart".to_string()),
    }
    match records.last() {
        Some(rec) if matches!(rec.body, TraceBody::RunEnd { .. }) => {}
        _ => return Err("trace does not end with RunEnd".to_string()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MessageStatus;
    use crate::sink::{Trace, TraceSink};

    fn sample() -> Trace {
        let mut t = Trace::new(true);
        t.run_start(0, "oracle", "smart", 7);
        let s = t.open_span(5, "smart", 3);
        t.message(5, "load_query", MessageStatus::TimedOut, 2);
        t.decision(5, "neighbor_gap_split", 3, "0000ff", 0);
        t.close_span(5, s);
        t.run_end(6, true);
        t
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample();
        let text = to_jsonl(t.records());
        assert_eq!(text.lines().count(), t.len());
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, t.records());
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = to_jsonl(sample().records());
        let b = to_jsonl(sample().records());
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn validate_accepts_well_formed_traces() {
        let t = sample();
        let text = to_jsonl(t.records());
        assert_eq!(validate_jsonl(&text), Ok(t.len()));
        check_framing(t.records()).expect("framed");
    }

    #[test]
    fn validate_rejects_schema_drift() {
        // A renamed field (the exact accident the golden fixture
        // guards against).
        let renamed = "{\"seq\":0,\"time\":0,\"span\":0,\"body\":\
                       {\"RunStart\":{\"substrate\":\"oracle\",\"strat\":\"x\",\"seed\":1}}}\n";
        assert!(validate_jsonl(renamed).is_err());
        // An unknown variant.
        let unknown = "{\"seq\":0,\"time\":0,\"span\":0,\"body\":{\"Mystery\":{}}}\n";
        assert!(validate_jsonl(unknown).is_err());
        // A seq gap.
        let gap = "{\"seq\":1,\"time\":0,\"span\":0,\"body\":{\"RunEnd\":{\"completed\":true}}}\n";
        assert!(validate_jsonl(gap).is_err());
        // A bad message status.
        let status = "{\"seq\":0,\"time\":0,\"span\":1,\"body\":\
                      {\"Message\":{\"kind\":\"x\",\"status\":\"Lost\",\"retries\":0}}}\n";
        assert!(validate_jsonl(status).is_err());
    }

    #[test]
    fn framing_rejects_fragments() {
        let mut t = Trace::new(true);
        let s = t.open_span(1, "none", 0);
        t.close_span(1, s);
        assert!(check_framing(t.records()).is_err());
        assert!(check_framing(&[]).is_err());
    }
}
