//! The on-disk record model.
//!
//! One trace is a flat sequence of [`TraceRecord`]s; nesting is
//! expressed by the `span` field, not by structure, so the JSONL form
//! is append-only and line-oriented. Field order in these declarations
//! IS the wire order: the vendored `serde_json` emits compact objects
//! in declaration order, which is what makes same-seed traces
//! byte-identical.
//!
//! The model deliberately contains no floating-point fields. Derived
//! float series (Gini, CoV) are artifacts computed *from* a run, not
//! part of the causal record, which keeps byte-stability trivial.

/// Identifies one span within a single trace.
pub type SpanId = u64;

/// The implicit root span: records emitted outside any strategy
/// decision (substrate-level drops, background maintenance) attach
/// here.
pub const ROOT_SPAN: SpanId = 0;

/// One line of a trace.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceRecord {
    /// Position in the trace (0-based, dense, strictly increasing).
    pub seq: u64,
    /// Virtual time: the oracle tick or the event-net clock. Never
    /// wall-clock.
    pub time: u64,
    /// The span this record belongs to. For `SpanOpen`/`SpanClose`
    /// this is the span being opened/closed itself.
    pub span: SpanId,
    pub body: TraceBody,
}

/// What happened. Externally tagged on the wire:
/// `{"SpanOpen":{"kind":"smart","worker":3}}`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TraceBody {
    /// Trace header: which substrate and strategy produced it, under
    /// which seed. Always the first record.
    RunStart {
        substrate: String,
        strategy: String,
        seed: u64,
    },
    /// A strategy decision begins: `worker` is being checked by the
    /// strategy layer named `kind`.
    SpanOpen { kind: String, worker: u64 },
    /// A load-balancing decision or outcome. `pos` is a hex ring
    /// position (or an auxiliary label) and `value` the moved/observed
    /// quantity; both are `0`-ish when the decision carries none.
    Decision {
        name: String,
        worker: u64,
        pos: String,
        value: u64,
    },
    /// A protocol message caused by the enclosing span (or by the
    /// substrate itself, on the root span).
    Message {
        kind: String,
        status: MessageStatus,
        retries: u64,
    },
    /// The enclosing decision ends; `records` counts what it emitted.
    SpanClose { records: u64 },
    /// Trace footer: `completed` is false when the run hit its tick
    /// cap. Always the last record.
    RunEnd { completed: bool },
}

/// Terminal fate of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MessageStatus {
    /// Reached its recipient (possibly after retries).
    Delivered,
    /// Eaten by the fault plane or addressed to a dead node.
    Dropped,
    /// Exhausted its retry budget waiting for an answer.
    TimedOut,
    /// The sender could not resolve a live recipient at all.
    Unreachable,
}

impl MessageStatus {
    /// Stable lowercase label for text reports.
    pub fn label(&self) -> &'static str {
        match self {
            MessageStatus::Delivered => "delivered",
            MessageStatus::Dropped => "dropped",
            MessageStatus::TimedOut => "timed-out",
            MessageStatus::Unreachable => "unreachable",
        }
    }
}

impl TraceBody {
    /// Stable lowercase tag for text reports and CSV columns.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceBody::RunStart { .. } => "run-start",
            TraceBody::SpanOpen { .. } => "span-open",
            TraceBody::Decision { .. } => "decision",
            TraceBody::Message { .. } => "message",
            TraceBody::SpanClose { .. } => "span-close",
            TraceBody::RunEnd { .. } => "run-end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_form_is_externally_tagged_and_field_ordered() {
        let rec = TraceRecord {
            seq: 2,
            time: 40,
            span: 1,
            body: TraceBody::Message {
                kind: "load_query".to_string(),
                status: MessageStatus::TimedOut,
                retries: 2,
            },
        };
        let json = serde_json::to_string(&rec).expect("serializes");
        assert_eq!(
            json,
            "{\"seq\":2,\"time\":40,\"span\":1,\"body\":{\"Message\":\
             {\"kind\":\"load_query\",\"status\":\"TimedOut\",\"retries\":2}}}"
        );
        let back: TraceRecord = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, rec);
    }

    #[test]
    fn unit_variants_round_trip_as_strings() {
        for status in [
            MessageStatus::Delivered,
            MessageStatus::Dropped,
            MessageStatus::TimedOut,
            MessageStatus::Unreachable,
        ] {
            let json = serde_json::to_string(&status).expect("serializes");
            let back: MessageStatus = serde_json::from_str(&json).expect("round-trips");
            assert_eq!(back, status);
        }
    }

    #[test]
    fn tags_and_labels_are_stable() {
        let open = TraceBody::SpanOpen {
            kind: "smart".to_string(),
            worker: 0,
        };
        assert_eq!(open.tag(), "span-open");
        assert_eq!(MessageStatus::Unreachable.label(), "unreachable");
    }
}
