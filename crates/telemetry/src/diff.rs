//! Same-seed trace diffing: find the first *causal* divergence between
//! two traces of the same `(config, seed)` pair run on different
//! substrates.
//!
//! Decisions — not raw records — are the comparison unit, because the
//! substrates legitimately differ in message traffic (the Chord sim
//! retries, the oracle cannot fail) while the *decisions* those
//! messages feed are supposed to agree. When the decision streams
//! split, the report attaches the non-delivered messages inside each
//! side's enclosing span: that is the cause a human needs ("the load
//! query timed out on substrate B, so the strategy fell back to the
//! gap estimate").

use crate::record::{MessageStatus, TraceBody, TraceRecord};

/// One side's view of a decision, with enough span context to explain
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionAt {
    /// Virtual time of the decision.
    pub time: u64,
    pub name: String,
    pub worker: u64,
    pub pos: String,
    pub value: u64,
    /// Kind of the enclosing span (strategy layer), if any.
    pub span_kind: String,
    /// Human-readable non-delivered / retried messages in the same
    /// span — the causal explanation.
    pub causes: Vec<String>,
}

impl DecisionAt {
    fn render(&self) -> String {
        let mut s = format!(
            "t={} worker={} {}({}, {})",
            self.time, self.worker, self.name, self.pos, self.value
        );
        if !self.span_kind.is_empty() {
            s.push_str(&format!(" in span[{}]", self.span_kind));
        }
        s
    }
}

/// Where two same-seed traces first part ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergencePoint {
    /// Index into the (lockstep) decision streams.
    pub index: usize,
    /// The decision each side took; `None` when that side's stream
    /// ended early.
    pub a: Option<DecisionAt>,
    pub b: Option<DecisionAt>,
}

/// Outcome of [`diff_traces`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The decision streams agree end to end.
    None { decisions: usize },
    /// The streams split at [`DivergencePoint::index`].
    Diverged(Box<DivergencePoint>),
}

/// Extracts the decision stream from a trace, annotating every
/// decision with its enclosing span kind and the span's non-delivered
/// or retried messages.
fn decisions(records: &[TraceRecord]) -> Vec<DecisionAt> {
    let mut out = Vec::new();
    for rec in records {
        if let TraceBody::Decision {
            name,
            worker,
            pos,
            value,
        } = &rec.body
        {
            let mut span_kind = String::new();
            let mut causes = Vec::new();
            if rec.span != crate::ROOT_SPAN {
                for other in records.iter().filter(|r| r.span == rec.span) {
                    match &other.body {
                        TraceBody::SpanOpen { kind, .. } => span_kind = kind.clone(),
                        TraceBody::Message {
                            kind,
                            status,
                            retries,
                        } if *status != MessageStatus::Delivered || *retries > 0 => {
                            causes.push(format!(
                                "{kind} {} after {retries} retr{} at t={}",
                                status.label(),
                                if *retries == 1 { "y" } else { "ies" },
                                other.time
                            ));
                        }
                        _ => {}
                    }
                }
            }
            out.push(DecisionAt {
                time: rec.time,
                name: name.clone(),
                worker: *worker,
                pos: pos.clone(),
                value: *value,
                span_kind,
                causes,
            });
        }
    }
    out
}

fn same_decision(a: &DecisionAt, b: &DecisionAt) -> bool {
    (a.time, &a.name, a.worker, &a.pos, a.value) == (b.time, &b.name, b.worker, &b.pos, b.value)
}

/// Lockstep-compares the decision streams of two traces.
pub fn diff_traces(a: &[TraceRecord], b: &[TraceRecord]) -> Divergence {
    let da = decisions(a);
    let db = decisions(b);
    let common = da.len().min(db.len());
    for i in 0..common {
        if !same_decision(&da[i], &db[i]) {
            return Divergence::Diverged(Box::new(DivergencePoint {
                index: i,
                a: Some(da[i].clone()),
                b: Some(db[i].clone()),
            }));
        }
    }
    if da.len() != db.len() {
        return Divergence::Diverged(Box::new(DivergencePoint {
            index: common,
            a: da.get(common).cloned(),
            b: db.get(common).cloned(),
        }));
    }
    Divergence::None {
        decisions: da.len(),
    }
}

/// Renders a divergence as the stable text block the CLI prints: the
/// first divergent decision with worker, virtual time, and cause.
pub fn render_divergence(d: &Divergence) -> String {
    match d {
        Divergence::None { decisions } => {
            format!("no divergence: {decisions} decisions agree on both substrates\n")
        }
        Divergence::Diverged(p) => {
            let mut out = format!("first divergence at decision #{}\n", p.index);
            for (label, side) in [("A", &p.a), ("B", &p.b)] {
                match side {
                    Some(d) => {
                        out.push_str(&format!("  {label}: {}\n", d.render()));
                        for cause in &d.causes {
                            out.push_str(&format!("     cause: {cause}\n"));
                        }
                    }
                    None => out.push_str(&format!("  {label}: (decision stream ended)\n")),
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Trace, TraceSink};

    /// An oracle-side span: the load query always succeeds, the worker
    /// splits at the probed target.
    fn oracle_side() -> Trace {
        let mut t = Trace::new(true);
        t.run_start(0, "oracle", "smart", 5);
        let s = t.open_span(40, "smart", 3);
        t.message(40, "load_query", MessageStatus::Delivered, 0);
        t.decision(40, "load_queried", 3, "aaaa", 17);
        t.decision(40, "sybil_created", 3, "aaaa", 8);
        t.close_span(40, s);
        t.run_end(41, true);
        t
    }

    /// The chord side of the same seed: the query times out, so the
    /// strategy falls back to the gap estimate.
    fn chord_side() -> Trace {
        let mut t = Trace::new(true);
        t.run_start(0, "chord", "smart", 5);
        let s = t.open_span(40, "smart", 3);
        t.message(40, "load_query", MessageStatus::TimedOut, 2);
        t.decision(40, "neighbor_gap_split", 3, "bbbb", 0);
        t.decision(40, "sybil_created", 3, "bbbb", 6);
        t.close_span(40, s);
        t.run_end(41, true);
        t
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let a = oracle_side();
        let d = diff_traces(a.records(), a.records());
        assert_eq!(d, Divergence::None { decisions: 2 });
        assert!(render_divergence(&d).contains("no divergence"));
    }

    #[test]
    fn divergence_reports_worker_time_and_cause() {
        let a = oracle_side();
        let b = chord_side();
        let d = diff_traces(a.records(), b.records());
        let p = match &d {
            Divergence::Diverged(p) => p,
            other => panic!("expected divergence, got {other:?}"),
        };
        assert_eq!(p.index, 0);
        let b_side = p.b.as_ref().expect("b decision present");
        assert_eq!(b_side.worker, 3);
        assert_eq!(b_side.time, 40);
        assert_eq!(b_side.name, "neighbor_gap_split");
        assert_eq!(b_side.causes.len(), 1);
        let report = render_divergence(&d);
        assert!(report.contains("worker=3"), "{report}");
        assert!(report.contains("t=40"), "{report}");
        assert!(
            report.contains("load_query timed-out after 2 retries"),
            "{report}"
        );
    }

    #[test]
    fn shorter_stream_diverges_at_its_end() {
        let a = oracle_side();
        let mut b = Trace::new(true);
        b.run_start(0, "chord", "smart", 5);
        let s = b.open_span(40, "smart", 3);
        b.message(40, "load_query", MessageStatus::Delivered, 0);
        b.decision(40, "load_queried", 3, "aaaa", 17);
        b.close_span(40, s);
        b.run_end(41, true);
        let d = diff_traces(a.records(), b.records());
        let p = match d {
            Divergence::Diverged(p) => p,
            other => panic!("expected divergence, got {other:?}"),
        };
        assert_eq!(p.index, 1);
        assert!(p.a.is_some() && p.b.is_none());
        let report = render_divergence(&Divergence::Diverged(p));
        assert!(report.contains("decision stream ended"), "{report}");
    }

    #[test]
    fn root_span_decisions_compare_without_span_context() {
        let mut a = Trace::new(true);
        a.run_start(0, "oracle", "churn", 1);
        a.decision(3, "worker_left", 7, "", 0);
        a.run_end(4, true);
        let d = diff_traces(a.records(), a.records());
        assert_eq!(d, Divergence::None { decisions: 1 });
    }
}
