//! Aggregate views of one trace: totals for the CLI, per-span message
//! breakdowns as CSV for the `repro trace` artifacts.

use crate::record::{MessageStatus, TraceBody, TraceRecord};
use std::collections::BTreeMap;

/// Message-fate counters (one per [`MessageStatus`], plus retries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageCounts {
    pub delivered: u64,
    pub dropped: u64,
    pub timed_out: u64,
    pub unreachable: u64,
    pub retries: u64,
}

impl MessageCounts {
    fn add(&mut self, status: MessageStatus, retries: u64) {
        match status {
            MessageStatus::Delivered => self.delivered += 1,
            MessageStatus::Dropped => self.dropped += 1,
            MessageStatus::TimedOut => self.timed_out += 1,
            MessageStatus::Unreachable => self.unreachable += 1,
        }
        self.retries += retries;
    }

    pub fn total(&self) -> u64 {
        self.delivered + self.dropped + self.timed_out + self.unreachable
    }
}

/// Everything the `autobal-trace summary` subcommand reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    pub substrate: String,
    pub strategy: String,
    pub seed: u64,
    pub completed: bool,
    pub records: u64,
    pub spans: u64,
    pub decisions: u64,
    pub messages: MessageCounts,
    pub last_time: u64,
    /// Decision counts by decision name, sorted by name (BTreeMap, so
    /// rendering is deterministic).
    pub decisions_by_name: BTreeMap<String, u64>,
    /// Span counts by span kind (strategy layer), sorted by kind.
    pub spans_by_kind: BTreeMap<String, u64>,
    /// Decision counts by (span kind, decision name): which strategy
    /// layer produced each decision — this is where the Byzantine
    /// meta-counters (`lied`, `probe_agree`, `probe_conflict`,
    /// `quarantined`) break down per strategy instead of only as
    /// totals. Decisions outside any span (churn, crash plane) are
    /// attributed to the pseudo-kind `-`.
    pub decisions_by_strategy: BTreeMap<String, BTreeMap<String, u64>>,
}

/// Folds a record sequence into its [`Summary`].
pub fn summarize(records: &[TraceRecord]) -> Summary {
    let mut s = Summary::default();
    // Span id → kind, for attributing decisions to the strategy layer
    // whose check produced them.
    let mut span_kind: BTreeMap<u64, String> = BTreeMap::new();
    for rec in records {
        s.records += 1;
        s.last_time = s.last_time.max(rec.time);
        match &rec.body {
            TraceBody::RunStart {
                substrate,
                strategy,
                seed,
            } => {
                s.substrate = substrate.clone();
                s.strategy = strategy.clone();
                s.seed = *seed;
            }
            TraceBody::SpanOpen { kind, .. } => {
                s.spans += 1;
                *s.spans_by_kind.entry(kind.clone()).or_insert(0) += 1;
                span_kind.insert(rec.span, kind.clone());
            }
            TraceBody::Decision { name, .. } => {
                s.decisions += 1;
                *s.decisions_by_name.entry(name.clone()).or_insert(0) += 1;
                let kind = span_kind.get(&rec.span).map(String::as_str).unwrap_or("-");
                *s.decisions_by_strategy
                    .entry(kind.to_string())
                    .or_default()
                    .entry(name.clone())
                    .or_insert(0) += 1;
            }
            TraceBody::Message {
                status, retries, ..
            } => s.messages.add(*status, *retries),
            TraceBody::SpanClose { .. } => {}
            TraceBody::RunEnd { completed } => s.completed = *completed,
        }
    }
    s
}

/// Renders a summary as the stable text block the CLI prints.
pub fn render_summary(s: &Summary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: substrate={} strategy={} seed={:#x} completed={}\n",
        s.substrate, s.strategy, s.seed, s.completed
    ));
    out.push_str(&format!(
        "records={} spans={} decisions={} last_time={}\n",
        s.records, s.spans, s.decisions, s.last_time
    ));
    out.push_str(&format!(
        "messages: total={} delivered={} dropped={} timed_out={} unreachable={} retries={}\n",
        s.messages.total(),
        s.messages.delivered,
        s.messages.dropped,
        s.messages.timed_out,
        s.messages.unreachable,
        s.messages.retries
    ));
    for (kind, n) in &s.spans_by_kind {
        out.push_str(&format!("  spans[{kind}] = {n}\n"));
    }
    for (name, n) in &s.decisions_by_name {
        out.push_str(&format!("  decisions[{name}] = {n}\n"));
    }
    for (kind, names) in &s.decisions_by_strategy {
        for (name, n) in names {
            out.push_str(&format!("  decisions[{kind}/{name}] = {n}\n"));
        }
    }
    out
}

/// Per-span message breakdown as CSV — one row per span, in span-id
/// order: which worker decided, under which layer, at what time, and
/// the fate of every message the decision caused.
pub fn span_breakdown_csv(records: &[TraceRecord]) -> String {
    struct Row {
        time: u64,
        kind: String,
        worker: u64,
        decisions: u64,
        counts: MessageCounts,
    }
    let mut rows: BTreeMap<u64, Row> = BTreeMap::new();
    for rec in records {
        match &rec.body {
            TraceBody::SpanOpen { kind, worker } => {
                rows.insert(
                    rec.span,
                    Row {
                        time: rec.time,
                        kind: kind.clone(),
                        worker: *worker,
                        decisions: 0,
                        counts: MessageCounts::default(),
                    },
                );
            }
            TraceBody::Decision { .. } => {
                if let Some(row) = rows.get_mut(&rec.span) {
                    row.decisions += 1;
                }
            }
            TraceBody::Message {
                status, retries, ..
            } => {
                if let Some(row) = rows.get_mut(&rec.span) {
                    row.counts.add(*status, *retries);
                }
            }
            _ => {}
        }
    }
    let mut out = String::from(
        "span,time,kind,worker,decisions,delivered,dropped,timed_out,unreachable,retries\n",
    );
    for (span, row) in &rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            span,
            row.time,
            row.kind,
            row.worker,
            row.decisions,
            row.counts.delivered,
            row.counts.dropped,
            row.counts.timed_out,
            row.counts.unreachable,
            row.counts.retries
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Trace, TraceSink};

    fn sample() -> Trace {
        let mut t = Trace::new(true);
        t.run_start(0, "chord", "smart", 9);
        let a = t.open_span(5, "smart", 1);
        t.message(5, "load_query", MessageStatus::Delivered, 0);
        t.decision(5, "sybil_created", 1, "aa", 7);
        t.close_span(5, a);
        let b = t.open_span(10, "smart", 2);
        t.message(10, "load_query", MessageStatus::TimedOut, 2);
        t.decision(10, "neighbor_gap_split", 2, "bb", 0);
        t.close_span(10, b);
        t.run_end(11, true);
        t
    }

    #[test]
    fn summary_counts_everything_once() {
        let s = summarize(sample().records());
        assert_eq!(
            (s.substrate.as_str(), s.strategy.as_str(), s.seed),
            ("chord", "smart", 9)
        );
        assert!(s.completed);
        assert_eq!((s.spans, s.decisions), (2, 2));
        assert_eq!(s.messages.total(), 2);
        assert_eq!(s.messages.timed_out, 1);
        assert_eq!(s.messages.retries, 2);
        assert_eq!(s.last_time, 11);
        assert_eq!(s.spans_by_kind.get("smart"), Some(&2));
        assert_eq!(s.decisions_by_name.get("sybil_created"), Some(&1));
        let text = render_summary(&s);
        assert!(text.contains("substrate=chord"));
        assert!(text.contains("timed_out=1"));
    }

    #[test]
    fn decisions_break_down_per_strategy_layer() {
        // Two layers emitting the same meta-counter name, plus one
        // decision outside any span: the per-strategy table must keep
        // them apart while the flat table sums them.
        let mut t = Trace::new(true);
        t.run_start(0, "chord", "smart", 3);
        let a = t.open_span(5, "crosscheck", 1);
        t.decision(5, "lied", 1, "aa", 7);
        t.decision(5, "probe_conflict", 1, "aa", 7);
        t.close_span(5, a);
        let b = t.open_span(10, "smart", 2);
        t.decision(10, "lied", 2, "bb", 3);
        t.close_span(10, b);
        t.decision(11, "worker_left", 4, "", 0);
        t.run_end(12, true);
        let s = summarize(t.records());
        assert_eq!(s.decisions_by_name.get("lied"), Some(&2));
        assert_eq!(
            s.decisions_by_strategy
                .get("crosscheck")
                .and_then(|m| m.get("lied")),
            Some(&1)
        );
        assert_eq!(
            s.decisions_by_strategy
                .get("crosscheck")
                .and_then(|m| m.get("probe_conflict")),
            Some(&1)
        );
        assert_eq!(
            s.decisions_by_strategy
                .get("smart")
                .and_then(|m| m.get("lied")),
            Some(&1)
        );
        assert_eq!(
            s.decisions_by_strategy
                .get("-")
                .and_then(|m| m.get("worker_left")),
            Some(&1)
        );
        let text = render_summary(&s);
        assert!(text.contains("decisions[crosscheck/lied] = 1"));
        assert!(text.contains("decisions[smart/lied] = 1"));
        assert!(text.contains("decisions[-/worker_left] = 1"));
    }

    #[test]
    fn breakdown_has_one_row_per_span() {
        let csv = span_breakdown_csv(sample().records());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + two spans: {csv}");
        assert_eq!(lines[1], "1,5,smart,1,1,1,0,0,0,0");
        assert_eq!(lines[2], "2,10,smart,2,1,0,0,1,0,2");
    }
}
