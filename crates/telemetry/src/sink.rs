//! The sink trait every substrate emits into, and the in-memory
//! recorder implementing it.

use crate::record::{MessageStatus, SpanId, TraceBody, TraceRecord, ROOT_SPAN};

/// Where substrates send their telemetry.
///
/// All methods take virtual time explicitly: the substrate owns the
/// clock (tick or event time), the sink never reads one. `enabled`
/// exists so hot paths can skip building arguments (hex strings,
/// labels) when nothing is listening — the contract is that every
/// other method is a no-op when `enabled()` is false.
pub trait TraceSink {
    /// Is anything being recorded? Callers gate argument construction
    /// on this.
    fn enabled(&self) -> bool;
    /// Writes the trace header.
    fn run_start(&mut self, time: u64, substrate: &str, strategy: &str, seed: u64);
    /// Opens a decision span for `worker` under the strategy layer
    /// `kind`; returns [`ROOT_SPAN`] when disabled.
    fn open_span(&mut self, time: u64, kind: &str, worker: u64) -> SpanId;
    /// Closes `span`, recording how many records it captured.
    fn close_span(&mut self, time: u64, span: SpanId);
    /// Records a decision inside the current span.
    fn decision(&mut self, time: u64, name: &str, worker: u64, pos: &str, value: u64);
    /// Records a message outcome inside the current span.
    fn message(&mut self, time: u64, kind: &str, status: MessageStatus, retries: u64);
    /// Writes the trace footer.
    fn run_end(&mut self, time: u64, completed: bool);
}

/// The in-memory flight recorder.
///
/// Disabled (`Trace::new(false)`, also the `Default`), it is a single
/// `false` bool and three empty vectors that are never pushed to —
/// every sink method returns after one branch, so carrying a `Trace`
/// in a hot simulation struct costs nothing measurable.
///
/// Span attribution uses a stack: records emitted while a span is open
/// attach to the innermost one, everything else to [`ROOT_SPAN`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    enabled: bool,
    #[serde(default)]
    next_span: u64,
    #[serde(default)]
    open: Vec<u64>,
    #[serde(default)]
    records: Vec<TraceRecord>,
}

impl Trace {
    pub fn new(enabled: bool) -> Trace {
        Trace {
            enabled,
            next_span: 0,
            open: Vec::new(),
            records: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The innermost open span, or the root.
    fn current_span(&self) -> SpanId {
        self.open.last().copied().unwrap_or(ROOT_SPAN)
    }

    fn push(&mut self, time: u64, span: SpanId, body: TraceBody) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord {
            seq,
            time,
            span,
            body,
        });
    }
}

impl TraceSink for Trace {
    #[inline]
    fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn run_start(&mut self, time: u64, substrate: &str, strategy: &str, seed: u64) {
        if !self.enabled {
            return;
        }
        self.push(
            time,
            ROOT_SPAN,
            TraceBody::RunStart {
                substrate: substrate.to_string(),
                strategy: strategy.to_string(),
                seed,
            },
        );
    }

    #[inline]
    fn open_span(&mut self, time: u64, kind: &str, worker: u64) -> SpanId {
        if !self.enabled {
            return ROOT_SPAN;
        }
        self.next_span += 1;
        let span = self.next_span;
        self.push(
            time,
            span,
            TraceBody::SpanOpen {
                kind: kind.to_string(),
                worker,
            },
        );
        self.open.push(span);
        span
    }

    #[inline]
    fn close_span(&mut self, time: u64, span: SpanId) {
        if !self.enabled || span == ROOT_SPAN {
            return;
        }
        // Count what the span captured: everything attributed to it
        // since (and excluding) its SpanOpen. Spans are a handful of
        // records wide, so the backward scan is cheap.
        let mut inner = 0u64;
        for rec in self.records.iter().rev() {
            if rec.span != span {
                continue;
            }
            if matches!(rec.body, TraceBody::SpanOpen { .. }) {
                break;
            }
            inner += 1;
        }
        self.push(time, span, TraceBody::SpanClose { records: inner });
        if let Some(at) = self.open.iter().rposition(|s| *s == span) {
            self.open.remove(at);
        }
    }

    #[inline]
    fn decision(&mut self, time: u64, name: &str, worker: u64, pos: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let span = self.current_span();
        self.push(
            time,
            span,
            TraceBody::Decision {
                name: name.to_string(),
                worker,
                pos: pos.to_string(),
                value,
            },
        );
    }

    #[inline]
    fn message(&mut self, time: u64, kind: &str, status: MessageStatus, retries: u64) {
        if !self.enabled {
            return;
        }
        let span = self.current_span();
        self.push(
            time,
            span,
            TraceBody::Message {
                kind: kind.to_string(),
                status,
                retries,
            },
        );
    }

    #[inline]
    fn run_end(&mut self, time: u64, completed: bool) {
        if !self.enabled {
            return;
        }
        self.push(time, ROOT_SPAN, TraceBody::RunEnd { completed });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_returns_root() {
        let mut t = Trace::new(false);
        t.run_start(0, "oracle", "smart", 7);
        let span = t.open_span(1, "smart", 3);
        assert_eq!(span, ROOT_SPAN);
        t.decision(1, "sybil_created", 3, "ff", 10);
        t.message(1, "load_query", MessageStatus::Delivered, 0);
        t.close_span(1, span);
        t.run_end(2, true);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t, Trace::default());
    }

    #[test]
    fn records_attach_to_the_innermost_open_span() {
        let mut t = Trace::new(true);
        t.run_start(0, "oracle", "smart", 7);
        let outer = t.open_span(1, "churn", 2);
        t.decision(1, "worker_left", 2, "", 0);
        let inner = t.open_span(1, "smart", 3);
        t.message(1, "load_query", MessageStatus::TimedOut, 2);
        t.close_span(1, inner);
        t.decision(1, "sybil_created", 2, "ab", 4);
        t.close_span(1, outer);
        t.run_end(2, true);

        let spans: Vec<SpanId> = t.records().iter().map(|r| r.span).collect();
        // header, open(1), decision→1, open(2), message→2, close(2),
        // decision→1, close(1), footer
        assert_eq!(spans, vec![0, 1, 1, 2, 2, 2, 1, 1, 0]);
        // Each close counts only its own records (excluding nested
        // opens/closes attributed to other spans).
        let closes: Vec<u64> = t
            .records()
            .iter()
            .filter_map(|r| match r.body {
                TraceBody::SpanClose { records } => Some(records),
                _ => None,
            })
            .collect();
        assert_eq!(closes, vec![1, 2]);
    }

    #[test]
    fn seq_is_dense_and_increasing() {
        let mut t = Trace::new(true);
        t.run_start(0, "chord", "none", 1);
        let s = t.open_span(4, "none", 0);
        t.close_span(4, s);
        t.run_end(9, false);
        for (i, rec) in t.records().iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn sink_round_trips_through_serde() {
        let mut t = Trace::new(true);
        t.run_start(0, "oracle", "invitation", 3);
        let s = t.open_span(2, "invitation", 5);
        t.message(2, "invitation", MessageStatus::Delivered, 0);
        t.decision(2, "invitation_honored", 5, "w1", 12);
        t.close_span(2, s);
        t.run_end(3, true);
        let json = serde_json::to_string(&t).expect("serializes");
        let back: Trace = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, t);
    }
}
