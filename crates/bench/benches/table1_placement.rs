//! Bench family for **Table I**: cost of building an initial placement
//! (SHA-1 node ids + task keys onto the ring) and summarizing its
//! workload distribution, across the paper's (nodes, tasks) grid —
//! scaled down so `cargo bench` stays fast. The paper-scale rows are
//! produced by `repro table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_placement");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for (nodes, tasks) in [(100usize, 10_000usize), (1000, 10_000), (1000, 100_000)] {
        g.bench_with_input(
            BenchmarkId::new("initial_load_summary", format!("{nodes}n_{tasks}t")),
            &(nodes, tasks),
            |b, &(n, t)| {
                let mut trial = 0u64;
                b.iter(|| {
                    trial += 1;
                    black_box(autobal_workload::initial_load_summary(n, t, 42, trial))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
