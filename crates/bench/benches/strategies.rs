//! Bench family for the §VI strategy comparisons (Figures 7–9, 11–14
//! and the running-text factors): one complete job per iteration under
//! each strategy, homogeneous and heterogeneous.

use autobal_core::{Heterogeneity, Sim, SimConfig, StrategyKind, WorkMeasurement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn cfg(strategy: StrategyKind) -> SimConfig {
    SimConfig {
        nodes: 100,
        tasks: 10_000,
        strategy,
        churn_rate: if strategy == StrategyKind::Churn {
            0.01
        } else {
            0.0
        },
        ..SimConfig::default()
    }
}

fn bench_homogeneous(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategies_homogeneous");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for strat in StrategyKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("run_100n_10kt", strat.label()),
            &strat,
            |b, &strat| {
                let cfg = cfg(strat);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(Sim::new(cfg.clone(), seed).run().runtime_factor)
                });
            },
        );
    }
    g.finish();
}

fn bench_heterogeneous(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategies_heterogeneous_strength");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for strat in [
        StrategyKind::None,
        StrategyKind::RandomInjection,
        StrategyKind::NeighborInjection,
        StrategyKind::Invitation,
    ] {
        g.bench_with_input(
            BenchmarkId::new("run_100n_10kt", strat.label()),
            &strat,
            |b, &strat| {
                let cfg = SimConfig {
                    heterogeneity: Heterogeneity::Heterogeneous,
                    work_measurement: WorkMeasurement::StrengthPerTick,
                    ..cfg(strat)
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(Sim::new(cfg.clone(), seed).run().runtime_factor)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_homogeneous, bench_heterogeneous);
criterion_main!(benches);
