//! Primitive-layer benches: SHA-1 throughput, 160-bit arithmetic, and
//! ring task operations (the per-tick hot path of the simulator).

use autobal_core::Ring;
use autobal_id::{sha1, Id};
use autobal_stats::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for size in [8usize, 64, 1024, 65_536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("digest", size), &data, |b, data| {
            b.iter(|| black_box(sha1::digest(data)));
        });
    }
    g.finish();
}

fn bench_id_arith(c: &mut Criterion) {
    let mut g = c.benchmark_group("id_arithmetic");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(1);
    let a = Id::random(&mut rng);
    let b_ = Id::random(&mut rng);
    g.bench_function("wrapping_add", |b| b.iter(|| black_box(a.wrapping_add(b_))));
    g.bench_function("wrapping_sub", |b| b.iter(|| black_box(a.wrapping_sub(b_))));
    g.bench_function("cmp", |b| b.iter(|| black_box(a.cmp(&b_))));
    g.bench_function("midpoint", |b| {
        b.iter(|| black_box(autobal_id::ring::midpoint(a, b_)))
    });
    g.finish();
}

fn bench_ring_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_ops");
    g.sample_size(20);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));

    // Build a ring with 1000 vnodes and 100k tasks once per batch.
    let build = || {
        let mut rng = seeded_rng(2);
        let mut ring = Ring::new();
        let mut i = 0;
        while ring.len() < 1000 {
            let id = Id::random(&mut rng);
            if ring.insert_vnode(id, i).is_ok() {
                i += 1;
            }
        }
        let keys: Vec<Id> = (0..100_000).map(|_| Id::random(&mut rng)).collect();
        ring.assign_tasks(keys);
        ring
    };

    g.bench_function("pop_task_hot_loop_1000", |b| {
        let mut ring = build();
        let ids: Vec<Id> = ring.iter().map(|(id, _)| *id).collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(ring.pop_task(ids[i]))
        });
    });

    g.bench_function("insert_vnode_split", |b| {
        let ring = build();
        let mut rng = seeded_rng(3);
        b.iter_batched(
            || (ring.clone(), Id::random(&mut rng)),
            |(mut r, pos)| {
                let _ = r.insert_vnode(pos, 0);
                black_box(r.len())
            },
            criterion::BatchSize::LargeInput,
        );
    });

    g.finish();
}

criterion_group!(benches, bench_sha1, bench_id_arith, bench_ring_ops);
criterion_main!(benches);
