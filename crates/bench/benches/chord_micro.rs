//! Chord substrate microbenchmarks: lookup hop cost, join, and one full
//! maintenance cycle — the overheads the tick model abstracts away but a
//! real deployment pays.

use autobal_chord::{NetConfig, Network};
use autobal_id::Id;
use autobal_stats::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;
use std::time::Duration;

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord_lookup");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for n in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            let mut rng = seeded_rng(1);
            let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
            let ids = net.node_ids();
            b.iter(|| {
                let from = ids[rng.gen_range(0..ids.len())];
                let key = Id::random(&mut rng);
                black_box(net.lookup(from, key).unwrap().hops)
            });
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord_join");
    g.sample_size(20);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("join_into_256", |b| {
        let mut rng = seeded_rng(2);
        b.iter_batched(
            || {
                let net = Network::bootstrap(NetConfig::default(), 256, &mut rng);
                let id = Id::random(&mut rng);
                (net, id)
            },
            |(mut net, id)| {
                let contact = net.node_ids()[0];
                net.join(id, contact).unwrap();
                black_box(net.len())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord_maintenance");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::new("cycle", n), &n, |b, &n| {
            let mut rng = seeded_rng(3);
            let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
            for k in 0..(n as u64 * 10) {
                net.insert_key(autobal_id::sha1::sha1_id_of_u64(k));
            }
            b.iter(|| {
                net.maintenance_cycle();
                black_box(net.stats.total())
            });
        });
    }
    g.finish();
}

fn bench_eventnet(c: &mut Criterion) {
    use autobal_chord::{EventConfig, EventNet};
    let mut g = c.benchmark_group("chord_eventnet");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("async_200_lookups_128n", |b| {
        let mut rng = seeded_rng(4);
        b.iter_batched(
            || EventNet::bootstrap(EventConfig::default(), 128, &mut rng),
            |mut net| {
                let ids = net.node_ids();
                for i in 0..200u64 {
                    let origin = ids[(i as usize * 13) % ids.len()];
                    net.lookup(origin, autobal_id::sha1::sha1_id_of_u64(i));
                }
                net.run_until(20_000);
                black_box(net.take_completed().len())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord_kv");
    g.sample_size(20);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("put_get_64n", |b| {
        let mut rng = seeded_rng(5);
        let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng);
        let from = net.node_ids()[0];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = autobal_id::sha1::sha1_id_of_u64(i);
            net.put(from, key, bytes::Bytes::from_static(b"v")).unwrap();
            black_box(net.get(from, key).unwrap())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lookup,
    bench_join,
    bench_maintenance,
    bench_eventnet,
    bench_kv
);
criterion_main!(benches);
