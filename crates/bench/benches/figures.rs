//! Bench family for the figure pipelines: snapshot capture during a run
//! (Figures 4–14) and histogram construction (Figure 1), plus the ring
//! embedding of Figures 2–3.

use autobal_core::{Sim, SimConfig, StrategyKind};
use autobal_stats::{Histogram, LogHistogram};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_snapshot_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_snapshot_run");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("run_with_3_snapshots_100n_10kt", |b| {
        let cfg = SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy: StrategyKind::RandomInjection,
            snapshot_ticks: vec![0, 5, 35],
            ..SimConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let res = Sim::new(cfg.clone(), seed).run();
            assert_eq!(res.snapshots.len(), 3);
            black_box(res.snapshots.len())
        });
    });
    g.finish();
}

fn bench_histograms(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_histograms");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    let loads = autobal_workload::placement::initial_loads(1000, 100_000, 7, 0);
    g.bench_function("linear_histogram_1000_loads", |b| {
        b.iter(|| black_box(Histogram::build(&loads, 0, 25, 40)))
    });
    g.bench_function("log_histogram_1000_loads", |b| {
        b.iter(|| black_box(LogHistogram::build(&loads)))
    });
    g.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_ring_embedding");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    let mut rng = autobal_stats::seeded_rng(3);
    let ids: Vec<autobal_id::Id> = (0..1000)
        .map(|_| autobal_id::Id::random(&mut rng))
        .collect();
    g.bench_function("embed_1000_ids", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &id in &ids {
                let p = autobal_id::embed::ring_xy(id);
                acc += p.x + p.y;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_snapshot_run,
    bench_histograms,
    bench_embedding
);
criterion_main!(benches);
