//! Ablation benches for the design knobs §VI-B-1 studies: Sybil
//! threshold, maxSybils, successor-list length, and a fine churn-rate
//! sweep (footnote 2's diminishing-returns claim).

use autobal_core::{Heterogeneity, Sim, SimConfig, StrategyKind, WorkMeasurement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn base(strategy: StrategyKind) -> SimConfig {
    SimConfig {
        nodes: 100,
        tasks: 10_000,
        strategy,
        ..SimConfig::default()
    }
}

fn bench_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_sybil_threshold");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for thr in [0u64, 1, 5, 10] {
        g.bench_with_input(
            BenchmarkId::new("random_injection", thr),
            &thr,
            |b, &thr| {
                let cfg = SimConfig {
                    sybil_threshold: thr,
                    ..base(StrategyKind::RandomInjection)
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(Sim::new(cfg.clone(), seed).run().runtime_factor)
                });
            },
        );
    }
    g.finish();
}

fn bench_max_sybils(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_max_sybils");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for ms in [5u32, 10] {
        g.bench_with_input(BenchmarkId::new("het_strength", ms), &ms, |b, &ms| {
            let cfg = SimConfig {
                max_sybils: ms,
                heterogeneity: Heterogeneity::Heterogeneous,
                work_measurement: WorkMeasurement::StrengthPerTick,
                ..base(StrategyKind::RandomInjection)
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Sim::new(cfg.clone(), seed).run().runtime_factor)
            });
        });
    }
    g.finish();
}

fn bench_successors(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_successors");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for k in [5usize, 10] {
        g.bench_with_input(BenchmarkId::new("neighbor_injection", k), &k, |b, &k| {
            let cfg = SimConfig {
                num_successors: k,
                ..base(StrategyKind::NeighborInjection)
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Sim::new(cfg.clone(), seed).run().runtime_factor)
            });
        });
    }
    g.finish();
}

fn bench_churn_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_churn_sweep");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for rate in [0.005, 0.01, 0.02, 0.05] {
        g.bench_with_input(
            BenchmarkId::new("churn", format!("{rate}")),
            &rate,
            |b, &rate| {
                let cfg = SimConfig {
                    churn_rate: rate,
                    ..base(StrategyKind::Churn)
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(Sim::new(cfg.clone(), seed).run().runtime_factor)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_threshold,
    bench_max_sybils,
    bench_successors,
    bench_churn_sweep
);
criterion_main!(benches);
