//! Bench family for **Table II**: full simulated runs under the Churn
//! strategy across churn rates. Each iteration is one complete job
//! (100 nodes / 10k tasks — the paper's smallest Table II column).
//! Expect higher churn ⇒ fewer ticks ⇒ *faster* wall time per run.

use autobal_core::{Sim, SimConfig, StrategyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_churn");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for rate in [0.0, 0.0001, 0.001, 0.01] {
        g.bench_with_input(
            BenchmarkId::new("run_100n_10kt", format!("rate_{rate}")),
            &rate,
            |b, &rate| {
                let cfg = SimConfig {
                    nodes: 100,
                    tasks: 10_000,
                    strategy: StrategyKind::Churn,
                    churn_rate: rate,
                    ..SimConfig::default()
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let res = Sim::new(cfg.clone(), seed).run();
                    assert!(res.completed);
                    black_box(res.runtime_factor)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
