//! Drivers for the scalar claims in the running text of §VI (random
//! injection, neighbor injection, invitation), plus the message-count
//! comparison the paper argues qualitatively.

use crate::common::{write_out, Args};
use autobal_core::{Heterogeneity, SimConfig, StrategyKind, WorkMeasurement};
use autobal_workload::tables::{f3, Table};

fn base(nodes: usize, tasks: u64, strategy: StrategyKind) -> SimConfig {
    SimConfig {
        nodes,
        tasks,
        strategy,
        ..SimConfig::default()
    }
}

/// §VI-B scalar claims for random injection.
pub fn text_ri(args: &Args) {
    println!("text_ri: §VI-B random injection claims");
    let mut table = Table::new(vec!["configuration", "mean factor", "σ", "paper says"]);
    let mut log = |name: &str, cfg: SimConfig, paper: &str, seed_salt: u64| -> f64 {
        let s = args.run_cell(&cfg, args.seed ^ seed_salt);
        println!(
            "  {name}: {:.3} ± {:.3}   [{paper}]",
            s.mean_runtime_factor, s.std_runtime_factor
        );
        table.push_row(vec![
            name.to_string(),
            f3(s.mean_runtime_factor),
            f3(s.std_runtime_factor),
            paper.to_string(),
        ]);
        s.mean_runtime_factor
    };

    // Homogeneous factor bands.
    let f_1e5 = log(
        "1000n/1e5t homogeneous",
        base(1000, 100_000, StrategyKind::RandomInjection),
        "never > 1.7, as fast as 1.36",
        1,
    );
    let f_1e6 = log(
        "1000n/1e6t homogeneous",
        base(1000, 1_000_000, StrategyKind::RandomInjection),
        "1.12 – 1.25; ≈0.82 below the 1e5 case",
        2,
    );
    println!(
        "  Δ(1e5 − 1e6) = {:.3} (paper ≈ 0.82 in their bands)",
        f_1e5 - f_1e6
    );

    // Ratio-matched networks: the smaller runs slightly faster.
    let f_small = log(
        "100n/1e4t (100 tasks/node)",
        base(100, 10_000, StrategyKind::RandomInjection),
        "smaller net ≈0.086 faster than ratio-matched larger",
        3,
    );
    let f_big = log(
        "1000n/1e5t (100 tasks/node)",
        base(1000, 100_000, StrategyKind::RandomInjection),
        "(same row as above)",
        1,
    );
    println!(
        "  ratio-matched Δ(big − small) = {:.3} (paper 0.086)",
        f_big - f_small
    );

    // Heterogeneity hurts.
    log(
        "1000n/1e5t heterogeneous + strength work",
        SimConfig {
            heterogeneity: Heterogeneity::Heterogeneous,
            work_measurement: WorkMeasurement::StrengthPerTick,
            ..base(1000, 100_000, StrategyKind::RandomInjection)
        },
        "het worse; worst het avg 4.052 @100 t/n, 1.955 @1000 t/n",
        4,
    );
    log(
        "1000n/1e6t heterogeneous + strength work",
        SimConfig {
            heterogeneity: Heterogeneity::Heterogeneous,
            work_measurement: WorkMeasurement::StrengthPerTick,
            ..base(1000, 1_000_000, StrategyKind::RandomInjection)
        },
        "larger ratio handles heterogeneity better",
        5,
    );

    // Sybil threshold effect (homogeneous 1e5: ≥0.1 reduction).
    log(
        "1000n/1e5t threshold 0",
        base(1000, 100_000, StrategyKind::RandomInjection),
        "baseline for threshold comparison",
        1,
    );
    log(
        "1000n/1e5t threshold 5",
        SimConfig {
            sybil_threshold: 5,
            ..base(1000, 100_000, StrategyKind::RandomInjection)
        },
        "threshold reduces factor ≥0.1 in 100 t/n homogeneous nets",
        6,
    );

    // Background churn on top of random injection: no positive impact.
    log(
        "1000n/1e5t random + churn 0.01",
        SimConfig {
            churn_rate: 0.01,
            ..base(1000, 100_000, StrategyKind::RandomInjection)
        },
        "churn adds ≈ +0.06, never helps",
        7,
    );

    // maxSybils 10 in heterogeneous nets hurts.
    log(
        "1000n/1e5t het strength work, maxSybils 10",
        SimConfig {
            heterogeneity: Heterogeneity::Heterogeneous,
            work_measurement: WorkMeasurement::StrengthPerTick,
            max_sybils: 10,
            ..base(1000, 100_000, StrategyKind::RandomInjection)
        },
        "strength range 1–10 worse than 1–5 (≈ +1 at 100 t/n)",
        8,
    );
    write_out(&args.out, "text_ri.md", &table.to_markdown());
    write_out(&args.out, "text_ri.csv", &table.to_csv());
}

/// §VI-C scalar claims for neighbor injection.
pub fn text_ni(args: &Args) {
    println!("text_ni: §VI-C neighbor injection claims");
    let mut table = Table::new(vec!["configuration", "mean factor", "σ", "paper says"]);
    let mut log = |name: &str, cfg: SimConfig, paper: &str, salt: u64| -> f64 {
        let s = args.run_cell(&cfg, args.seed ^ salt);
        println!(
            "  {name}: {:.3} ± {:.3}   [{paper}]",
            s.mean_runtime_factor, s.std_runtime_factor
        );
        table.push_row(vec![
            name.to_string(),
            f3(s.mean_runtime_factor),
            f3(s.std_runtime_factor),
            paper.to_string(),
        ]);
        s.mean_runtime_factor
    };

    let plain_big = log(
        "1000n/1e5t neighbor",
        base(1000, 100_000, StrategyKind::NeighborInjection),
        "5.033 (2.4 below no strategy)",
        11,
    );
    log(
        "100n/1e4t neighbor",
        base(100, 10_000, StrategyKind::NeighborInjection),
        "3.006 (2 below no strategy)",
        12,
    );
    let smart_big = log(
        "1000n/1e5t smart neighbor",
        base(1000, 100_000, StrategyKind::SmartNeighbor),
        "probing improves factor by ≈1.2 on average",
        13,
    );
    let het = |strategy| SimConfig {
        heterogeneity: Heterogeneity::Heterogeneous,
        work_measurement: WorkMeasurement::StrengthPerTick,
        ..base(1000, 100_000, strategy)
    };
    let plain_het = log(
        "1000n/1e5t neighbor het + strength",
        het(StrategyKind::NeighborInjection),
        "(het side of the smart-vs-plain average)",
        16,
    );
    let smart_het = log(
        "1000n/1e5t smart het + strength",
        het(StrategyKind::SmartNeighbor),
        "(het side of the smart-vs-plain average)",
        17,
    );
    // The paper compares "each strategy's mean homogeneous and
    // heterogeneous runtimes".
    let improvement = (plain_big + plain_het) / 2.0 - (smart_big + smart_het) / 2.0;
    println!("  smart improvement (homo+het mean) = {improvement:.3} (paper ≈ 1.2)");

    let s5 = plain_big;
    let s10 = log(
        "1000n/1e5t neighbor, 10 successors",
        SimConfig {
            num_successors: 10,
            ..base(1000, 100_000, StrategyKind::NeighborInjection)
        },
        "larger numSuccessors ⇒ ≈ −0.3",
        14,
    );
    println!(
        "  successors 10 improvement = {:.3} (paper ≈ 0.3)",
        s5 - s10
    );

    write_out(&args.out, "text_ni.md", &table.to_markdown());
    write_out(&args.out, "text_ni.csv", &table.to_csv());
}

/// §VI-D scalar claims for invitation.
pub fn text_inv(args: &Args) {
    println!("text_inv: §VI-D invitation claims");
    let mut table = Table::new(vec!["configuration", "mean factor", "σ", "paper says"]);
    let mut log = |name: &str, cfg: SimConfig, paper: &str, salt: u64| {
        let s = args.run_cell(&cfg, args.seed ^ salt);
        println!(
            "  {name}: {:.3} ± {:.3}   [{paper}]",
            s.mean_runtime_factor, s.std_runtime_factor
        );
        table.push_row(vec![
            name.to_string(),
            f3(s.mean_runtime_factor),
            f3(s.std_runtime_factor),
            paper.to_string(),
        ]);
    };
    log(
        "100n/1e5t invitation",
        base(100, 100_000, StrategyKind::Invitation),
        "3.749",
        21,
    );
    log(
        "1000n/1e5t invitation",
        base(1000, 100_000, StrategyKind::Invitation),
        "5.673",
        22,
    );
    log(
        "1000n/1e5t invitation het + strength work",
        SimConfig {
            heterogeneity: Heterogeneity::Heterogeneous,
            work_measurement: WorkMeasurement::StrengthPerTick,
            ..base(1000, 100_000, StrategyKind::Invitation)
        },
        "6.097 (het + strength consumption fares much worse)",
        23,
    );
    write_out(&args.out, "text_inv.md", &table.to_markdown());
    write_out(&args.out, "text_inv.csv", &table.to_csv());
}

/// §V-C's "average work per tick" output: the work-completion time
/// series of every strategy on the same placement, as CSV and an SVG
/// line chart. Includes the centralized-oracle comparator to show the
/// price of decentralization.
pub fn worktick(args: &Args) {
    use autobal_core::Sim;
    println!("worktick: work completed per tick, all strategies (1000n/1e5t)");
    let strategies = [
        StrategyKind::None,
        StrategyKind::Churn,
        StrategyKind::RandomInjection,
        StrategyKind::NeighborInjection,
        StrategyKind::SmartNeighbor,
        StrategyKind::Invitation,
        StrategyKind::CentralizedOracle,
    ];
    let mut chart = autobal_viz::LineChart::new(
        "Work completed per tick — 1000 nodes / 100k tasks, same placement",
    );
    chart.y_label = "tasks/tick".into();
    let mut series_f64: Vec<(String, Vec<f64>)> = Vec::new();
    for strat in strategies {
        let cfg = SimConfig {
            strategy: strat,
            churn_rate: if strat == StrategyKind::Churn {
                0.01
            } else {
                0.0
            },
            ..base(1000, 100_000, strat).clone()
        };
        let res = Sim::new(cfg, args.seed).run();
        let ys: Vec<f64> = res.work_per_tick.iter().map(|&w| w as f64).collect();
        println!(
            "  {:<11} mean {:>6.1} tasks/tick over {} ticks",
            strat.label(),
            res.mean_work_per_tick(),
            res.ticks
        );
        chart.push_series(strat.label(), ys.clone());
        series_f64.push((strat.label().to_string(), ys));
    }
    let max_len = series_f64.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let xs: Vec<f64> = (0..max_len).map(|t| t as f64).collect();
    let refs: Vec<(&str, &[f64])> = series_f64
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    write_out(
        &args.out,
        "worktick.csv",
        &autobal_viz::csv::xy_series_csv("tick", &xs, &refs),
    );
    write_out(&args.out, "worktick.svg", &chart.to_svg());
}

/// Per-tick time series of balance quality and network shape under each
/// strategy (§V-C "detailed observations of how the workload is
/// distributed and redistributed throughout the network").
pub fn timeseries(args: &Args) {
    use autobal_core::Sim;
    println!("timeseries: gini / ring size / idle workers over time (1000n/1e5t)");
    let strategies = [
        StrategyKind::None,
        StrategyKind::Churn,
        StrategyKind::RandomInjection,
        StrategyKind::Invitation,
    ];
    let mut gini_chart =
        autobal_viz::LineChart::new("Gini coefficient of workload over time (same placement)");
    gini_chart.y_label = "gini".into();
    let mut vnode_chart =
        autobal_viz::LineChart::new("Virtual nodes in the ring over time (same placement)");
    vnode_chart.y_label = "vnodes".into();
    let mut csv = String::from("strategy,tick,gini,vnodes,active,idle,remaining\n");
    for strat in strategies {
        let mut cfg = SimConfig {
            strategy: strat,
            churn_rate: if strat == StrategyKind::Churn {
                0.01
            } else {
                0.0
            },
            series_interval: Some(5),
            ..base(1000, 100_000, strat)
        };
        args.instrument(&mut cfg);
        let res = Sim::new(cfg, args.seed).run();
        args.write_trace(
            &format!("timeseries_{}", strat.label()),
            res.trace.records(),
        );
        let s = &res.series;
        for i in 0..s.len() {
            csv.push_str(&format!(
                "{},{},{:.4},{},{},{},{}\n",
                strat.label(),
                s.ticks[i],
                s.gini[i],
                s.vnodes[i],
                s.active_workers[i],
                s.idle[i],
                s.remaining[i]
            ));
        }
        gini_chart.push_series(strat.label(), s.gini.clone());
        vnode_chart.push_series(strat.label(), s.vnodes.iter().map(|&v| v as f64).collect());
        println!(
            "  {:<11} samples {:>4}, final gini {:.3}, peak vnodes {}",
            strat.label(),
            s.len(),
            s.gini.last().copied().unwrap_or(0.0),
            res.peak_vnodes
        );
    }
    write_out(&args.out, "timeseries.csv", &csv);
    write_out(&args.out, "timeseries_gini.svg", &gini_chart.to_svg());
    write_out(&args.out, "timeseries_vnodes.svg", &vnode_chart.to_svg());
}

/// §VII future-work extensions implemented in this reproduction:
/// strength-aware invitation and chosen-ID (task-median) placement.
pub fn extensions(args: &Args) {
    println!("extensions: §VII future-work features");
    let mut table = Table::new(vec!["configuration", "mean factor", "σ", "expectation"]);
    let mut log = |name: &str, cfg: SimConfig, note: &str, salt: u64| -> f64 {
        let s = args.run_cell(&cfg, args.seed ^ salt);
        println!(
            "  {name}: {:.3} ± {:.3}   [{note}]",
            s.mean_runtime_factor, s.std_runtime_factor
        );
        table.push_row(vec![
            name.to_string(),
            f3(s.mean_runtime_factor),
            f3(s.std_runtime_factor),
            note.to_string(),
        ]);
        s.mean_runtime_factor
    };
    let het_inv = SimConfig {
        heterogeneity: Heterogeneity::Heterogeneous,
        work_measurement: WorkMeasurement::StrengthPerTick,
        ..base(1000, 100_000, StrategyKind::Invitation)
    };
    let vanilla = log(
        "invitation het + strength (paper strategy)",
        het_inv.clone(),
        "published baseline, paper reports 6.097",
        41,
    );
    let aware = log(
        "invitation het + strength, strength-aware helpers",
        SimConfig {
            strength_aware_invitation: true,
            ..het_inv
        },
        "§VII: 'consider the node strength as a factor'",
        41,
    );
    println!("  strength-aware improvement = {:.3}", vanilla - aware);

    let inv = base(1000, 100_000, StrategyKind::Invitation);
    let v2 = log(
        "invitation midpoint placement",
        inv.clone(),
        "published baseline",
        42,
    );
    let c2 = log(
        "invitation chosen-ID (task-median) placement",
        SimConfig {
            chosen_ids: true,
            ..inv
        },
        "§VII: drop the 'cannot choose own ID' assumption",
        42,
    );
    println!("  chosen-ID improvement (invitation) = {:.3}", v2 - c2);

    let smart = base(1000, 100_000, StrategyKind::SmartNeighbor);
    let v3 = log(
        "smart neighbor midpoint placement",
        smart.clone(),
        "published baseline",
        43,
    );
    let c3 = log(
        "smart neighbor chosen-ID placement",
        SimConfig {
            chosen_ids: true,
            ..smart
        },
        "guaranteed half-split of the probed victim",
        43,
    );
    println!("  chosen-ID improvement (smart) = {:.3}", v3 - c3);
    write_out(&args.out, "extensions.md", &table.to_markdown());
    write_out(&args.out, "extensions.csv", &table.to_csv());
}

/// Message-count comparison: the bandwidth ordering the paper argues.
pub fn messages(args: &Args) {
    println!("messages: strategy bandwidth comparison (1000n / 1e5t)");
    let mut table = Table::new(vec![
        "strategy",
        "sybils created",
        "load queries",
        "invitations",
        "strategy messages",
        "factor",
    ]);
    for strat in [
        StrategyKind::Churn,
        StrategyKind::RandomInjection,
        StrategyKind::NeighborInjection,
        StrategyKind::SmartNeighbor,
        StrategyKind::Invitation,
    ] {
        let cfg = SimConfig {
            churn_rate: if strat == StrategyKind::Churn {
                0.01
            } else {
                0.0
            },
            ..base(1000, 100_000, strat)
        };
        let s = args.run_cell(&cfg, args.seed ^ 31);
        let m = &s.messages;
        let per_trial = |v: u64| v / args.trials.max(1);
        println!(
            "  {:<11} sybils {:>7} queries {:>8} invites {:>7} total {:>8} factor {:.3}",
            strat.label(),
            per_trial(m.sybils_created),
            per_trial(m.load_queries),
            per_trial(m.invitations_sent),
            per_trial(m.strategy_messages()),
            s.mean_runtime_factor
        );
        table.push_row(vec![
            strat.label().to_string(),
            per_trial(m.sybils_created).to_string(),
            per_trial(m.load_queries).to_string(),
            per_trial(m.invitations_sent).to_string(),
            per_trial(m.strategy_messages()).to_string(),
            f3(s.mean_runtime_factor),
        ]);
    }
    write_out(&args.out, "messages.md", &table.to_markdown());
    write_out(&args.out, "messages.csv", &table.to_csv());
}
