//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick | --full | --trials N] [--seed S] [--out DIR]
//!       [--trace PATH] [--events] [--baseline BENCH.json] [targets…]
//!
//! targets: table1 table2 fig1 fig2_3 fig4_6 fig7_9 fig10 fig11_12
//!          fig13_14 text_ri text_ni text_inv messages extensions
//!          worktick timeseries chord_hops chord_churn
//!          maintenance_cost async_latency resilience byzantine
//!          eventtime trace metrics
//!                                                        (default: all)
//!
//! The `perf` target (never part of the default set) runs the pinned
//! benchmark scenarios and writes `BENCH_10.json`; `--baseline PATH`
//! compares it against a committed baseline and fails on a >2x
//! throughput regression.
//! ```
//!
//! `--quick` (default) uses 5 trials per cell; `--full` uses the paper's
//! 100. Outputs land in `results/` as CSV + Markdown + SVG. `--trace`
//! arms the flight recorder in single-run experiments and dumps JSONL
//! traces under the given base path; `--events` records structured
//! event logs; the `trace` target produces the full telemetry artifact
//! set (JSONL dumps, span breakdowns, divergence diff, histograms).

mod byzantine;
mod chordx;
mod common;
mod eventcmp;
mod figures;
mod metricsx;
mod perf;
mod resilience;
mod tables;
mod textual;
mod tracex;

use common::Args;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: autobal_meminstr::CountingAlloc = autobal_meminstr::CountingAlloc::new();

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro [--quick|--full|--trials N] [--seed S] [--out DIR] \
                 [--trace PATH] [--events] [--baseline BENCH.json] [targets…]"
            );
            std::process::exit(2);
        }
    };
    println!(
        "repro: trials={} seed={:#x} out={}",
        args.trials,
        args.seed,
        args.out.display()
    );
    // Wall-clock is the one intentionally nondeterministic output; it is
    // reported on stderr only so result artifacts stay byte-identical.
    // autobal-lint: allow(determinism, "wall-clock timing is reported on stderr only, never in results")
    let t0 = std::time::Instant::now();

    if args.wants("table1") {
        tables::table1(&args);
    }
    if args.wants("table2") {
        tables::table2(&args);
    }
    if args.wants("fig1") {
        figures::fig1(&args);
    }
    if args.wants("fig2_3") || args.wants("fig2") || args.wants("fig3") {
        figures::fig2_3(&args);
    }
    if args.wants("fig4_6") {
        figures::fig4_6(&args);
    }
    if args.wants("fig7_9") {
        figures::fig7_9(&args);
    }
    if args.wants("fig10") {
        figures::fig10(&args);
    }
    if args.wants("fig11_12") {
        figures::fig11_12(&args);
    }
    if args.wants("fig13_14") {
        figures::fig13_14(&args);
    }
    if args.wants("text_ri") {
        textual::text_ri(&args);
    }
    if args.wants("text_ni") {
        textual::text_ni(&args);
    }
    if args.wants("text_inv") {
        textual::text_inv(&args);
    }
    if args.wants("messages") {
        textual::messages(&args);
    }
    if args.wants("extensions") {
        textual::extensions(&args);
    }
    if args.wants("worktick") {
        textual::worktick(&args);
    }
    if args.wants("timeseries") {
        textual::timeseries(&args);
    }
    if args.wants("chord_hops") {
        chordx::chord_hops(&args);
    }
    if args.wants("chord_churn") {
        chordx::chord_churn(&args);
    }
    if args.wants("maintenance_cost") {
        chordx::maintenance_cost(&args);
    }
    if args.wants("async_latency") {
        chordx::async_latency(&args);
    }
    if args.wants("resilience") {
        resilience::resilience(&args);
    }
    if args.wants("byzantine") {
        byzantine::byzantine(&args);
    }
    if args.wants("eventtime") {
        eventcmp::eventtime(&args);
    }
    if args.wants("trace") {
        tracex::trace(&args);
    }
    if args.wants("metrics") {
        metricsx::metrics(&args);
    }
    // Opt-in only: wall-clock benchmarks are meaningless in a default
    // "regenerate everything" run and would slow it down.
    if args.targets.iter().any(|t| t == "perf") {
        perf::perf(&args);
    }

    eprintln!("done in {:?}", t0.elapsed());
}
