//! Table I and Table II drivers.

use crate::common::write_out;
use crate::common::Args;
use autobal_core::{SimConfig, StrategyKind};
use autobal_stats::{spacings, summary::average_summaries};
use autobal_workload::initial_load_summary;
use autobal_workload::tables::{f3, Table};
use rayon::prelude::*;

/// Table I: median workload and σ of the initial distribution for nine
/// (nodes, tasks) combinations, averaged over trials, with the spacings
/// theory prediction alongside.
pub fn table1(args: &Args) {
    println!("table1: initial workload distribution (paper Table I)");
    let combos: [(usize, usize); 9] = [
        (1000, 100_000),
        (1000, 500_000),
        (1000, 1_000_000),
        (5000, 100_000),
        (5000, 500_000),
        (5000, 1_000_000),
        (10_000, 100_000),
        (10_000, 500_000),
        (10_000, 1_000_000),
    ];
    let paper_median = [
        69.410, 346.570, 692.300, 13.810, 69.280, 138.360, 7.000, 34.550, 69.180,
    ];
    let paper_sigma = [
        137.27, 499.169, 996.982, 20.477, 100.344, 200.564, 10.492, 50.366, 100.319,
    ];

    let mut table = Table::new(vec![
        "Nodes",
        "Tasks",
        "Median (measured)",
        "Median (paper)",
        "Median (theory T/n·ln2)",
        "Sigma (measured)",
        "Sigma (paper)",
    ]);
    for (i, &(nodes, tasks)) in combos.iter().enumerate() {
        let summaries: Vec<_> = (0..args.trials)
            .into_par_iter()
            .map(|t| initial_load_summary(nodes, tasks, args.seed, t))
            .collect();
        let avg = average_summaries(&summaries).expect("trials > 0");
        let theory = spacings::expected_median_load(nodes as u64, tasks as u64);
        table.push_row(vec![
            nodes.to_string(),
            tasks.to_string(),
            f3(avg.median),
            f3(paper_median[i]),
            f3(theory),
            f3(avg.std_dev),
            f3(paper_sigma[i]),
        ]);
        println!(
            "  {nodes} nodes / {tasks} tasks: median {:.3} (paper {:.3}), sigma {:.3} (paper {:.3})",
            avg.median, paper_median[i], avg.std_dev, paper_sigma[i]
        );
    }
    write_out(&args.out, "table1.md", &table.to_markdown());
    write_out(&args.out, "table1.csv", &table.to_csv());
}

/// Table II: runtime factor of the Churn strategy across churn rates and
/// network shapes.
pub fn table2(args: &Args) {
    println!("table2: churn strategy runtime factors (paper Table II)");
    let configs: [(usize, u64); 5] = [
        (1000, 100_000),
        (1000, 1_000_000),
        (100, 10_000),
        (100, 100_000),
        (100, 1_000_000),
    ];
    let rates = [0.0, 0.0001, 0.001, 0.01];
    // Paper Table II, rows by rate then columns by config.
    let paper: [[f64; 5]; 4] = [
        [7.476, 7.467, 5.043, 5.022, 5.016],
        [7.122, 5.732, 4.934, 4.362, 3.077],
        [6.047, 3.674, 4.391, 3.019, 1.863],
        [3.721, 2.104, 3.076, 1.873, 1.309],
    ];

    let mut table = Table::new(vec![
        "Churn Rate",
        "1000n/1e5t",
        "paper",
        "1000n/1e6t",
        "paper",
        "100n/1e4t",
        "paper",
        "100n/1e5t",
        "paper",
        "100n/1e6t",
        "paper",
    ]);
    for (ri, &rate) in rates.iter().enumerate() {
        let mut row = vec![format!("{rate}")];
        for (ci, &(nodes, tasks)) in configs.iter().enumerate() {
            let cfg = SimConfig {
                nodes,
                tasks,
                strategy: StrategyKind::Churn,
                churn_rate: rate,
                ..SimConfig::default()
            };
            let s = args.run_cell(&cfg, args.seed ^ (ri as u64) << 8 ^ ci as u64);
            row.push(f3(s.mean_runtime_factor));
            row.push(f3(paper[ri][ci]));
            println!(
                "  rate {rate} {nodes}n/{tasks}t: {:.3} (paper {:.3})",
                s.mean_runtime_factor, paper[ri][ci]
            );
        }
        table.push_row(row);
    }
    write_out(&args.out, "table2.md", &table.to_markdown());
    write_out(&args.out, "table2.csv", &table.to_csv());
}
