//! Figure drivers: the workload-distribution histograms (Figures 1 and
//! 4–14) and the ring visualizations (Figures 2–3).

use crate::common::{aligned_histograms, run_with_snapshots, write_out, Args};
use autobal_core::{Heterogeneity, SimConfig, StrategyKind};
use autobal_id::Id;
use autobal_stats::rng::{domains, substream};
use autobal_stats::LogHistogram;
use autobal_viz::csv::histogram_series_csv;
use autobal_viz::{render_histogram, BarChart, RingScatter};
use autobal_workload::gen;

/// Figure 1: probability distribution of workload, 1000 nodes and one
/// million tasks, log-binned.
pub fn fig1(args: &Args) {
    println!("fig1: workload probability distribution (1000n / 1e6t)");
    let mut all_loads = Vec::new();
    for t in 0..args.trials.min(10) {
        all_loads.extend(autobal_workload::placement::initial_loads(
            1000, 1_000_000, args.seed, t,
        ));
    }
    let hist = LogHistogram::build(&all_loads);
    let rows = hist.rows();
    let mut sorted = all_loads.clone();
    sorted.sort_unstable();
    let median = autobal_stats::summary::percentile_sorted(&sorted, 50.0);
    println!(
        "  median {median:.1} (paper's dashed line ≈ 692); max {}",
        sorted.last().unwrap()
    );
    let csv = histogram_series_csv(&[("nodes", &rows)]);
    write_out(&args.out, "fig1.csv", &csv);
    let chart = BarChart::from_histogram_rows(
        format!("Fig 1 — workload distribution, 1000 nodes / 1e6 tasks (median {median:.0})"),
        &[("nodes", rows.as_slice())],
    );
    write_out(&args.out, "fig1.svg", &chart.to_svg());
    println!("{}", render_histogram("fig1 (log2 bins)", &rows, 48));
}

/// Figures 2 and 3: ring scatter of 10 nodes / 100 tasks, SHA-1 placed
/// versus evenly spaced.
pub fn fig2_3(args: &Args) {
    println!("fig2/fig3: ring visualizations (10 nodes, 100 tasks)");
    let mut prng = substream(args.seed, 0, domains::PLACEMENT);
    let mut trng = substream(args.seed, 0, domains::TASKS);
    let nodes = gen::sha1_ids(10, &mut prng);
    let tasks = gen::sha1_keys(100, &mut trng);

    let fig2 = RingScatter::new(
        "Fig 2 — SHA-1 placed nodes (red) and tasks (blue)",
        nodes.clone(),
        tasks.clone(),
    );
    write_out(&args.out, "fig2.svg", &fig2.to_svg());

    let even = gen::evenly_spaced_ids(10);
    let fig3 = RingScatter::new(
        "Fig 3 — evenly spaced nodes (red), SHA-1 tasks (blue)",
        even.clone(),
        tasks.clone(),
    );
    write_out(&args.out, "fig3.svg", &fig3.to_svg());

    // Coordinates CSV for both figures.
    let mut csv = String::from("figure,kind,id_hex,x,y\n");
    for (fig, ns) in [("fig2", &nodes), ("fig3", &even)] {
        for &n in ns.iter() {
            let p = autobal_id::embed::ring_xy(n);
            csv.push_str(&format!(
                "{fig},node,{},{:.6},{:.6}\n",
                n.to_hex(),
                p.x,
                p.y
            ));
        }
        for &t in &tasks {
            let p = autobal_id::embed::ring_xy(t);
            csv.push_str(&format!(
                "{fig},task,{},{:.6},{:.6}\n",
                t.to_hex(),
                p.x,
                p.y
            ));
        }
    }
    write_out(&args.out, "fig2_3_coords.csv", &csv);

    // Quantify the point of the figures: even spacing balances node
    // arcs but tasks still cluster.
    let sha1_loads = autobal_workload::placement::loads_for_placement(&nodes, tasks.clone());
    let even_loads = autobal_workload::placement::loads_for_placement(&even, tasks);
    println!(
        "  SHA-1 node Gini {:.3} vs evenly-spaced Gini {:.3}",
        autobal_stats::gini(&sha1_loads),
        autobal_stats::gini(&even_loads)
    );
}

/// One two-network comparison figure: runs both configs on the same
/// placement seed, snapshots at the given ticks, and writes a CSV + SVG
/// per tick.
#[allow(clippy::too_many_arguments)]
fn comparison_figure(
    args: &Args,
    stem: &str,
    title: &str,
    label_a: &str,
    cfg_a: SimConfig,
    label_b: &str,
    cfg_b: SimConfig,
    ticks: &[u64],
) {
    let snap_ticks: Vec<u64> = ticks.to_vec();
    let res_a = run_with_snapshots(args, &format!("{stem}_{label_a}"), cfg_a, &snap_ticks);
    let res_b = run_with_snapshots(args, &format!("{stem}_{label_b}"), cfg_b, &snap_ticks);
    for &t in ticks {
        let (Some(sa), Some(sb)) = (res_a.snapshot_at(t), res_b.snapshot_at(t)) else {
            // A run can finish before a late snapshot tick; skip.
            println!("  (no snapshot at tick {t}: one network already finished)");
            continue;
        };
        let hists = aligned_histograms(&[&sa.loads, &sb.loads]);
        let csv = histogram_series_csv(&[(label_a, &hists[0]), (label_b, &hists[1])]);
        let name = format!("{stem}_t{t}");
        write_out(&args.out, &format!("{name}.csv"), &csv);
        let chart = BarChart::from_histogram_rows(
            format!("{title} — tick {t}"),
            &[
                (label_a, hists[0].as_slice()),
                (label_b, hists[1].as_slice()),
            ],
        );
        write_out(&args.out, &format!("{name}.svg"), &chart.to_svg());
        println!(
            "  tick {t}: idle {} ({label_a}) vs {} ({label_b}); max {} vs {}",
            sa.idle,
            sb.idle,
            sa.loads.iter().max().unwrap_or(&0),
            sb.loads.iter().max().unwrap_or(&0)
        );
    }
    println!(
        "  factors: {label_a} {:.3} vs {label_b} {:.3}",
        res_a.runtime_factor, res_b.runtime_factor
    );
}

fn base_1000() -> SimConfig {
    SimConfig {
        nodes: 1000,
        tasks: 100_000,
        ..SimConfig::default()
    }
}

/// Figures 4–6: no-strategy vs churn 0.01 at ticks 0, 5, 35.
pub fn fig4_6(args: &Args) {
    println!("fig4-6: churn 0.01 vs none (1000n / 1e5t) at ticks 0, 5, 35");
    comparison_figure(
        args,
        "fig4_6",
        "Fig 4–6 — no strategy vs churn 0.01",
        "none",
        base_1000(),
        "churn_0.01",
        SimConfig {
            strategy: StrategyKind::Churn,
            churn_rate: 0.01,
            ..base_1000()
        },
        &[0, 5, 35],
    );
}

/// Figures 7–8: no-strategy vs random injection at ticks 5 and 35;
/// Figure 9: churn vs random injection at tick 35.
pub fn fig7_9(args: &Args) {
    println!("fig7-9: random injection vs none / churn (1000n / 1e5t)");
    comparison_figure(
        args,
        "fig7_8",
        "Fig 7–8 — no strategy vs random injection",
        "none",
        base_1000(),
        "random",
        SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..base_1000()
        },
        &[5, 35],
    );
    comparison_figure(
        args,
        "fig9",
        "Fig 9 — churn 0.01 vs random injection",
        "churn_0.01",
        SimConfig {
            strategy: StrategyKind::Churn,
            churn_rate: 0.01,
            ..base_1000()
        },
        "random",
        SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..base_1000()
        },
        &[35],
    );
}

/// Figure 10: heterogeneous networks, random injection vs none, tick 35.
///
/// Heterogeneity only influences behavior through strength: under the
/// default one-task-per-tick work measurement a threshold-0 node never
/// holds more than one Sybil, so the budget cap cannot bind and the run
/// is identical to the homogeneous one. The paper's heterogeneous
/// observations (§VI-B) are therefore reproduced under strength-based
/// consumption.
pub fn fig10(args: &Args) {
    println!("fig10: heterogeneous random injection vs none (tick 35)");
    let het = SimConfig {
        heterogeneity: Heterogeneity::Heterogeneous,
        work_measurement: autobal_core::WorkMeasurement::StrengthPerTick,
        ..base_1000()
    };
    comparison_figure(
        args,
        "fig10",
        "Fig 10 — heterogeneous: no strategy vs random injection",
        "none_het",
        het.clone(),
        "random_het",
        SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..het
        },
        &[35],
    );
}

/// Figure 11: neighbor injection vs none; Figure 12: smart neighbor vs
/// none (tick 35).
pub fn fig11_12(args: &Args) {
    println!("fig11/fig12: neighbor and smart neighbor vs none (tick 35)");
    comparison_figure(
        args,
        "fig11",
        "Fig 11 — no strategy vs neighbor injection",
        "none",
        base_1000(),
        "neighbor",
        SimConfig {
            strategy: StrategyKind::NeighborInjection,
            ..base_1000()
        },
        &[35],
    );
    comparison_figure(
        args,
        "fig12",
        "Fig 12 — no strategy vs smart neighbor injection",
        "none",
        base_1000(),
        "smart",
        SimConfig {
            strategy: StrategyKind::SmartNeighbor,
            ..base_1000()
        },
        &[35],
    );
}

/// Figure 13: invitation vs none; Figure 14: invitation vs smart
/// neighbor (tick 35).
pub fn fig13_14(args: &Args) {
    println!("fig13/fig14: invitation vs none / smart neighbor (tick 35)");
    comparison_figure(
        args,
        "fig13",
        "Fig 13 — no strategy vs invitation",
        "none",
        base_1000(),
        "invitation",
        SimConfig {
            strategy: StrategyKind::Invitation,
            ..base_1000()
        },
        &[35],
    );
    comparison_figure(
        args,
        "fig14",
        "Fig 14 — smart neighbor vs invitation",
        "smart",
        SimConfig {
            strategy: StrategyKind::SmartNeighbor,
            ..base_1000()
        },
        "invitation",
        SimConfig {
            strategy: StrategyKind::Invitation,
            ..base_1000()
        },
        &[35],
    );
}

/// Sanity helper shared by tests: the tick-35 idle count of a strategy
/// run must undercut the baseline's.
#[allow(dead_code)]
pub fn idle_at_tick(mut cfg: SimConfig, seed: u64, tick: u64) -> usize {
    cfg.snapshot_ticks = vec![tick];
    autobal_core::Sim::new(cfg, seed)
        .run()
        .snapshot_at(tick)
        .map(|s| s.idle)
        .unwrap_or(0)
}

#[allow(dead_code)]
pub fn _silence(_: &[Id]) {}
