//! Chord substrate experiments: routing scalability and churn
//! resilience — the protocol-level properties the paper assumes
//! ("Chord (and all DHTs) have the qualities we desire … scalability,
//! fault tolerance, and load-balancing").

use crate::common::{write_out, Args};
use autobal_chord::{routing, NetConfig, Network};
use autobal_id::{sha1::sha1_id_of_u64, Id};
use autobal_stats::rng::{domains, substream};
use autobal_workload::tables::{f3, Table};
use rand::Rng;

/// Routing scalability: measured mean lookup hops versus the ½·log₂ n
/// theory across network sizes.
pub fn chord_hops(args: &Args) {
    println!("chord_hops: lookup hop scaling");
    let mut table = Table::new(vec!["nodes", "mean hops", "max hops", "theory ½·log2 n"]);
    for n in [32usize, 128, 512, 2048] {
        let mut rng = substream(args.seed, 0, domains::PLACEMENT);
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        let stats = routing::measure_hops(&mut net, 500, &mut rng);
        assert_eq!(stats.failed, 0, "lookups on a stable ring never fail");
        println!(
            "  n={n:<5} mean {:.2} max {} (theory {:.2})",
            stats.mean(),
            stats.max_hops,
            routing::expected_hops(n)
        );
        table.push_row(vec![
            n.to_string(),
            f3(stats.mean()),
            stats.max_hops.to_string(),
            f3(routing::expected_hops(n)),
        ]);
    }
    write_out(&args.out, "chord_hops.md", &table.to_markdown());
    write_out(&args.out, "chord_hops.csv", &table.to_csv());
}

/// Footnote 2 of the paper: "rising maintenance costs after
/// [churn 0.01] make any amount of churn after a certain point
/// prohibitively expensive. Determination of this point requires
/// implementation on a real network." Our protocol substrate *is* that
/// implementation: we run the Chord overlay under each churn rate and
/// measure protocol messages per node per cycle, then combine with the
/// tick simulator's speedup to show the cost/benefit crossover.
pub fn maintenance_cost(args: &Args) {
    println!("maintenance_cost: protocol cost vs churn benefit (footnote 2)");
    let n = 128usize;
    let cycles = 60u32;
    let mut table = Table::new(vec![
        "churn rate",
        "msgs/node/cycle",
        "pings/node/cycle",
        "key transfers/node/cycle",
        "runtime factor (tick sim)",
        "speedup vs no churn",
    ]);
    // Tick-simulator benefit at each rate (100n/1e4t, quick trials).
    let base_cfg = autobal_core::SimConfig {
        nodes: 100,
        tasks: 10_000,
        strategy: autobal_core::StrategyKind::Churn,
        ..autobal_core::SimConfig::default()
    };
    let base_factor = args
        .run_cell(&base_cfg, args.seed ^ 0xC0)
        .mean_runtime_factor;

    for rate in [0.0, 0.001, 0.01, 0.05, 0.1] {
        // Protocol cost: run the substrate with matching churn.
        let mut rng = substream(args.seed, 2, domains::CHURN);
        let mut net = Network::bootstrap(NetConfig::default(), n, &mut rng);
        for k in 0..1000u64 {
            net.insert_key(sha1_id_of_u64(k));
        }
        net.maintenance_cycle();
        let before_total = net.stats.total();
        let before_pings = net.stats.ping;
        let before_transfers = net.stats.key_transfer;
        // A waiting pool the size of the network, exactly like §IV-A.
        let mut waiting = n;
        for _ in 0..cycles {
            // Bernoulli churn at the paper's per-tick rate.
            let ids = net.node_ids();
            for id in ids {
                if net.len() > 8 && rng.gen::<f64>() <= rate {
                    net.fail(id).unwrap();
                    waiting += 1;
                }
            }
            // Snapshot the pool size: joins this cycle shrink `waiting`
            // without changing how many candidates get a coin flip.
            let pool = waiting;
            for _ in 0..pool {
                if rng.gen::<f64>() <= rate {
                    let contact = net.node_ids()[0];
                    if net.join(Id::random(&mut rng), contact).is_ok() {
                        waiting -= 1;
                    }
                }
            }
            net.maintenance_cycle();
        }
        let msgs = (net.stats.total() - before_total) as f64 / (n as f64 * cycles as f64);
        let pings = (net.stats.ping - before_pings) as f64 / (n as f64 * cycles as f64);
        let transfers =
            (net.stats.key_transfer - before_transfers) as f64 / (n as f64 * cycles as f64);

        let factor = if rate == 0.0 {
            base_factor
        } else {
            let cfg = autobal_core::SimConfig {
                churn_rate: rate,
                ..base_cfg.clone()
            };
            args.run_cell(&cfg, args.seed ^ 0xC1).mean_runtime_factor
        };
        println!(
            "  rate {rate:<6}: {msgs:.1} msgs/node/cycle ({pings:.2} pings, {transfers:.2} transfers), factor {factor:.3}, speedup {:.2}x",
            base_factor / factor
        );
        table.push_row(vec![
            format!("{rate}"),
            f3(msgs),
            f3(pings),
            f3(transfers),
            f3(factor),
            f3(base_factor / factor),
        ]);
    }
    write_out(&args.out, "maintenance_cost.md", &table.to_markdown());
    write_out(&args.out, "maintenance_cost.csv", &table.to_csv());
}

/// Asynchronous message-level measurements: lookup latency distribution
/// and post-failure ring convergence time, on the event-driven overlay.
pub fn async_latency(args: &Args) {
    use autobal_chord::{EventConfig, EventNet};
    println!("async_latency: event-driven overlay measurements");
    let cfg = EventConfig::default();
    let mut table = Table::new(vec![
        "nodes",
        "lookups",
        "mean latency (time units)",
        "p95 latency",
        "timeouts",
        "mean hops",
    ]);
    for n in [32usize, 128, 512] {
        let mut rng = substream(args.seed, 3, domains::PLACEMENT);
        let mut net = EventNet::bootstrap(cfg, n, &mut rng);
        let ids = net.node_ids();
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            let origin = ids[(i as usize * 17) % ids.len()];
            if let Some(r) = net.lookup(origin, sha1_id_of_u64(i)) {
                reqs.push(r);
            }
        }
        net.run_until(20_000);
        let done: Vec<_> = net
            .take_completed()
            .into_iter()
            .filter(|l| reqs.contains(&l.req))
            .collect();
        let ok: Vec<_> = done.iter().filter(|l| l.owner.is_some()).collect();
        let timeouts = done.len() - ok.len();
        let mut lats: Vec<u64> = ok.iter().map(|l| l.latency).collect();
        lats.sort_unstable();
        let mean = lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64;
        let p95 = lats
            .get((lats.len() * 95 / 100).min(lats.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0);
        let hops = ok.iter().map(|l| l.hops as f64).sum::<f64>() / ok.len().max(1) as f64;
        println!(
            "  n={n:<4} {} lookups: mean {mean:.0}, p95 {p95}, timeouts {timeouts}, hops {hops:.2}",
            done.len()
        );
        table.push_row(vec![
            n.to_string(),
            done.len().to_string(),
            f3(mean),
            p95.to_string(),
            timeouts.to_string(),
            f3(hops),
        ]);
    }

    // Convergence after a 12.5% simultaneous failure.
    let mut rng = substream(args.seed, 4, domains::CHURN);
    let mut net = EventNet::bootstrap(cfg, 128, &mut rng);
    let ids = net.node_ids();
    for id in ids.iter().step_by(8) {
        net.fail(*id);
    }
    let t0 = net.now();
    let mut converged_at = None;
    for round in 1..=60u64 {
        net.run_until(t0 + round * cfg.stabilize_every);
        if net.is_ring_consistent() {
            converged_at = Some(round);
            break;
        }
    }
    match converged_at {
        Some(r) => {
            println!("  ring reconverged {r} stabilize intervals after killing 16/128 nodes")
        }
        None => println!("  WARNING: ring did not reconverge within 60 intervals"),
    }
    write_out(&args.out, "async_latency.md", &table.to_markdown());
    write_out(&args.out, "async_latency.csv", &table.to_csv());
}

/// Churn resilience: a 64-node network storing 500 values endures
/// rounds of simultaneous failure+join; we track lookup success, data
/// completeness, and maintenance message cost per round.
pub fn chord_churn(args: &Args) {
    println!("chord_churn: protocol resilience under sustained churn");
    let mut rng = substream(args.seed, 1, domains::CHURN);
    let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng);
    let from0 = net.node_ids()[0];
    for i in 0..500u64 {
        net.put(
            from0,
            sha1_id_of_u64(i),
            bytes::Bytes::from(format!("v{i}")),
        )
        .unwrap();
    }
    net.maintenance_cycle();

    let mut table = Table::new(vec![
        "round",
        "peers",
        "values intact",
        "lookup success %",
        "mean hops",
        "msgs this round",
    ]);
    let rounds = 30;
    for round in 1..=rounds {
        let before = net.stats.total();
        // Two failures and two joins per round.
        for _ in 0..2 {
            let ids = net.node_ids();
            net.fail(ids[rng.gen_range(0..ids.len())]).unwrap();
        }
        for _ in 0..2 {
            let contact = net.node_ids()[0];
            net.join(Id::random(&mut rng), contact).unwrap();
        }
        net.maintenance_cycle();

        // Probe 100 random stored values mid-churn.
        let from = net.node_ids()[0];
        let mut ok = 0u32;
        let mut hops = 0u64;
        for probe in 0..100u64 {
            let key = sha1_id_of_u64(probe * 5 % 500);
            if let Ok(res) = net.lookup(from, key) {
                ok += 1;
                hops += res.hops as u64;
            }
        }
        let row = vec![
            round.to_string(),
            net.len().to_string(),
            net.total_values().to_string(),
            format!("{}", ok),
            f3(hops as f64 / ok.max(1) as f64),
            (net.stats.total() - before).to_string(),
        ];
        if round % 10 == 0 || round == 1 {
            println!(
                "  round {round:>2}: peers {}, values {}, lookups ok {ok}/100, msgs {}",
                net.len(),
                net.total_values(),
                net.stats.total() - before
            );
        }
        table.push_row(row);
    }
    // Values may transiently dip during a round but must fully recover.
    for _ in 0..3 {
        net.maintenance_cycle();
    }
    println!(
        "  final: {} values intact of 500 after {rounds} churn rounds",
        net.total_values()
    );
    write_out(&args.out, "chord_churn.md", &table.to_markdown());
    write_out(&args.out, "chord_churn.csv", &table.to_csv());
}
