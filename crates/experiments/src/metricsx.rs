//! `metrics` — the streaming metrics plane end to end: record the same
//! seeded run on all three substrates with ring slots on, dump the
//! integer-only sample streams as JSONL (the `autobal-monitor` input),
//! and derive the per-sample CSV, the Prometheus text exposition, and
//! a ring-heat SVG snapshot.

use crate::common::{write_out, Args};
use autobal::event_sim::{run_event_sim, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal_core::{Sim, SimConfig, StrategyKind};
use autobal_metrics::expo::{render_exposition, validate_exposition};
use autobal_metrics::sample::{timeseries_csv, to_jsonl};
use autobal_metrics::MetricsSample;
use autobal_viz::{RingHeat, RingHeatSlot};

const NODES: usize = 16;
const TASKS: u64 = 800;

fn ring_snapshot(samples: &[MetricsSample]) -> String {
    let latest = samples.last();
    let slots: Vec<RingHeatSlot> = latest
        .map(|s| {
            s.ring
                .iter()
                .map(|slot| RingHeatSlot {
                    label: slot.worker,
                    frac: autobal_id::Id::from_hex(&slot.pos)
                        .map_or(0.0, |id| id.to_unit_fraction()),
                    load: slot.load,
                    vnodes: 1 + slot.sybils,
                    flagged: slot.quarantined > 0,
                })
                .collect()
        })
        .unwrap_or_default();
    let title = latest.map_or_else(
        || "ring (no samples)".to_string(),
        |s| format!("ring @ t={}", s.time),
    );
    RingHeat::new(title, slots).to_svg()
}

pub fn metrics(args: &Args) {
    println!("metrics: streaming sample streams on all three substrates ({NODES}n/{TASKS}t)");

    // Oracle ring: the incremental LoadDist path.
    let oracle = Sim::new(
        SimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_metrics: true,
            metrics_interval: Some(1),
            metrics_ring: true,
            ..SimConfig::default()
        },
        args.seed,
    )
    .run();

    // Chord protocol: the batch sweep path, plus message-fate counters.
    let pcfg = ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: StrategyKind::RandomInjection,
        check_interval: 1,
        record_metrics: true,
        metrics_interval: Some(1),
        metrics_ring: true,
        ..ProtocolSimConfig::default()
    };
    let chord = run_protocol_sim(&pcfg, args.seed);

    // Event-time substrate: samples stamped with the event clock.
    let event = run_event_sim(
        &EventSimConfig {
            proto: pcfg,
            ..EventSimConfig::default()
        },
        args.seed,
    );

    println!(
        "  samples: oracle {} | chord {} | event {}",
        oracle.metrics.len(),
        chord.metrics.len(),
        event.metrics.len()
    );
    write_out(
        &args.out,
        "metrics_oracle.jsonl",
        &to_jsonl(&oracle.metrics),
    );
    write_out(&args.out, "metrics_chord.jsonl", &to_jsonl(&chord.metrics));
    write_out(&args.out, "metrics_event.jsonl", &to_jsonl(&event.metrics));

    // Derived artifacts, shared with `autobal-trace timeseries/export`.
    write_out(
        &args.out,
        "metrics_timeseries.csv",
        &timeseries_csv(&chord.metrics),
    );
    if let Some(last) = chord.metrics.last() {
        let expo = render_exposition(last);
        validate_exposition(&expo).expect("exposition self-validates");
        write_out(&args.out, "metrics_exposition.txt", &expo);
    }
    write_out(
        &args.out,
        "metrics_ring.svg",
        &ring_snapshot(&chord.metrics),
    );
}
