//! `repro byzantine` — load balancing under Byzantine load reporters.
//!
//! The paper's strategies steer entirely by *reported* loads, so the
//! obvious attack is not crashing nodes but lying to them. This driver
//! marks a seeded fraction of workers Byzantine ([`AdversaryPlan`]),
//! sweeps lying policy × Byzantine fraction × cross-checking probe
//! budget `k` on **both** real substrates (synchronous protocol shim
//! and asynchronous event wire), and scores, per cell:
//!
//! * final Gini over per-worker tasks consumed and the runtime factor,
//!   each also as a ratio against the honest run (the degradation),
//! * the `load_query` bill — cross-checking is not free; every
//!   redundant probe is a real billed message — plus the `lied`
//!   meta-counter and the number of reporters quarantined.
//!
//! The headline claims this table backs: at 25% liars the smart
//! neighbor strategy degrades measurably without defense (`k = 0`), and
//! cross-checking (`k = 2`) recovers most of the honest ordering at the
//! price of an explicit probe bill. The invitation strategy is printed
//! as a control: it steers by announcements, never by load probes, so
//! the `lied` counter stays at zero by construction.

use crate::common::{write_out, Args};
use autobal::event_sim::{run_event_sim, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal_chord::{AdversaryPlan, LiePolicy};
use autobal_core::strategy::crosscheck::CrossCheckConfig;
use autobal_core::trace::SimEvent;
use autobal_core::StrategyKind;
use autobal_stats::fairness::gini;
use autobal_workload::tables::{f3, Table};
use rayon::prelude::*;

const NODES: usize = 32;
const TASKS: u64 = 1_600;

const FRACTIONS: [f64; 2] = [0.125, 0.25];
const POLICIES: [(LiePolicy, &str); 4] = [
    (LiePolicy::UnderReport, "under"),
    (LiePolicy::OverReport, "over"),
    (LiePolicy::RandomNoise, "noise"),
    (LiePolicy::FlipFlop, "flipflop"),
];
const BUDGETS: [usize; 2] = [0, 2];

#[derive(Debug, Clone, Copy, PartialEq)]
enum SubstrateKind {
    Protocol,
    Event,
}

impl SubstrateKind {
    fn label(self) -> &'static str {
        match self {
            SubstrateKind::Protocol => "protocol",
            SubstrateKind::Event => "event",
        }
    }
}

/// One cell of the sweep. `policy` is `None` for the honest baseline.
#[derive(Debug, Clone, Copy)]
struct Spec {
    substrate: SubstrateKind,
    policy: Option<(LiePolicy, &'static str)>,
    fraction: f64,
    k: usize,
}

/// What one run contributes to a cell mean.
struct Obs {
    gini: f64,
    factor: f64,
    bill: u64,
    lied: u64,
    quarantined: u64,
    completed: bool,
}

struct Cell {
    spec: Spec,
    gini: f64,
    factor: f64,
    bill: u64,
    lied: u64,
    quarantined: u64,
    completed: u64,
}

fn count_quarantined(events: &[SimEvent]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e, SimEvent::Quarantined { .. }))
        .count() as u64
}

fn proto_cfg(spec: &Spec, fault_seed: u64) -> ProtocolSimConfig {
    let adversary = match spec.policy {
        Some((policy, _)) => AdversaryPlan::lying(fault_seed, spec.fraction, policy),
        None => AdversaryPlan::default(),
    };
    ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: StrategyKind::SmartNeighbor,
        record_events: true,
        adversary,
        cross_check: CrossCheckConfig::with_budget(spec.k),
        ..ProtocolSimConfig::default()
    }
}

fn observe(spec: &Spec, cfg: &ProtocolSimConfig, seed: u64) -> Obs {
    match spec.substrate {
        SubstrateKind::Protocol => {
            let run = run_protocol_sim(cfg, seed);
            Obs {
                gini: gini(&run.tasks_done),
                factor: run.runtime_factor,
                bill: run.messages.load_query,
                lied: run.messages.lied,
                quarantined: count_quarantined(run.events.events()),
                completed: run.completed,
            }
        }
        SubstrateKind::Event => {
            let run = run_event_sim(
                &EventSimConfig {
                    proto: cfg.clone(),
                    ..EventSimConfig::default()
                },
                seed,
            );
            Obs {
                gini: gini(&run.tasks_done),
                factor: run.runtime_factor,
                bill: run.wire.load_query,
                lied: run.wire.lied,
                quarantined: count_quarantined(run.events.events()),
                completed: run.completed,
            }
        }
    }
}

fn run_cell(args: &Args, spec: Spec) -> Cell {
    let runs: Vec<Obs> = (0..args.trials)
        .map(|t| {
            let seed = args.seed.wrapping_add(t);
            observe(&spec, &proto_cfg(&spec, seed ^ 0xBAD), seed)
        })
        .collect();
    let n = runs.len() as f64;
    Cell {
        spec,
        gini: runs.iter().map(|r| r.gini).sum::<f64>() / n,
        factor: runs.iter().map(|r| r.factor).sum::<f64>() / n,
        bill: runs.iter().map(|r| r.bill).sum(),
        lied: runs.iter().map(|r| r.lied).sum(),
        quarantined: runs.iter().map(|r| r.quarantined).sum(),
        completed: runs.iter().filter(|r| r.completed).count() as u64,
    }
}

/// The Byzantine fraction × lying policy × probe budget sweep, on both
/// real substrates.
pub fn byzantine(args: &Args) {
    println!("byzantine: lying-reporter sweep on both real substrates");
    let mut grid: Vec<Spec> = Vec::new();
    for substrate in [SubstrateKind::Protocol, SubstrateKind::Event] {
        // The honest baseline every ratio in this substrate divides by.
        grid.push(Spec {
            substrate,
            policy: None,
            fraction: 0.0,
            k: 0,
        });
        for &policy in &POLICIES {
            for &fraction in &FRACTIONS {
                for &k in &BUDGETS {
                    grid.push(Spec {
                        substrate,
                        policy: Some(policy),
                        fraction,
                        k,
                    });
                }
            }
        }
    }

    let cells: Vec<Cell> = grid.into_par_iter().map(|s| run_cell(args, s)).collect();

    let mut table = Table::new(vec![
        "substrate",
        "policy",
        "byzantine",
        "k",
        "final gini",
        "× honest",
        "runtime factor",
        "× honest",
        "load queries",
        "lied",
        "quarantined",
        "completed",
    ]);
    for cell in &cells {
        let honest = cells
            .iter()
            .find(|c| c.spec.substrate == cell.spec.substrate && c.spec.policy.is_none())
            .expect("grid contains the honest cell");
        let gini_x = cell.gini / honest.gini.max(f64::EPSILON);
        let factor_x = cell.factor / honest.factor.max(f64::EPSILON);
        let policy = cell.spec.policy.map_or("honest", |(_, label)| label);
        println!(
            "  {:<8} {:<8} byz {:>5.1}% k={} → gini {:.3} ({:.2}× honest), factor {:.2} ({:.2}×), lied {}, quarantined {}",
            cell.spec.substrate.label(),
            policy,
            cell.spec.fraction * 100.0,
            cell.spec.k,
            cell.gini,
            gini_x,
            cell.factor,
            factor_x,
            cell.lied,
            cell.quarantined,
        );
        table.push_row(vec![
            cell.spec.substrate.label().to_string(),
            policy.to_string(),
            format!("{:.3}", cell.spec.fraction),
            cell.spec.k.to_string(),
            f3(cell.gini),
            f3(gini_x),
            f3(cell.factor),
            f3(factor_x),
            cell.bill.to_string(),
            cell.lied.to_string(),
            cell.quarantined.to_string(),
            format!("{}/{}", cell.completed, args.trials),
        ]);
    }
    write_out(&args.out, "byzantine.md", &table.to_markdown());
    write_out(&args.out, "byzantine.csv", &table.to_csv());

    // Control: the invitation strategy never probes loads, so the
    // adversary has nothing to distort — its lied bill must be zero.
    let control = run_protocol_sim(
        &ProtocolSimConfig {
            strategy: StrategyKind::Invitation,
            ..proto_cfg(
                &Spec {
                    substrate: SubstrateKind::Protocol,
                    policy: Some((LiePolicy::OverReport, "over")),
                    fraction: 0.25,
                    k: 0,
                },
                args.seed ^ 0xBAD,
            )
        },
        args.seed,
    );
    assert_eq!(
        control.messages.lied, 0,
        "invitation steers by announcements, not probes"
    );
    println!("  control: Invitation at 25% liars → lied 0 (immune by construction)");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_args() -> Args {
        Args {
            targets: vec![],
            trials: 1,
            full: false,
            out: std::env::temp_dir().join("autobal-byzantine-test"),
            seed: 7,
            trace: None,
            events: false,
            baseline: None,
            cache: std::sync::Arc::new(autobal_workload::WorkloadCache::new()),
        }
    }

    #[test]
    fn grid_has_one_honest_cell_per_substrate() {
        // The ratio columns depend on it; mirror the grid construction.
        for substrate in [SubstrateKind::Protocol, SubstrateKind::Event] {
            let spec = Spec {
                substrate,
                policy: None,
                fraction: 0.0,
                k: 0,
            };
            let cfg = proto_cfg(&spec, 0xBAD);
            assert!(!cfg.adversary.is_active());
            assert!(!cfg.cross_check.is_active());
        }
    }

    #[test]
    fn defended_cell_runs_end_to_end() {
        let args = test_args();
        let cell = run_cell(
            &args,
            Spec {
                substrate: SubstrateKind::Protocol,
                policy: Some((LiePolicy::OverReport, "over")),
                fraction: 0.25,
                k: 2,
            },
        );
        assert_eq!(cell.completed, 1);
        assert!(cell.lied > 0, "liars answered some probe");
        assert!(cell.quarantined > 0, "cross-checking caught repeat liars");
    }
}
