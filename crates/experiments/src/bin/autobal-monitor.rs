//! `autobal-monitor` — a live ring dashboard over the metrics JSONL
//! stream.
//!
//! ```text
//! autobal-monitor [--follow] [--interval MS] [--last N]
//!                 [--svg PATH] [--html PATH] FILE
//! ```
//!
//! Reads the integer-only sample stream a run records with
//! `record_metrics` (and `metrics_ring` for per-worker slots) and
//! renders, for the latest sample:
//!
//! * the ring itself — arc ownership with load-heat glyphs, `S` for
//!   workers carrying Sybils, `!` for quarantine-marked workers;
//! * per-worker load bars (heaviest first);
//! * message-rate and task-rate sparklines over the sample history.
//!
//! `--follow` re-reads the file at the given interval and redraws in
//! place, turning any running simulation that appends samples into a
//! live view. `--svg`/`--html` additionally write a ring-heat snapshot
//! (the SVG alone, or an HTML page embedding it plus the text panels).
//!
//! The monitor is a pure *reader*: it never influences a run, so its
//! wall-clock pacing lives outside the deterministic plane.

use autobal_metrics::names as metric_names;
use autobal_metrics::sample::{parse_jsonl, validate_samples};
use autobal_metrics::MetricsSample;
use autobal_viz::{render_load_bars, render_ring, sparkline, RingHeat, RingHeatSlot, RingMark};
use std::path::PathBuf;

struct Opts {
    file: PathBuf,
    follow: bool,
    interval_ms: u64,
    /// Sparkline window: how many trailing samples to chart.
    last: usize,
    svg: Option<PathBuf>,
    html: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: autobal-monitor [--follow] [--interval MS] [--last N] \
         [--svg PATH] [--html PATH] FILE"
    );
    std::process::exit(2);
}

fn parse_opts(argv: &[String]) -> Opts {
    let mut opts = Opts {
        file: PathBuf::new(),
        follow: false,
        interval_ms: 500,
        last: 60,
        svg: None,
        html: None,
    };
    let mut file = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => opts.follow = true,
            "--interval" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => opts.interval_ms = ms,
                None => usage(),
            },
            "--last" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.last = n,
                None => usage(),
            },
            "--svg" => match it.next() {
                Some(p) => opts.svg = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--html" => match it.next() {
                Some(p) => opts.html = Some(PathBuf::from(p)),
                None => usage(),
            },
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    match file {
        Some(f) => opts.file = f,
        None => usage(),
    }
    opts
}

fn load(path: &PathBuf) -> Result<Vec<MetricsSample>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let samples = parse_jsonl(&text)?;
    validate_samples(&samples)?;
    Ok(samples)
}

/// Converts the latest sample's ring slots into viz marks, positioned
/// by each worker's primary identifier.
fn ring_marks(sample: &MetricsSample) -> Vec<RingMark> {
    let mut marks: Vec<RingMark> = sample
        .ring
        .iter()
        .map(|slot| RingMark {
            label: slot.worker,
            frac: autobal_id::Id::from_hex(&slot.pos).map_or(0.0, |id| id.to_unit_fraction()),
            load: slot.load,
            vnodes: 1 + slot.sybils,
            flagged: slot.quarantined > 0,
        })
        .collect();
    marks.sort_by(|a, b| a.frac.total_cmp(&b.frac));
    marks
}

/// Per-sample deltas of a cumulative counter over the trailing window.
fn rate_series(samples: &[MetricsSample], name: &str, last: usize) -> Vec<u64> {
    let window = samples.len().saturating_sub(last + 1);
    let tail = samples.get(window..).unwrap_or(samples);
    tail.windows(2)
        .map(|w| {
            let prev = w[0].counter(name).unwrap_or(0);
            let cur = w[1].counter(name).unwrap_or(0);
            cur.saturating_sub(prev)
        })
        .collect()
}

fn delivered_rate(samples: &[MetricsSample], last: usize) -> Vec<u64> {
    rate_series(samples, metric_names::MSG_DELIVERED, last)
}

/// The full-text dashboard for the latest sample.
fn render_dashboard(samples: &[MetricsSample], last: usize) -> String {
    let mut out = String::new();
    let Some(latest) = samples.last() else {
        out.push_str("(no samples yet)\n");
        return out;
    };
    let g = |name: &str| latest.gauge(name).unwrap_or(0);
    out.push_str(&format!(
        "t={}  workers={}  vnodes={}  remaining={}\n",
        latest.time,
        g(metric_names::WORKERS_ACTIVE),
        g(metric_names::VNODES),
        g(metric_names::TASKS_REMAINING),
    ));
    out.push_str(&format!(
        "gini={:.3}  imbalance={:.2}x  p50={}  p90={}  p99={}  max={}\n\n",
        g(metric_names::GINI_PPM) as f64 / 1e6,
        g(metric_names::IMBALANCE_PPM) as f64 / 1e6,
        g(metric_names::LOAD_P50),
        g(metric_names::LOAD_P90),
        g(metric_names::LOAD_P99),
        g(metric_names::LOAD_MAX),
    ));
    let marks = ring_marks(latest);
    if marks.is_empty() {
        out.push_str("(no ring slots; record with metrics_ring to see the ring)\n");
    } else {
        out.push_str(&render_ring("ring", &marks, 48));
        out.push('\n');
        let mut by_load = marks.clone();
        by_load.sort_by(|a, b| b.load.cmp(&a.load).then(a.label.cmp(&b.label)));
        by_load.truncate(12);
        out.push_str(&render_load_bars("heaviest workers", &by_load, 32));
        out.push('\n');
    }
    let tasks = rate_series(samples, metric_names::TASKS_DONE, last);
    let msgs = delivered_rate(samples, last);
    if !tasks.is_empty() {
        out.push_str(&format!("tasks/sample {}\n", sparkline(&tasks)));
    }
    if !msgs.is_empty() {
        out.push_str(&format!("msgs/sample  {}\n", sparkline(&msgs)));
    }
    out
}

/// The SVG ring-heat snapshot for the latest sample.
fn render_snapshot_svg(samples: &[MetricsSample]) -> String {
    let latest = samples.last();
    let slots: Vec<RingHeatSlot> = latest
        .map(|s| {
            s.ring
                .iter()
                .map(|slot| RingHeatSlot {
                    label: slot.worker,
                    frac: autobal_id::Id::from_hex(&slot.pos)
                        .map_or(0.0, |id| id.to_unit_fraction()),
                    load: slot.load,
                    vnodes: 1 + slot.sybils,
                    flagged: slot.quarantined > 0,
                })
                .collect()
        })
        .unwrap_or_default();
    let title = latest.map_or_else(
        || "ring (no samples)".to_string(),
        |s| format!("ring @ t={}", s.time),
    );
    RingHeat::new(title, slots).to_svg()
}

/// An HTML page embedding the SVG snapshot plus the text panels.
fn render_snapshot_html(samples: &[MetricsSample], last: usize) -> String {
    let svg = render_snapshot_svg(samples);
    let text = render_dashboard(samples, last)
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;");
    format!(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>autobal-monitor</title></head>\n<body>\n{svg}\n\
         <pre style=\"font-family: monospace\">\n{text}</pre>\n</body></html>\n"
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_opts(&argv);
    loop {
        let samples = match load(&opts.file) {
            Ok(s) => s,
            Err(e) => {
                // In follow mode the file may not exist yet; keep waiting.
                if !opts.follow {
                    eprintln!("autobal-monitor: {e}");
                    std::process::exit(2);
                }
                Vec::new()
            }
        };
        let dashboard = render_dashboard(&samples, opts.last);
        if opts.follow {
            // Clear and home, then redraw in place.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "autobal-monitor: {} ({} samples)",
            opts.file.display(),
            samples.len()
        );
        print!("{dashboard}");
        if let Some(path) = &opts.svg {
            if let Err(e) = std::fs::write(path, render_snapshot_svg(&samples)) {
                eprintln!("autobal-monitor: write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        if let Some(path) = &opts.html {
            if let Err(e) = std::fs::write(path, render_snapshot_html(&samples, opts.last)) {
                eprintln!("autobal-monitor: write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        if !opts.follow {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_metrics::sample::RingSlot;

    fn sample(time: u64, done: u64, delivered: u64, ring: Vec<RingSlot>) -> MetricsSample {
        MetricsSample {
            time,
            counters: vec![
                (metric_names::TASKS_DONE.to_string(), done),
                (metric_names::MSG_DELIVERED.to_string(), delivered),
            ],
            gauges: vec![
                (metric_names::WORKERS_ACTIVE.to_string(), ring.len() as u64),
                (metric_names::GINI_PPM.to_string(), 125_000),
            ],
            hists: Vec::new(),
            ring,
        }
    }

    fn slot(worker: u64, load: u64, sybils: u64, quarantined: u64) -> RingSlot {
        RingSlot {
            worker,
            pos: autobal_id::Id::from(worker * 1_000_000 + 1).to_hex(),
            load,
            sybils,
            quarantined,
        }
    }

    #[test]
    fn dashboard_renders_ring_and_rates() {
        let samples = vec![
            sample(0, 0, 0, vec![slot(0, 9, 0, 0), slot(1, 2, 2, 1)]),
            sample(5, 40, 12, vec![slot(0, 5, 0, 0), slot(1, 4, 2, 1)]),
        ];
        let text = render_dashboard(&samples, 60);
        assert!(text.contains("t=5"), "{text}");
        assert!(text.contains("gini=0.125"), "{text}");
        assert!(text.contains('S'), "sybil marker: {text}");
        assert!(text.contains('!'), "quarantine marker: {text}");
        assert!(text.contains("tasks/sample"), "{text}");
        assert!(text.contains("msgs/sample"), "{text}");
    }

    #[test]
    fn dashboard_without_ring_slots_degrades() {
        let samples = vec![sample(0, 0, 0, Vec::new())];
        let text = render_dashboard(&samples, 60);
        assert!(text.contains("metrics_ring"), "{text}");
        assert_eq!(render_dashboard(&[], 60), "(no samples yet)\n");
    }

    #[test]
    fn rate_series_diffs_cumulative_counters() {
        let samples = vec![
            sample(0, 10, 1, Vec::new()),
            sample(1, 25, 3, Vec::new()),
            sample(2, 25, 9, Vec::new()),
        ];
        assert_eq!(
            rate_series(&samples, metric_names::TASKS_DONE, 60),
            vec![15, 0]
        );
        assert_eq!(delivered_rate(&samples, 60), vec![2, 6]);
        // Window trims to the trailing `last` deltas.
        assert_eq!(rate_series(&samples, metric_names::TASKS_DONE, 1), vec![0]);
    }

    #[test]
    fn snapshot_svg_and_html_embed_the_ring() {
        let samples = vec![sample(3, 7, 2, vec![slot(0, 7, 1, 0)])];
        let svg = render_snapshot_svg(&samples);
        assert!(svg.contains("ring @ t=3"));
        assert!(svg.contains("<path"), "ownership arc: {svg}");
        let html = render_snapshot_html(&samples, 60);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("t=3"));
    }
}
