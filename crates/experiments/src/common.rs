//! Shared plumbing for the experiment drivers.

use autobal_core::{RunResult, SimConfig};
use autobal_stats::Histogram;
use std::fs;
use std::path::{Path, PathBuf};

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiments to run (lowercase ids); empty = all.
    pub targets: Vec<String>,
    /// Trials per cell (paper: 100; quick default: 5).
    pub trials: u64,
    /// Output directory.
    pub out: PathBuf,
    /// Master seed.
    pub seed: u64,
}

impl Args {
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            targets: Vec::new(),
            trials: 5,
            out: PathBuf::from("results"),
            seed: 0xA0B1_C2D3,
        };
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.trials = 5,
                "--full" => args.trials = 100,
                "--trials" => {
                    args.trials = it
                        .next()
                        .ok_or("--trials needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--out" => {
                    args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other}"));
                }
                target => args.targets.push(target.to_ascii_lowercase()),
            }
        }
        Ok(args)
    }

    /// Should this experiment id run?
    pub fn wants(&self, id: &str) -> bool {
        self.targets.is_empty() || self.targets.iter().any(|t| t == id || t == "all")
    }
}

/// Writes a file under the output directory, creating parents.
pub fn write_out(dir: &Path, name: &str, contents: &str) {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

/// Builds fixed-edge histogram rows over worker loads so multiple
/// networks share bins. Bin width is derived from the larger of the two
/// max loads, aiming at ~26 bins like the paper's figures.
pub fn aligned_histograms(series: &[&[u64]]) -> Vec<Vec<(u64, u64, u64)>> {
    let max = series
        .iter()
        .flat_map(|s| s.iter().copied())
        .max()
        .unwrap_or(0);
    let width = (max / 25).max(1);
    let bins = (max / width + 1) as usize;
    series
        .iter()
        .map(|s| Histogram::build(s, 0, width, bins).rows())
        .collect()
}

/// Runs one simulation with snapshots, returning the result (helper for
/// the figure experiments, which need one run rather than a batch).
pub fn run_with_snapshots(mut cfg: SimConfig, seed: u64, ticks: &[u64]) -> RunResult {
    cfg.snapshot_ticks = ticks.to_vec();
    autobal_core::Sim::new(cfg, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.trials, 5);
        assert!(a.wants("table1"));
        assert!(a.wants("anything"));
    }

    #[test]
    fn parse_full_and_targets() {
        let a = Args::parse(&s(&["--full", "table2", "fig1"])).unwrap();
        assert_eq!(a.trials, 100);
        assert!(a.wants("table2"));
        assert!(a.wants("fig1"));
        assert!(!a.wants("table1"));
    }

    #[test]
    fn parse_trials_and_seed() {
        let a = Args::parse(&s(&["--trials", "7", "--seed", "9"])).unwrap();
        assert_eq!(a.trials, 7);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(Args::parse(&s(&["--bogus"])).is_err());
        assert!(Args::parse(&s(&["--trials"])).is_err());
    }

    #[test]
    fn aligned_histograms_share_edges() {
        let a = vec![0u64, 10, 20, 100];
        let b = vec![5u64, 50];
        let hs = aligned_histograms(&[&a, &b]);
        assert_eq!(hs[0].len(), hs[1].len());
        assert_eq!(hs[0][0].0, hs[1][0].0);
        let total_a: u64 = hs[0].iter().map(|r| r.2).sum();
        assert_eq!(total_a, 4);
    }
}
