//! Shared plumbing for the experiment drivers.

use autobal_core::{RunResult, SimConfig};
use autobal_stats::Histogram;
use autobal_telemetry::{to_jsonl, TraceRecord};
use autobal_workload::{run_and_summarize_cached, TrialStats, WorkloadCache};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiments to run (lowercase ids); empty = all.
    pub targets: Vec<String>,
    /// Trials per cell (paper: 100; quick default: 5).
    pub trials: u64,
    /// `--full`: run the paper-scale versions of every target (100
    /// trials per cell; the perf scaling family sweeps up to 1M
    /// workers instead of the reduced CI grid).
    pub full: bool,
    /// Output directory.
    pub out: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Base path for flight-recorder JSONL dumps (`--trace PATH`);
    /// `None` leaves tracing disabled and zero-cost.
    pub trace: Option<PathBuf>,
    /// Record strategy event logs in single-run experiments.
    pub events: bool,
    /// Committed benchmark baseline to compare against (`repro perf
    /// --baseline BENCH_10.json`); `None` skips the comparison.
    pub baseline: Option<PathBuf>,
    /// Workload memo table shared by every cell this process runs, so
    /// cells that differ only in strategy reuse one generated workload.
    pub cache: Arc<WorkloadCache>,
}

impl Args {
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            targets: Vec::new(),
            trials: 5,
            full: false,
            out: PathBuf::from("results"),
            seed: 0xA0B1_C2D3,
            trace: None,
            events: false,
            baseline: None,
            cache: Arc::new(WorkloadCache::new()),
        };
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => {
                    args.trials = 5;
                    args.full = false;
                }
                "--full" => {
                    args.trials = 100;
                    args.full = true;
                }
                "--trials" => {
                    args.trials = it
                        .next()
                        .ok_or("--trials needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--out" => {
                    args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
                }
                "--trace" => {
                    args.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?));
                }
                "--events" => args.events = true,
                "--baseline" => {
                    args.baseline =
                        Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other}"));
                }
                target => args.targets.push(target.to_ascii_lowercase()),
            }
        }
        Ok(args)
    }

    /// Should this experiment id run?
    pub fn wants(&self, id: &str) -> bool {
        self.targets.is_empty() || self.targets.iter().any(|t| t == id || t == "all")
    }

    /// Runs one experiment cell (`self.trials` trials at `seed`)
    /// through the process-wide workload cache.
    pub fn run_cell(&self, cfg: &SimConfig, seed: u64) -> TrialStats {
        run_and_summarize_cached(&self.cache, cfg, self.trials, seed)
    }

    /// Applies the `--trace` / `--events` instrumentation flags to a
    /// simulator config.
    pub fn instrument(&self, cfg: &mut SimConfig) {
        cfg.record_trace = cfg.record_trace || self.trace.is_some();
        cfg.record_events = cfg.record_events || self.events;
    }

    /// Where a tagged trace dump lands: `--trace out/t.jsonl` with tag
    /// `fig1` gives `out/t_fig1.jsonl`; an empty tag uses the base path.
    pub fn trace_path(&self, tag: &str) -> Option<PathBuf> {
        let base = self.trace.as_ref()?;
        if tag.is_empty() {
            return Some(base.clone());
        }
        let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        Some(base.with_file_name(format!("{stem}_{tag}.jsonl")))
    }

    /// Dumps a recorded trace as JSONL under the `--trace` base path;
    /// no-op when tracing is off or nothing was recorded.
    pub fn write_trace(&self, tag: &str, records: &[TraceRecord]) {
        let Some(path) = self.trace_path(tag) else {
            return;
        };
        if records.is_empty() {
            return;
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).expect("create trace dir");
            }
        }
        fs::write(&path, to_jsonl(records))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("  wrote {}", path.display());
    }
}

/// Writes a file under the output directory, creating parents.
pub fn write_out(dir: &Path, name: &str, contents: &str) {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

/// Builds fixed-edge histogram rows over worker loads so multiple
/// networks share bins. Bin width is derived from the larger of the two
/// max loads, aiming at ~26 bins like the paper's figures.
pub fn aligned_histograms(series: &[&[u64]]) -> Vec<Vec<(u64, u64, u64)>> {
    let max = series
        .iter()
        .flat_map(|s| s.iter().copied())
        .max()
        .unwrap_or(0);
    let width = (max / 25).max(1);
    let bins = (max / width + 1) as usize;
    series
        .iter()
        .map(|s| Histogram::build(s, 0, width, bins).rows())
        .collect()
}

/// Runs one simulation with snapshots, returning the result (helper for
/// the figure experiments, which need one run rather than a batch). The
/// run is instrumented per the `--trace` / `--events` flags; a recorded
/// trace is dumped under `tag`.
pub fn run_with_snapshots(args: &Args, tag: &str, mut cfg: SimConfig, ticks: &[u64]) -> RunResult {
    cfg.snapshot_ticks = ticks.to_vec();
    args.instrument(&mut cfg);
    let res = args.cache.sim(cfg, args.seed).run();
    args.write_trace(tag, res.trace.records());
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.trials, 5);
        assert!(a.wants("table1"));
        assert!(a.wants("anything"));
    }

    #[test]
    fn parse_full_and_targets() {
        let a = Args::parse(&s(&["--full", "table2", "fig1"])).unwrap();
        assert_eq!(a.trials, 100);
        assert!(a.full);
        assert!(!Args::parse(&s(&["--quick"])).unwrap().full);
        assert!(a.wants("table2"));
        assert!(a.wants("fig1"));
        assert!(!a.wants("table1"));
    }

    #[test]
    fn parse_trials_and_seed() {
        let a = Args::parse(&s(&["--trials", "7", "--seed", "9"])).unwrap();
        assert_eq!(a.trials, 7);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(Args::parse(&s(&["--bogus"])).is_err());
        assert!(Args::parse(&s(&["--trials"])).is_err());
        assert!(Args::parse(&s(&["--trace"])).is_err());
        assert!(Args::parse(&s(&["--baseline"])).is_err());
    }

    #[test]
    fn parse_baseline_path() {
        let a = Args::parse(&[]).unwrap();
        assert!(a.baseline.is_none());
        let a = Args::parse(&s(&["--baseline", "BENCH_10.json"])).unwrap();
        assert_eq!(a.baseline, Some(PathBuf::from("BENCH_10.json")));
    }

    #[test]
    fn parse_trace_and_events() {
        let a = Args::parse(&[]).unwrap();
        assert!(a.trace.is_none() && !a.events);
        assert!(a.trace_path("x").is_none());

        let a = Args::parse(&s(&["--trace", "out/t.jsonl", "--events"])).unwrap();
        assert_eq!(a.trace, Some(PathBuf::from("out/t.jsonl")));
        assert!(a.events);
        assert_eq!(a.trace_path(""), Some(PathBuf::from("out/t.jsonl")));
        assert_eq!(
            a.trace_path("fig1"),
            Some(PathBuf::from("out/t_fig1.jsonl"))
        );
    }

    #[test]
    fn instrument_arms_recording_from_flags() {
        let a = Args::parse(&s(&["--trace", "t.jsonl", "--events"])).unwrap();
        let mut cfg = SimConfig::default();
        a.instrument(&mut cfg);
        assert!(cfg.record_trace && cfg.record_events);

        let off = Args::parse(&[]).unwrap();
        let mut cfg = SimConfig::default();
        off.instrument(&mut cfg);
        assert!(!cfg.record_trace && !cfg.record_events);
    }

    #[test]
    fn aligned_histograms_share_edges() {
        let a = vec![0u64, 10, 20, 100];
        let b = vec![5u64, 50];
        let hs = aligned_histograms(&[&a, &b]);
        assert_eq!(hs[0].len(), hs[1].len());
        assert_eq!(hs[0][0].0, hs[1][0].0);
        let total_a: u64 = hs[0].iter().map(|r| r.2).sum();
        assert_eq!(total_a, 4);
    }
}
