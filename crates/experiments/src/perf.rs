//! `repro perf` — the benchmark/regression plane.
//!
//! Runs pinned end-to-end scenarios on every substrate — the oracle
//! ring, the synchronous protocol loop, the event-time strategy loop,
//! and the raw eventnet lookup plane — and emits `BENCH_10.json`
//! (schema `autobal-perf-v1`) with wall time and throughput per
//! scenario. The oracle-ring scenario additionally runs
//! the naive pre-optimization reference engine
//! ([`autobal::reference::NaiveSim`]) **in the same process and on the
//! same inputs**, asserts the two engines produce identical results,
//! and reports the measured speedup — so the headline number is never a
//! comparison across machines or commits.
//!
//! The `oracle_scaling` family sweeps worker count × shard count
//! through the arc-range sharded engine (tasks proportional at 100 per
//! worker, drain-phase timing over a shared pre-generated workload):
//! the reduced CI grid is 100k workers at shards {1, 4}; `--full` runs
//! n ∈ {6k, 50k, 100k, 500k, 1M} at shards {1, 2, 4, 8}. Every cell
//! asserts tick-exact equality against its 1-shard sibling before any
//! number is reported.
//!
//! `--baseline PATH` compares this run's throughput against a committed
//! `BENCH_10.json` and fails (exit 1) only on a >2x regression; smaller
//! wobble is expected CI noise. Scenarios absent from the baseline are
//! skipped, so reduced-grid runs can be gated on full-grid baselines.
//!
//! With the `count-allocs` feature the binary's global allocator counts
//! allocation events and each scenario reports its count; without it
//! the field is `null` and the schema is unchanged.

use crate::common::{write_out, Args};
use autobal::event_sim::{run_event_sim, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal::reference::NaiveSim;
use autobal_chord::{EventConfig, EventNet};
use autobal_core::{RunResult, Sim, SimConfig, StrategyKind};
use autobal_stats::rng::{domains, substream};
use rand::Rng;
use std::fs;

/// Wall time of `f` in milliseconds, plus its result.
fn wall_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    // autobal-lint: allow(determinism, "the perf plane's whole point is wall-clock measurement; results land only in BENCH artifacts, never in paper outputs")
    let t0 = std::time::Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

/// Allocation events on this thread during `f` (requires the
/// `count-allocs` global allocator), plus `f`'s result.
#[cfg(feature = "count-allocs")]
fn alloc_count<R>(f: impl FnOnce() -> R) -> (Option<u64>, R) {
    let (n, r) = autobal_meminstr::allocation_delta(f);
    (Some(n), r)
}

#[cfg(not(feature = "count-allocs"))]
fn alloc_count<R>(f: impl FnOnce() -> R) -> (Option<u64>, R) {
    (None, f())
}

/// One measured scenario, as serialized into `BENCH_10.json`.
struct Measurement {
    name: String,
    substrate: &'static str,
    /// Scenario family for grouped rows (`"oracle_scaling"`), `null`
    /// for the standalone pinned scenarios.
    group: Option<&'static str>,
    /// Scaling rows: the worker count of the cell.
    workers: Option<u64>,
    /// Scaling rows: the configured shard count of the cell.
    shards: Option<u32>,
    /// What `work` counts: `"ticks"`, `"tasks"`, or `"events"`.
    units: &'static str,
    work: u64,
    wall_ms: f64,
    /// `work` per second — the regression-gated figure.
    throughput: f64,
    allocations: Option<u64>,
    peak_vnodes: Option<u64>,
    /// Oracle scenario only: the naive reference engine on the same
    /// inputs, same process, same run.
    naive_wall_ms: Option<f64>,
    speedup_vs_naive: Option<f64>,
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.2}"))
}

fn opt_str(v: Option<&'static str>) -> String {
    v.map_or("null".to_string(), |s| format!("\"{s}\""))
}

fn opt_u32(v: Option<u32>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

impl Measurement {
    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"substrate\": \"{}\",\n      \"group\": {},\n      \"workers\": {},\n      \"shards\": {},\n      \"units\": \"{}\",\n      \"work\": {},\n      \"wall_ms\": {:.2},\n      \"throughput\": {:.2},\n      \"allocations\": {},\n      \"peak_vnodes\": {},\n      \"naive_wall_ms\": {},\n      \"speedup_vs_naive\": {}\n    }}",
            self.name,
            self.substrate,
            opt_str(self.group),
            opt_u64(self.workers),
            opt_u32(self.shards),
            self.units,
            self.work,
            self.wall_ms,
            self.throughput,
            opt_u64(self.allocations),
            opt_u64(self.peak_vnodes),
            opt_f64(self.naive_wall_ms),
            opt_f64(self.speedup_vs_naive),
        )
    }
}

/// The pinned large-scale oracle-ring scenario: 6 000 workers grinding
/// through 1.2 million tasks in steady state. This keeps the clock on
/// the paths the overhaul rewrote — the per-tick work loop and the pop
/// stream — rather than on churn bookkeeping both engines share. The
/// churn and series paths are pinned bit-for-bit by the differential
/// test suite (`tests/ring_reference.rs`) instead.
fn oracle_cfg() -> SimConfig {
    SimConfig {
        nodes: 6_000,
        tasks: 1_200_000,
        strategy: StrategyKind::None,
        churn_rate: 0.0,
        series_interval: None,
        ..SimConfig::default()
    }
}

fn assert_same_outcome(opt: &RunResult, naive: &autobal::reference::NaiveRunResult) {
    assert_eq!(opt.ticks, naive.ticks, "ticks diverged");
    assert_eq!(opt.completed, naive.completed, "completion diverged");
    assert_eq!(
        opt.work_per_tick, naive.work_per_tick,
        "work schedule diverged"
    );
    assert_eq!(
        opt.messages.churn_leaves, naive.churn_leaves,
        "churn leaves diverged"
    );
    assert_eq!(
        opt.messages.churn_joins, naive.churn_joins,
        "churn joins diverged"
    );
    assert_eq!(opt.peak_vnodes, naive.peak_vnodes, "peak vnodes diverged");
    assert_eq!(opt.series.gini, naive.series_gini, "gini series diverged");
    assert_eq!(opt.series.idle, naive.series_idle, "idle series diverged");
}

/// Repetitions per engine; the minimum wall time is kept. One-shot
/// timings on shared CI machines swing by tens of percent — the
/// best-of-N minimum is the standard noise-robust estimator, and
/// interleaving the two engines decorrelates slow drift.
const ORACLE_REPS: usize = 5;

fn oracle_ring_large(args: &Args) -> Measurement {
    let cfg = oracle_cfg();
    let seed = args.seed ^ 0x5E;
    // Full-size warmup so first-touch page faults and allocator growth
    // land outside every timed repetition.
    let _ = Sim::new(cfg.clone(), seed).run();

    let mut naive_ms = f64::INFINITY;
    let mut opt_ms = f64::INFINITY;
    let mut allocs = None;
    let mut opt_result = None;
    for _ in 0..ORACLE_REPS {
        let (ms, naive) = wall_ms(|| NaiveSim::new(cfg.clone(), seed).run());
        naive_ms = naive_ms.min(ms);
        let (ms, (a, opt)) = wall_ms(|| alloc_count(|| Sim::new(cfg.clone(), seed).run()));
        opt_ms = opt_ms.min(ms);
        allocs = a;
        // Every repetition re-checks equality; the engines are
        // deterministic, so this doubles as a same-run correctness pin.
        assert_same_outcome(&opt, &naive);
        opt_result = Some(opt);
    }
    let opt = opt_result.expect("at least one repetition");

    let speedup = naive_ms / opt_ms;
    println!(
        "  oracle_ring_large: {} ticks | optimized {:.0} ms ({:.0} ticks/s) | naive {:.0} ms | speedup {:.2}x",
        opt.ticks,
        opt_ms,
        opt.ticks as f64 / (opt_ms / 1e3),
        naive_ms,
        speedup
    );
    Measurement {
        name: "oracle_ring_large".to_string(),
        group: None,
        workers: None,
        shards: None,
        substrate: "oracle-ring",
        units: "ticks",
        work: opt.ticks,
        wall_ms: opt_ms,
        throughput: opt.ticks as f64 / (opt_ms / 1e3),
        allocations: allocs,
        peak_vnodes: Some(opt.peak_vnodes as u64),
        naive_wall_ms: Some(naive_ms),
        speedup_vs_naive: Some(speedup),
    }
}

fn chord_protocol(args: &Args) -> Measurement {
    let cfg = ProtocolSimConfig {
        nodes: 96,
        tasks: 9_600,
        strategy: StrategyKind::RandomInjection,
        churn_rate: 0.01,
        ..ProtocolSimConfig::default()
    };
    let seed = args.seed ^ 0x5F;
    let (first_ms, _) = wall_ms(|| run_protocol_sim(&cfg, seed));
    let (second_ms, (allocs, run)) = wall_ms(|| alloc_count(|| run_protocol_sim(&cfg, seed)));
    let ms = first_ms.min(second_ms);
    println!(
        "  chord_protocol: {} ticks | {:.0} ms ({:.0} ticks/s)",
        run.ticks,
        ms,
        run.ticks as f64 / (ms / 1e3)
    );
    Measurement {
        name: "chord_protocol".to_string(),
        group: None,
        workers: None,
        shards: None,
        substrate: "protocol",
        units: "ticks",
        work: run.ticks,
        wall_ms: ms,
        throughput: run.ticks as f64 / (ms / 1e3),
        allocations: allocs,
        peak_vnodes: None,
        naive_wall_ms: None,
        speedup_vs_naive: None,
    }
}

/// The full strategy loop on the event-time substrate: the same
/// workload shape as `chord_protocol`, but every load query,
/// invitation, and Sybil join rides the asynchronous wire under real
/// message latency, racing stabilization. `work` counts wire events
/// processed, so the gated figure is event-loop throughput, not ticks.
fn event_substrate(args: &Args) -> Measurement {
    let cfg = EventSimConfig {
        proto: ProtocolSimConfig {
            nodes: 96,
            tasks: 9_600,
            strategy: StrategyKind::SmartNeighbor,
            churn_rate: 0.01,
            ..ProtocolSimConfig::default()
        },
        ..EventSimConfig::default()
    };
    let seed = args.seed ^ 0x61;
    let (first_ms, _) = wall_ms(|| run_event_sim(&cfg, seed));
    let (second_ms, (allocs, run)) = wall_ms(|| alloc_count(|| run_event_sim(&cfg, seed)));
    let ms = first_ms.min(second_ms);
    println!(
        "  event_substrate: {} events | {:.0} ms ({:.0} events/s)",
        run.wire_events,
        ms,
        run.wire_events as f64 / (ms / 1e3)
    );
    Measurement {
        name: "event_substrate".to_string(),
        group: None,
        workers: None,
        shards: None,
        substrate: "event",
        units: "events",
        work: run.wire_events,
        wall_ms: ms,
        throughput: run.wire_events as f64 / (ms / 1e3),
        allocations: allocs,
        peak_vnodes: None,
        naive_wall_ms: None,
        speedup_vs_naive: None,
    }
}

fn eventnet_once(seed: u64) -> u64 {
    let mut rng = substream(seed, 0, domains::PLACEMENT);
    let mut net = EventNet::bootstrap(EventConfig::default(), 256, &mut rng);
    let ids = net.node_ids();
    let mut events = 0u64;
    for i in 0..2_000u64 {
        let origin = ids[rng.gen_range(0..ids.len())];
        let key = autobal_id::Id::random(&mut rng);
        let _ = net.lookup(origin, key);
        if i % 8 == 7 {
            events += net.run_until(net.now() + 40);
        }
    }
    events += net.run_until(net.now() + EventConfig::default().lookup_timeout);
    events
}

fn eventnet(args: &Args) -> Measurement {
    let seed = args.seed ^ 0x60;
    let (first_ms, _) = wall_ms(|| eventnet_once(seed));
    let (second_ms, (allocs, events)) = wall_ms(|| alloc_count(|| eventnet_once(seed)));
    let ms = first_ms.min(second_ms);
    println!(
        "  eventnet: {} events | {:.0} ms ({:.0} events/s)",
        events,
        ms,
        events as f64 / (ms / 1e3)
    );
    Measurement {
        name: "eventnet".to_string(),
        group: None,
        workers: None,
        shards: None,
        substrate: "eventnet",
        units: "events",
        work: events,
        wall_ms: ms,
        throughput: events as f64 / (ms / 1e3),
        allocations: allocs,
        peak_vnodes: None,
        naive_wall_ms: None,
        speedup_vs_naive: None,
    }
}

/// Workers and churn deltas of the stats-cost scenario — the same
/// 6 000-worker scale as `oracle_ring_large`, isolated to the fairness
/// sweep the metrics plane replaced.
const STATS_WORKERS: usize = 6_000;
const STATS_TICKS: u64 = 400;
/// Load deltas applied between consecutive sample points.
const STATS_DELTAS_PER_TICK: usize = 64;

/// Per-tick fairness statistics, incremental vs batch: replay one
/// deterministic load-churn script twice — once updating a
/// [`autobal_metrics::LoadDist`] per delta and reading its aggregates
/// (`O(log L)` per delta), once re-sorting the full load vector and
/// recomputing from scratch at every tick (`O(n log n)`) — and assert
/// (untimed) that the two per-tick `gini_ppm`/percentile sequences are
/// identical before reporting the measured speedup in the
/// `naive_wall_ms`/`speedup_vs_naive` columns.
fn stats_incremental(args: &Args) -> Measurement {
    let seed = args.seed ^ 0x62;
    let mut rng = substream(seed, 0, domains::PLACEMENT);
    let loads: Vec<u64> = (0..STATS_WORKERS)
        .map(|_| rng.gen_range(0..400u64))
        .collect();
    // The churn script: (worker, new load) per delta, fixed up front so
    // both engines replay identical inputs.
    let mut script: Vec<(usize, u64)> = Vec::new();
    for _ in 0..STATS_TICKS {
        for _ in 0..STATS_DELTAS_PER_TICK {
            script.push((rng.gen_range(0..STATS_WORKERS), rng.gen_range(0..400u64)));
        }
    }

    let incremental = |loads: &[u64]| -> Vec<(u64, u64)> {
        let mut dist = autobal_metrics::LoadDist::new();
        for &v in loads {
            dist.insert(v);
        }
        let mut cur = loads.to_vec();
        let mut out = Vec::with_capacity(STATS_TICKS as usize);
        for tick in script.chunks(STATS_DELTAS_PER_TICK) {
            for &(w, new) in tick {
                dist.update(cur[w], new);
                cur[w] = new;
            }
            out.push((dist.gini_ppm(), dist.percentile(99)));
        }
        out
    };
    let batch = |loads: &[u64]| -> Vec<(u64, u64)> {
        let mut cur = loads.to_vec();
        let mut out = Vec::with_capacity(STATS_TICKS as usize);
        let mut scratch = Vec::with_capacity(cur.len());
        for tick in script.chunks(STATS_DELTAS_PER_TICK) {
            for &(w, new) in tick {
                cur[w] = new;
            }
            scratch.clear();
            scratch.extend_from_slice(&cur);
            scratch.sort_unstable();
            let n = scratch.len() as u64;
            let total: u128 = scratch.iter().map(|&v| v as u128).sum();
            let weighted: u128 = scratch
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u128 + 1) * v as u128)
                .sum();
            out.push((
                autobal_metrics::dist::gini_ppm_from_sums(n, total, weighted),
                autobal_stats::fairness::percentile_sorted(&scratch, 99),
            ));
        }
        out
    };

    // Warm, then best-of-N both ways; equality is asserted untimed.
    assert_eq!(
        incremental(&loads),
        batch(&loads),
        "incremental stats diverged from the batch recompute"
    );
    let mut inc_ms = f64::INFINITY;
    let mut batch_ms = f64::INFINITY;
    let mut allocs = None;
    for _ in 0..ORACLE_REPS {
        let (ms, _) = wall_ms(|| batch(&loads));
        batch_ms = batch_ms.min(ms);
        let (ms, (a, _)) = wall_ms(|| alloc_count(|| incremental(&loads)));
        inc_ms = inc_ms.min(ms);
        allocs = a;
    }

    let speedup = batch_ms / inc_ms;
    println!(
        "  stats_incremental: {} ticks x {} workers | incremental {:.1} ms | batch {:.1} ms | speedup {:.2}x",
        STATS_TICKS, STATS_WORKERS, inc_ms, batch_ms, speedup
    );
    Measurement {
        name: "stats_incremental".to_string(),
        group: None,
        workers: None,
        shards: None,
        substrate: "metrics",
        units: "ticks",
        work: STATS_TICKS,
        wall_ms: inc_ms,
        throughput: STATS_TICKS as f64 / (inc_ms / 1e3),
        allocations: allocs,
        peak_vnodes: None,
        naive_wall_ms: Some(batch_ms),
        speedup_vs_naive: Some(speedup),
    }
}

/// The scaling grid: `(workers, shard counts)` cells. Tasks are
/// proportional (100 per worker) so every cell drains the same
/// per-worker workload; the reduced grid is the CI smoke.
fn scaling_grid(full: bool) -> Vec<(u64, Vec<u32>)> {
    if full {
        [6_000u64, 50_000, 100_000, 500_000, 1_000_000]
            .into_iter()
            .map(|n| (n, vec![1u32, 2, 4, 8]))
            .collect()
    } else {
        vec![(100_000, vec![1, 4])]
    }
}

/// Tasks per worker in every scaling cell.
const SCALING_TASKS_PER_WORKER: u64 = 100;

/// Repetitions per scaling cell (best-of). The cells are long enough
/// that two repetitions bound the noise the pinned scenarios need five
/// for.
const SCALING_REPS: usize = 2;

/// The `oracle_scaling` family: worker count × shard count, timing the
/// drain phase only. The workload (node ids + pre-sorted task keys) is
/// generated once per worker count and shared by every shard count and
/// repetition, so cell times compare tick engines, not workload
/// generation; `Sim::with_placement` construction (ring build + task
/// assignment) also stays outside the clock. Before any cell is
/// reported, its run is asserted tick-exact against the 1-shard cell
/// of the same worker count — the cross-engine equality gate.
fn oracle_scaling(args: &Args) -> Vec<Measurement> {
    // Distinct node ids (160-bit collisions are astronomically rare,
    // but `Sim::with_placement` refuses duplicates, so dedup anyway).
    fn unique_ids(n: usize, rng: &mut impl Rng) -> Vec<autobal_id::Id> {
        let mut ids: Vec<autobal_id::Id> = (0..n).map(|_| autobal_id::Id::random(rng)).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            ids.push(autobal_id::Id::random(rng));
            ids.sort_unstable();
            ids.dedup();
        }
        ids
    }

    let mut out = Vec::new();
    for (workers, shard_counts) in scaling_grid(args.full) {
        let tasks = workers * SCALING_TASKS_PER_WORKER;
        let seed = args.seed ^ 0x5CA1;
        // One workload per worker count. Keys are pre-sorted once:
        // `assign_tasks` sorts its input, and a sorted master vector
        // makes that re-sort a cheap linear pass in every repetition.
        let mut placement = substream(seed, 0, domains::PLACEMENT);
        let node_ids = unique_ids(workers as usize, &mut placement);
        let mut task_keys: Vec<autobal_id::Id> = (0..tasks)
            .map(|_| autobal_id::Id::random(&mut placement))
            .collect();
        task_keys.sort_unstable();

        let mut reference: Option<(u64, f64)> = None;
        for &shards in &shard_counts {
            let cfg = SimConfig {
                nodes: workers as usize,
                tasks,
                strategy: StrategyKind::None,
                churn_rate: 0.0,
                series_interval: None,
                shards,
                ..SimConfig::default()
            };
            let mut best_ms = f64::INFINITY;
            let mut allocs = None;
            let mut ticks = 0u64;
            let mut peak = 0u64;
            for _ in 0..SCALING_REPS {
                let sim =
                    Sim::with_placement(cfg.clone(), seed, node_ids.clone(), task_keys.clone());
                let (ms, (a, run)) = wall_ms(|| alloc_count(|| sim.run()));
                assert!(run.completed, "scaling cell did not drain");
                best_ms = best_ms.min(ms);
                allocs = a;
                ticks = run.ticks;
                peak = run.peak_vnodes as u64;
                // Tick-exact equality across shard counts: every cell
                // must replay the 1-shard run's schedule.
                if let Some((ref_ticks, ref_factor)) = reference {
                    assert_eq!(
                        (run.ticks, run.runtime_factor),
                        (ref_ticks, ref_factor),
                        "scaling n={workers} s={shards} diverged from 1-shard run"
                    );
                } else {
                    reference = Some((run.ticks, run.runtime_factor));
                }
            }
            let throughput = tasks as f64 / (best_ms / 1e3);
            println!(
                "  scaling n={workers} shards={shards}: {ticks} ticks | {best_ms:.0} ms | {throughput:.0} tasks/s"
            );
            out.push(Measurement {
                name: format!("scaling_n{}k_s{}", workers / 1_000, shards),
                substrate: "oracle-ring",
                group: Some("oracle_scaling"),
                workers: Some(workers),
                shards: Some(shards),
                units: "tasks",
                work: tasks,
                wall_ms: best_ms,
                throughput,
                allocations: allocs,
                peak_vnodes: Some(peak),
                naive_wall_ms: None,
                speedup_vs_naive: None,
            });
        }
        // Report the sharded-engine gain over the classic engine for
        // this worker count (the acceptance figure at n >= 100k).
        if let (Some(base), Some(best)) = (
            out.iter()
                .find(|m| m.workers == Some(workers) && m.shards == Some(1)),
            out.iter()
                .filter(|m| m.workers == Some(workers) && m.shards > Some(1))
                .max_by(|a, b| a.throughput.total_cmp(&b.throughput)),
        ) {
            println!(
                "  scaling n={workers}: best sharded {:.2}x over 1-shard",
                best.throughput / base.throughput
            );
        }
    }
    out
}

/// Compares this run against a committed `BENCH_10.json`. Returns the
/// regressions found (scenario name, baseline throughput, current).
fn compare_baseline(
    baseline_raw: &str,
    current: &[Measurement],
) -> Result<Vec<(String, f64, f64)>, String> {
    let doc: serde_json::Value =
        serde_json::from_str(baseline_raw).map_err(|e| format!("baseline parse error: {e:?}"))?;
    let scenarios = doc
        .get("scenarios")
        .and_then(|s| s.as_array())
        .ok_or("baseline has no `scenarios` array")?;
    let mut regressions = Vec::new();
    for m in current {
        let Some(base) = scenarios
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some(m.name.as_str()))
        else {
            println!(
                "  baseline: no scenario `{}` (new scenario, skipping)",
                m.name
            );
            continue;
        };
        let Some(base_tp) = base.get("throughput").and_then(|t| t.as_f64()) else {
            return Err(format!("baseline scenario `{}` has no throughput", m.name));
        };
        let verdict = if m.throughput < base_tp / 2.0 {
            regressions.push((m.name.to_string(), base_tp, m.throughput));
            "REGRESSION (>2x)"
        } else {
            "ok"
        };
        println!(
            "  baseline: {:<18} {:>12.0} -> {:>12.0} {}/s  {}",
            m.name, base_tp, m.throughput, m.units, verdict
        );
    }
    Ok(regressions)
}

pub fn perf(args: &Args) {
    println!("perf: pinned benchmark scenarios (BENCH_10.json)");
    let mut measurements = vec![
        oracle_ring_large(args),
        chord_protocol(args),
        event_substrate(args),
        eventnet(args),
        stats_incremental(args),
    ];
    measurements.extend(oracle_scaling(args));

    let body: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"autobal-perf-v1\",\n  \"seed\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        args.seed,
        body.join(",\n")
    );
    write_out(&args.out, "BENCH_10.json", &json);

    if let Some(path) = &args.baseline {
        let raw = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        match compare_baseline(&raw, &measurements) {
            Ok(regressions) if regressions.is_empty() => {
                println!("  baseline: no >2x regressions");
            }
            Ok(regressions) => {
                for (name, base, cur) in &regressions {
                    eprintln!("perf regression: {name} fell from {base:.0}/s to {cur:.0}/s (>2x)");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf baseline error: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &'static str, throughput: f64) -> Measurement {
        Measurement {
            name: name.to_string(),
            substrate: "oracle-ring",
            group: None,
            workers: None,
            shards: None,
            units: "ticks",
            work: 100,
            wall_ms: 10.0,
            throughput,
            allocations: None,
            peak_vnodes: None,
            naive_wall_ms: None,
            speedup_vs_naive: None,
        }
    }

    fn doc(oracle_tp: f64) -> String {
        format!(
            "{{\n  \"schema\": \"autobal-perf-v1\",\n  \"seed\": 1,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
            m("oracle_ring_large", oracle_tp).to_json()
        )
    }

    #[test]
    fn measurement_json_is_valid_and_stable() {
        let rendered = doc(1234.5);
        let v: serde_json::Value = serde_json::from_str(&rendered).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("autobal-perf-v1"));
        let s = &v.get("scenarios").unwrap().as_array().unwrap()[0];
        assert_eq!(s.get("name").unwrap().as_str(), Some("oracle_ring_large"));
        assert_eq!(s.get("throughput").unwrap().as_f64(), Some(1234.5));
        assert!(s.get("allocations").unwrap().is_null());
    }

    #[test]
    fn baseline_flags_only_2x_regressions() {
        // Current at 40% of baseline: within the 2x gate.
        let r = compare_baseline(&doc(1000.0), &[m("oracle_ring_large", 501.0)]).unwrap();
        assert!(r.is_empty());
        // Below half: regression.
        let r = compare_baseline(&doc(1000.0), &[m("oracle_ring_large", 499.0)]).unwrap();
        assert_eq!(r.len(), 1);
        // Unknown scenario: skipped, not an error.
        let r = compare_baseline(&doc(1000.0), &[m("brand_new", 1.0)]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn baseline_errors_are_reported() {
        assert!(compare_baseline("not json", &[]).is_err());
        assert!(compare_baseline("{\"schema\": \"x\"}", &[]).is_err());
    }
}
