//! `trace` — the unified telemetry plane, end to end: record the same
//! seeded run on the oracle ring and on the real Chord protocol, dump
//! both flight-recorder traces as byte-stable JSONL, derive per-span
//! and per-tick artifacts, and diff the two decision streams for the
//! first causal divergence. A lossy event-driven run feeds the same
//! plane to produce retry/latency histograms.

use crate::common::{write_out, Args};
use autobal::protocol_sim::{run_protocol_sim_with_placement, ProtocolSimConfig};
use autobal_chord::{EventConfig, EventNet, FaultPlan};
use autobal_core::{Sim, SimConfig, StrategyKind};
use autobal_id::Id;
use autobal_stats::rng::{domains, substream, DetRng};
use autobal_stats::Histogram;
use autobal_telemetry::{
    diff_traces, render_divergence, render_summary, span_breakdown_csv, summarize, to_jsonl,
    TraceBody,
};

const NODES: usize = 16;
const TASKS: u64 = 800;

/// Seed of the pinned golden trace — deliberately independent of
/// `--seed` so CI can diff against a committed fixture no matter how
/// the run was invoked.
const PINNED_SEED: u64 = 0x601D;

/// Matched starting conditions (the `tests/differential.rs` idiom):
/// explicit node ids, every task key owned by half the ring, so both
/// substrates face identical local views on the first check tick.
fn placement(seed: u64) -> (Vec<Id>, Vec<Id>) {
    let mut rng: DetRng = substream(seed, 0, domains::PLACEMENT);
    let mut ids: Vec<Id> = Vec::new();
    while ids.len() < NODES {
        let id = Id::random(&mut rng);
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    let mut sorted = ids.clone();
    sorted.sort();
    let loaded: Vec<Id> = sorted.iter().copied().step_by(2).collect();
    let owner = |key: Id| -> Id {
        sorted
            .iter()
            .copied()
            .find(|&n| key <= n)
            .unwrap_or(sorted[0])
    };
    let mut keys = Vec::new();
    while (keys.len() as u64) < TASKS {
        let k = Id::random(&mut rng);
        if loaded.contains(&owner(k)) {
            keys.push(k);
        }
    }
    (ids, keys)
}

fn histogram_csv(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    let width = (max / 20).max(1);
    let bins = (max / width + 2) as usize;
    let mut csv = String::from("lo,hi,count\n");
    for (lo, hi, count) in Histogram::build(values, 0, width, bins).rows() {
        csv.push_str(&format!("{lo},{hi},{count}\n"));
    }
    csv
}

pub fn trace(args: &Args) {
    println!("trace: unified telemetry plane (oracle vs chord, {NODES}n/{TASKS}t)");
    let (ids, keys) = placement(args.seed);

    let mut ocfg = SimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: StrategyKind::RandomInjection,
        check_interval: 1,
        record_trace: true,
        series_interval: Some(1),
        ..SimConfig::default()
    };
    // This target exists to produce traces, so recording is always on;
    // `--events` additionally keeps the structured event log.
    ocfg.record_events = args.events;
    let oracle = Sim::with_placement(ocfg, args.seed, ids.clone(), keys.clone()).run();
    let chord = run_protocol_sim_with_placement(
        &ProtocolSimConfig {
            nodes: NODES,
            tasks: TASKS,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_trace: true,
            ..ProtocolSimConfig::default()
        },
        args.seed,
        ids,
        keys,
    );

    // Raw flight-recorder dumps (byte-stable JSONL).
    write_out(
        &args.out,
        "trace_oracle.jsonl",
        &to_jsonl(oracle.trace.records()),
    );
    write_out(
        &args.out,
        "trace_chord.jsonl",
        &to_jsonl(chord.trace.records()),
    );

    // Human summaries and per-span message breakdowns.
    let os = summarize(oracle.trace.records());
    let cs = summarize(chord.trace.records());
    println!(
        "  oracle: {} records, {} spans, {} decisions",
        os.records, os.spans, os.decisions
    );
    println!(
        "  chord:  {} records, {} spans, {} decisions",
        cs.records, cs.spans, cs.decisions
    );
    write_out(&args.out, "trace_oracle_summary.txt", &render_summary(&os));
    write_out(&args.out, "trace_chord_summary.txt", &render_summary(&cs));
    write_out(
        &args.out,
        "trace_oracle_spans.csv",
        &span_breakdown_csv(oracle.trace.records()),
    );
    write_out(
        &args.out,
        "trace_chord_spans.csv",
        &span_breakdown_csv(chord.trace.records()),
    );

    // Per-tick balance quality of the traced run, through crates/viz.
    let mut gini_chart =
        autobal_viz::LineChart::new("Gini over time of the traced run (oracle substrate)");
    gini_chart.y_label = "gini".into();
    gini_chart.push_series("random", oracle.series.gini.clone());
    write_out(&args.out, "trace_gini.svg", &gini_chart.to_svg());

    // Divergence diagnosis across the substrates.
    let div = diff_traces(oracle.trace.records(), chord.trace.records());
    let report = render_divergence(&div);
    println!("  diff: {}", report.lines().next().unwrap_or(""));
    write_out(&args.out, "trace_diff.txt", &report);

    // Retry/latency histograms from a traced lossy event-driven run —
    // the third substrate feeding the same plane, through crates/stats.
    let mut rng: DetRng = substream(args.seed, 1, domains::PLACEMENT);
    let mut net = EventNet::bootstrap(EventConfig::default(), 64, &mut rng);
    net.enable_trace(args.seed);
    net.set_fault_plan(FaultPlan::lossy(args.seed, 0.10));
    let origin = net.node_ids().first().copied().expect("nonempty ring");
    let mut reqs = Vec::new();
    for _ in 0..200 {
        let key = Id::random(&mut rng);
        if let Some(r) = net.lookup(origin, key) {
            reqs.push(r);
        }
    }
    net.run_until(30_000);
    let done: Vec<_> = net
        .take_completed()
        .into_iter()
        .filter(|l| reqs.contains(&l.req))
        .collect();
    let latencies: Vec<u64> = done
        .iter()
        .filter(|l| l.owner.is_some())
        .map(|l| l.latency)
        .collect();
    let retries: Vec<u64> = net
        .trace()
        .records()
        .iter()
        .filter_map(|r| match &r.body {
            TraceBody::Message { retries, .. } => Some(*retries),
            _ => None,
        })
        .collect();
    println!(
        "  eventnet: {} lookups resolved, {} latency samples, {} traced messages",
        done.len(),
        latencies.len(),
        retries.len()
    );
    // The raw eventnet trace is dominated by maintenance traffic and
    // gets huge; the histograms are its derived artifacts.
    write_out(
        &args.out,
        "trace_latency_hist.csv",
        &histogram_csv(&latencies),
    );
    write_out(&args.out, "trace_retry_hist.csv", &histogram_csv(&retries));

    // Pinned-seed golden trace for the CI byte-compare.
    let pinned = Sim::new(
        SimConfig {
            nodes: 12,
            tasks: 240,
            strategy: StrategyKind::RandomInjection,
            check_interval: 1,
            record_trace: true,
            ..SimConfig::default()
        },
        PINNED_SEED,
    )
    .run();
    write_out(
        &args.out,
        "trace_pinned.jsonl",
        &to_jsonl(pinned.trace.records()),
    );
}
