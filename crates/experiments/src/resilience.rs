//! `repro resilience` — strategy resilience under network adversity.
//!
//! The paper's experiments assume a benign network; the fault plane
//! lets us ask how much of each strategy's speedup survives hostile
//! conditions. This driver sweeps message-loss rate × crash-failure
//! rate on the **protocol substrate** (real joins, real maintenance,
//! real retries) and reports, per strategy:
//!
//! * the runtime factor and its degradation versus the fault-free run,
//! * tasks permanently lost (zero whenever replication covers crashes),
//! * the retry/timeout/drop bill the fault plane extracted.
//!
//! The headline claims this table backs: with the default replication
//! factor, **no tasks are lost** at ≤ 10% loss + 5% crashes, and every
//! strategy finishes within ~2× of its fault-free runtime at 10% loss.

use crate::common::{write_out, Args};
use autobal::protocol_sim::{run_protocol_sim, ProtocolRun, ProtocolSimConfig};
use autobal_chord::{FaultPlan, Partition};
use autobal_core::StrategyKind;
use autobal_workload::tables::{f3, Table};
use rayon::prelude::*;

const NODES: usize = 48;
const TASKS: u64 = 2_400;

const STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::None,
    StrategyKind::RandomInjection,
    StrategyKind::NeighborInjection,
    StrategyKind::SmartNeighbor,
    StrategyKind::Invitation,
];
const LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
const CRASH_RATES: [f64; 2] = [0.0, 0.05];

fn cell_cfg(kind: StrategyKind, loss: f64, crash: f64, fault_seed: u64) -> ProtocolSimConfig {
    ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: kind,
        fault: FaultPlan::lossy(fault_seed, loss),
        crash_rate: crash,
        ..ProtocolSimConfig::default()
    }
}

struct Cell {
    kind: StrategyKind,
    loss: f64,
    crash: f64,
    mean_factor: f64,
    completed: u64,
    tasks_lost: u64,
    workers_crashed: u64,
    retries: u64,
    timeouts: u64,
    dropped: u64,
}

fn run_cell(args: &Args, kind: StrategyKind, loss: f64, crash: f64) -> Cell {
    let runs: Vec<ProtocolRun> = (0..args.trials)
        .map(|t| {
            let seed = args.seed.wrapping_add(t);
            run_protocol_sim(&cell_cfg(kind, loss, crash, seed ^ 0xFA17), seed)
        })
        .collect();
    Cell {
        kind,
        loss,
        crash,
        mean_factor: runs.iter().map(|r| r.runtime_factor).sum::<f64>() / runs.len() as f64,
        completed: runs.iter().filter(|r| r.completed).count() as u64,
        tasks_lost: runs.iter().map(|r| r.tasks_lost).sum(),
        workers_crashed: runs.iter().map(|r| r.workers_crashed).sum(),
        retries: runs.iter().map(|r| r.messages.retries).sum(),
        timeouts: runs.iter().map(|r| r.messages.timeouts).sum(),
        dropped: runs.iter().map(|r| r.messages.dropped).sum(),
    }
}

/// The loss × crash sweep (headline resilience table).
pub fn resilience(args: &Args) {
    println!("resilience: loss × crash sweep on the protocol substrate");
    let grid: Vec<(StrategyKind, f64, f64)> = STRATEGIES
        .iter()
        .flat_map(|&k| {
            LOSS_RATES
                .iter()
                .flat_map(move |&l| CRASH_RATES.iter().map(move |&c| (k, l, c)))
        })
        .collect();

    let cells: Vec<Cell> = grid
        .into_par_iter()
        .map(|(k, l, c)| run_cell(args, k, l, c))
        .collect();

    let mut table = Table::new(vec![
        "strategy",
        "loss",
        "crash",
        "runtime factor",
        "× fault-free",
        "completed",
        "tasks lost",
        "workers crashed",
        "retries",
        "timeouts",
        "dropped",
    ]);
    for cell in &cells {
        // Degradation is measured against the same strategy's clean run.
        let clean = cells
            .iter()
            .find(|c| c.kind == cell.kind && c.loss == 0.0 && c.crash == 0.0)
            .expect("grid contains the fault-free cell");
        let degradation = cell.mean_factor / clean.mean_factor.max(f64::EPSILON);
        println!(
            "  {:<20} loss {:>4.0}% crash {:>2.0}% → factor {:.2} ({:.2}× clean), lost {}",
            format!("{:?}", cell.kind),
            cell.loss * 100.0,
            cell.crash * 100.0,
            cell.mean_factor,
            degradation,
            cell.tasks_lost,
        );
        table.push_row(vec![
            format!("{:?}", cell.kind),
            format!("{:.2}", cell.loss),
            format!("{:.2}", cell.crash),
            f3(cell.mean_factor),
            f3(degradation),
            format!("{}/{}", cell.completed, args.trials),
            cell.tasks_lost.to_string(),
            cell.workers_crashed.to_string(),
            cell.retries.to_string(),
            cell.timeouts.to_string(),
            cell.dropped.to_string(),
        ]);
    }
    write_out(&args.out, "resilience.md", &table.to_markdown());
    write_out(&args.out, "resilience.csv", &table.to_csv());

    // The replication guarantee, stated loudly when it holds.
    let covered = cells
        .iter()
        .filter(|c| c.loss <= 0.10 && c.crash <= 0.05)
        .all(|c| c.tasks_lost == 0);
    println!(
        "  replication guarantee (≤10% loss, ≤5% crash ⇒ 0 tasks lost): {}",
        if covered { "HOLDS" } else { "VIOLATED" }
    );

    partition_healing(args);
}

// ---------------------------------------------------------------------
// Partition healing: transient cuts and the cost of reconvergence.
// ---------------------------------------------------------------------

/// Window lengths (ticks the cut stays up) crossed with cut counts
/// (consecutive windows, each at a fresh seed-derived pivot).
const WINDOWS: [u64; 2] = [10, 30];
const CUTS: [usize; 2] = [1, 3];
/// Ticks before the first cut opens, and the gap between healed cuts.
const CUT_LEAD: u64 = 10;

/// `cuts` consecutive partition windows of `window` ticks each,
/// separated by `CUT_LEAD` healed ticks.
fn partition_plan(seed: u64, window: u64, cuts: usize) -> FaultPlan {
    let mut partitions = Vec::with_capacity(cuts);
    let mut start = CUT_LEAD;
    for _ in 0..cuts {
        partitions.push(Partition {
            start,
            end: start + window,
        });
        start += window + CUT_LEAD;
    }
    FaultPlan {
        seed,
        partitions,
        ..FaultPlan::default()
    }
}

struct HealCell {
    kind: StrategyKind,
    window: u64,
    cuts: usize,
    mean_factor: f64,
    /// Mean ticks from the final heal to run completion — how long the
    /// strategy needs to reconverge once traffic flows again.
    mean_reconverge: f64,
    completed: u64,
    tasks_lost: u64,
    dropped: u64,
    retries: u64,
    timeouts: u64,
}

fn run_heal_cell(args: &Args, kind: StrategyKind, window: u64, cuts: usize) -> HealCell {
    let last_heal = CUT_LEAD + (window + CUT_LEAD) * cuts.saturating_sub(1) as u64 + window;
    let runs: Vec<ProtocolRun> = (0..args.trials)
        .map(|t| {
            let seed = args.seed.wrapping_add(t);
            let cfg = ProtocolSimConfig {
                nodes: NODES,
                tasks: TASKS,
                strategy: kind,
                fault: partition_plan(seed ^ 0x9A27, window, cuts),
                ..ProtocolSimConfig::default()
            };
            run_protocol_sim(&cfg, seed)
        })
        .collect();
    HealCell {
        kind,
        window,
        cuts,
        mean_factor: runs.iter().map(|r| r.runtime_factor).sum::<f64>() / runs.len() as f64,
        mean_reconverge: runs
            .iter()
            .map(|r| r.ticks.saturating_sub(last_heal) as f64)
            .sum::<f64>()
            / runs.len() as f64,
        completed: runs.iter().filter(|r| r.completed).count() as u64,
        tasks_lost: runs.iter().map(|r| r.tasks_lost).sum(),
        dropped: runs.iter().map(|r| r.messages.dropped).sum(),
        retries: runs.iter().map(|r| r.messages.retries).sum(),
        timeouts: runs.iter().map(|r| r.messages.timeouts).sum(),
    }
}

/// The window-length × cut-count sweep: transient partitions heal on
/// their own, so the question is purely how much runtime each strategy
/// loses and how quickly it finishes once the last cut closes.
fn partition_healing(args: &Args) {
    println!("resilience: partition-healing sweep (window × cuts)");
    let grid: Vec<(StrategyKind, u64, usize)> = STRATEGIES
        .iter()
        .flat_map(|&k| {
            std::iter::once((k, 0u64, 0usize)).chain(
                WINDOWS
                    .iter()
                    .flat_map(move |&w| CUTS.iter().map(move |&c| (k, w, c))),
            )
        })
        .collect();

    let cells: Vec<HealCell> = grid
        .into_par_iter()
        .map(|(k, w, c)| run_heal_cell(args, k, w, c))
        .collect();

    let mut table = Table::new(vec![
        "strategy",
        "window",
        "cuts",
        "runtime factor",
        "× uncut",
        "reconverge ticks",
        "completed",
        "tasks lost",
        "dropped",
        "retries",
        "timeouts",
    ]);
    for cell in &cells {
        let clean = cells
            .iter()
            .find(|c| c.kind == cell.kind && c.cuts == 0)
            .expect("grid contains the uncut cell");
        let degradation = cell.mean_factor / clean.mean_factor.max(f64::EPSILON);
        println!(
            "  {:<20} window {:>2} × {} cuts → factor {:.2} ({:.2}× uncut), reconverge {:.0} ticks",
            format!("{:?}", cell.kind),
            cell.window,
            cell.cuts,
            cell.mean_factor,
            degradation,
            cell.mean_reconverge,
        );
        table.push_row(vec![
            format!("{:?}", cell.kind),
            cell.window.to_string(),
            cell.cuts.to_string(),
            f3(cell.mean_factor),
            f3(degradation),
            f3(cell.mean_reconverge),
            format!("{}/{}", cell.completed, args.trials),
            cell.tasks_lost.to_string(),
            cell.dropped.to_string(),
            cell.retries.to_string(),
            cell.timeouts.to_string(),
        ]);
    }
    write_out(&args.out, "partition_healing.md", &table.to_markdown());
    write_out(&args.out, "partition_healing.csv", &table.to_csv());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_is_in_every_strategys_grid() {
        for k in STRATEGIES {
            assert!(
                LOSS_RATES.contains(&0.0) && CRASH_RATES.contains(&0.0),
                "{k:?}"
            );
        }
    }

    #[test]
    fn one_cell_runs_end_to_end() {
        let args = Args {
            targets: vec![],
            trials: 1,
            full: false,
            out: std::env::temp_dir().join("autobal-resilience-test"),
            seed: 7,
            trace: None,
            events: false,
            baseline: None,
            cache: std::sync::Arc::new(autobal_workload::WorkloadCache::new()),
        };
        let cell = run_cell(&args, StrategyKind::RandomInjection, 0.05, 0.0);
        assert_eq!(cell.completed, 1);
        assert!(cell.dropped > 0, "5% loss must eat some messages");
        assert_eq!(cell.tasks_lost, 0, "no crashes ⇒ nothing lost");
    }

    #[test]
    fn partition_plan_lays_out_disjoint_windows() {
        let plan = partition_plan(3, 10, 3);
        assert_eq!(plan.partitions.len(), 3);
        for w in plan.partitions.windows(2) {
            assert!(w[0].end < w[1].start, "cuts heal before the next opens");
        }
        assert!(plan.validate().is_ok());
        assert!(plan.is_active());
        // cuts == 0 must be a genuinely inert plan (the uncut baseline).
        assert!(!partition_plan(3, 10, 0).is_active());
    }

    #[test]
    fn one_heal_cell_runs_end_to_end() {
        let args = Args {
            targets: vec![],
            trials: 1,
            full: false,
            out: std::env::temp_dir().join("autobal-resilience-test"),
            seed: 7,
            trace: None,
            events: false,
            baseline: None,
            cache: std::sync::Arc::new(autobal_workload::WorkloadCache::new()),
        };
        let cell = run_heal_cell(&args, StrategyKind::SmartNeighbor, 10, 2);
        assert_eq!(cell.completed, 1);
        assert_eq!(cell.tasks_lost, 0, "partitions drop messages, not keys");
        assert!(
            cell.dropped > 0 || cell.timeouts > 0,
            "the cut actually blocked traffic"
        );
    }
}
