//! `repro resilience` — strategy resilience under network adversity.
//!
//! The paper's experiments assume a benign network; the fault plane
//! lets us ask how much of each strategy's speedup survives hostile
//! conditions. This driver sweeps message-loss rate × crash-failure
//! rate on the **protocol substrate** (real joins, real maintenance,
//! real retries) and reports, per strategy:
//!
//! * the runtime factor and its degradation versus the fault-free run,
//! * tasks permanently lost (zero whenever replication covers crashes),
//! * the retry/timeout/drop bill the fault plane extracted.
//!
//! The headline claims this table backs: with the default replication
//! factor, **no tasks are lost** at ≤ 10% loss + 5% crashes, and every
//! strategy finishes within ~2× of its fault-free runtime at 10% loss.

use crate::common::{write_out, Args};
use autobal::protocol_sim::{run_protocol_sim, ProtocolRun, ProtocolSimConfig};
use autobal_chord::FaultPlan;
use autobal_core::StrategyKind;
use autobal_workload::tables::{f3, Table};
use rayon::prelude::*;

const NODES: usize = 48;
const TASKS: u64 = 2_400;

const STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::None,
    StrategyKind::RandomInjection,
    StrategyKind::NeighborInjection,
    StrategyKind::SmartNeighbor,
    StrategyKind::Invitation,
];
const LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
const CRASH_RATES: [f64; 2] = [0.0, 0.05];

fn cell_cfg(kind: StrategyKind, loss: f64, crash: f64, fault_seed: u64) -> ProtocolSimConfig {
    ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        strategy: kind,
        fault: FaultPlan::lossy(fault_seed, loss),
        crash_rate: crash,
        ..ProtocolSimConfig::default()
    }
}

struct Cell {
    kind: StrategyKind,
    loss: f64,
    crash: f64,
    mean_factor: f64,
    completed: u64,
    tasks_lost: u64,
    workers_crashed: u64,
    retries: u64,
    timeouts: u64,
    dropped: u64,
}

fn run_cell(args: &Args, kind: StrategyKind, loss: f64, crash: f64) -> Cell {
    let runs: Vec<ProtocolRun> = (0..args.trials)
        .map(|t| {
            let seed = args.seed.wrapping_add(t);
            run_protocol_sim(&cell_cfg(kind, loss, crash, seed ^ 0xFA17), seed)
        })
        .collect();
    Cell {
        kind,
        loss,
        crash,
        mean_factor: runs.iter().map(|r| r.runtime_factor).sum::<f64>() / runs.len() as f64,
        completed: runs.iter().filter(|r| r.completed).count() as u64,
        tasks_lost: runs.iter().map(|r| r.tasks_lost).sum(),
        workers_crashed: runs.iter().map(|r| r.workers_crashed).sum(),
        retries: runs.iter().map(|r| r.messages.retries).sum(),
        timeouts: runs.iter().map(|r| r.messages.timeouts).sum(),
        dropped: runs.iter().map(|r| r.messages.dropped).sum(),
    }
}

/// The loss × crash sweep (headline resilience table).
pub fn resilience(args: &Args) {
    println!("resilience: loss × crash sweep on the protocol substrate");
    let grid: Vec<(StrategyKind, f64, f64)> = STRATEGIES
        .iter()
        .flat_map(|&k| {
            LOSS_RATES
                .iter()
                .flat_map(move |&l| CRASH_RATES.iter().map(move |&c| (k, l, c)))
        })
        .collect();

    let cells: Vec<Cell> = grid
        .into_par_iter()
        .map(|(k, l, c)| run_cell(args, k, l, c))
        .collect();

    let mut table = Table::new(vec![
        "strategy",
        "loss",
        "crash",
        "runtime factor",
        "× fault-free",
        "completed",
        "tasks lost",
        "workers crashed",
        "retries",
        "timeouts",
        "dropped",
    ]);
    for cell in &cells {
        // Degradation is measured against the same strategy's clean run.
        let clean = cells
            .iter()
            .find(|c| c.kind == cell.kind && c.loss == 0.0 && c.crash == 0.0)
            .expect("grid contains the fault-free cell");
        let degradation = cell.mean_factor / clean.mean_factor.max(f64::EPSILON);
        println!(
            "  {:<20} loss {:>4.0}% crash {:>2.0}% → factor {:.2} ({:.2}× clean), lost {}",
            format!("{:?}", cell.kind),
            cell.loss * 100.0,
            cell.crash * 100.0,
            cell.mean_factor,
            degradation,
            cell.tasks_lost,
        );
        table.push_row(vec![
            format!("{:?}", cell.kind),
            format!("{:.2}", cell.loss),
            format!("{:.2}", cell.crash),
            f3(cell.mean_factor),
            f3(degradation),
            format!("{}/{}", cell.completed, args.trials),
            cell.tasks_lost.to_string(),
            cell.workers_crashed.to_string(),
            cell.retries.to_string(),
            cell.timeouts.to_string(),
            cell.dropped.to_string(),
        ]);
    }
    write_out(&args.out, "resilience.md", &table.to_markdown());
    write_out(&args.out, "resilience.csv", &table.to_csv());

    // The replication guarantee, stated loudly when it holds.
    let covered = cells
        .iter()
        .filter(|c| c.loss <= 0.10 && c.crash <= 0.05)
        .all(|c| c.tasks_lost == 0);
    println!(
        "  replication guarantee (≤10% loss, ≤5% crash ⇒ 0 tasks lost): {}",
        if covered { "HOLDS" } else { "VIOLATED" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_is_in_every_strategys_grid() {
        for k in STRATEGIES {
            assert!(
                LOSS_RATES.contains(&0.0) && CRASH_RATES.contains(&0.0),
                "{k:?}"
            );
        }
    }

    #[test]
    fn one_cell_runs_end_to_end() {
        let args = Args {
            targets: vec![],
            trials: 1,
            out: std::env::temp_dir().join("autobal-resilience-test"),
            seed: 7,
            trace: None,
            events: false,
            baseline: None,
            cache: std::sync::Arc::new(autobal_workload::WorkloadCache::new()),
        };
        let cell = run_cell(&args, StrategyKind::RandomInjection, 0.05, 0.0);
        assert_eq!(cell.completed, 1);
        assert!(cell.dropped > 0, "5% loss must eat some messages");
        assert_eq!(cell.tasks_lost, 0, "no crashes ⇒ nothing lost");
    }
}
