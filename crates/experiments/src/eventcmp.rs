//! `repro eventtime` — decision quality versus message latency.
//!
//! The comparison the event-time substrate exists to make: the same
//! strategy stack, the same seed, the same workload, run (a) on the
//! synchronous protocol substrate where every load query answers
//! instantly, and (b) on the asynchronous overlay where strategy
//! traffic races stabilization under real message latency. The table
//! scores *decision quality* — final Gini over per-worker tasks
//! consumed, runtime factor, message bills on both planes, and the
//! wire's lookup-latency tail — across latency settings and
//! stabilization cadences.
//!
//! The `latency=0` row doubles as a live parity check: with an inert
//! fault plan the event run must land on exactly the protocol run's
//! tick count and Sybil census (the trace-level pin lives in
//! `tests/trace_plane.rs`; this asserts the same anchor end to end in
//! the experiment binary).
//!
//! A finding the table makes visible: on a *reliable* wire, latency
//! alone never changes the decisions — checks block on their replies,
//! so staleness cannot leak in; the cost shows up purely as event-time
//! stretch and wire traffic (the stabilization cadence multiplies the
//! bill). Decision quality only moves once the wire actually fails —
//! the final lossy row is where the Gini leaves the synchronous
//! reference.

use crate::common::{write_out, Args};
use autobal::event_sim::{run_event_sim, EventSimConfig};
use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal_chord::EventConfig;
use autobal_core::StrategyKind;
use autobal_stats::fairness::gini;
use autobal_stats::summary::percentile_sorted;
use autobal_workload::tables::{f3, Table};

const NODES: usize = 48;
const TASKS: u64 = 3_200;

fn proto_cfg() -> ProtocolSimConfig {
    ProtocolSimConfig {
        nodes: NODES,
        tasks: TASKS,
        // The probing strategy: every decision reads remote loads, so
        // staleness from wire latency lands directly on its choices.
        strategy: StrategyKind::SmartNeighbor,
        ..ProtocolSimConfig::default()
    }
}

struct Row {
    label: String,
    stabilize: String,
    gini: f64,
    runtime_factor: f64,
    net_msgs: u64,
    wire_msgs: u64,
    lookup_p50: f64,
    lookup_p99: f64,
    timeouts: u64,
}

impl Row {
    fn push_into(self, table: &mut Table) {
        table.push_row(vec![
            self.label,
            self.stabilize,
            f3(self.gini),
            f3(self.runtime_factor),
            self.net_msgs.to_string(),
            self.wire_msgs.to_string(),
            f3(self.lookup_p50),
            f3(self.lookup_p99),
            self.timeouts.to_string(),
        ]);
    }
}

fn event_row(cfg: &EventSimConfig, seed: u64, label: String) -> Row {
    let run = run_event_sim(cfg, seed);
    let mut lats = run.lookup_latencies.clone();
    lats.sort_unstable();
    Row {
        label,
        stabilize: cfg.event.stabilize_every.to_string(),
        gini: gini(&run.tasks_done),
        runtime_factor: run.runtime_factor,
        net_msgs: run.messages.total(),
        wire_msgs: run.wire.total(),
        lookup_p50: percentile_sorted(&lats, 50.0),
        lookup_p99: percentile_sorted(&lats, 99.0),
        timeouts: run.lookup_timeouts,
    }
}

/// Decision quality across the latency axis: the synchronous protocol
/// reference, the degenerate (zero-latency) event run pinned to it,
/// and real latencies crossed with stabilization cadences.
pub fn eventtime(args: &Args) {
    println!("eventtime: decision quality vs message latency (event substrate)");
    let seed = args.seed ^ 0xE7;
    let mut table = Table::new(vec![
        "substrate / latency",
        "stabilize every",
        "final gini",
        "runtime factor",
        "net msgs",
        "wire msgs",
        "lookup p50",
        "lookup p99",
        "lookup timeouts",
    ]);

    // The synchronous reference: instant replies, omniscient wire.
    let proto = run_protocol_sim(&proto_cfg(), seed);
    Row {
        label: "protocol (sync)".to_string(),
        stabilize: "-".to_string(),
        gini: gini(&proto.tasks_done),
        runtime_factor: proto.runtime_factor,
        net_msgs: proto.messages.total(),
        wire_msgs: 0,
        lookup_p50: 0.0,
        lookup_p99: 0.0,
        timeouts: 0,
    }
    .push_into(&mut table);
    println!(
        "  protocol (sync): gini {:.3}, factor {:.3}, {} ticks",
        gini(&proto.tasks_done),
        proto.runtime_factor,
        proto.ticks
    );

    // The degenerate anchor plus the measured latency sweep, each
    // latency crossed with a fast and a slow stabilization cadence.
    for latency in [0u64, 10, 40] {
        for stabilize_every in [50u64, 200] {
            // At zero latency the cadence cannot matter (the degenerate
            // path stabilizes synchronously); one row suffices.
            if latency == 0 && stabilize_every != 50 {
                continue;
            }
            let cfg = EventSimConfig {
                proto: proto_cfg(),
                event: EventConfig {
                    latency,
                    stabilize_every,
                    ..EventConfig::default()
                },
                ..EventSimConfig::default()
            };
            let label = if latency == 0 {
                "event latency=0 (degenerate)".to_string()
            } else {
                format!("event latency={latency}")
            };
            if latency == 0 {
                // Live parity anchor: same decisions, same schedule.
                let run = run_event_sim(&cfg, seed);
                assert_eq!(
                    run.ticks, proto.ticks,
                    "degenerate event run left the protocol schedule"
                );
                assert_eq!(run.sybils_created, proto.sybils_created);
                assert_eq!(run.tasks_done, proto.tasks_done);
            }
            let row = event_row(&cfg, seed, label);
            println!(
                "  latency {latency:>3} stabilize {stabilize_every:>3}: gini {:.3}, factor {:.3}, wire {} msgs, p99 {:.0}, timeouts {}",
                row.gini, row.runtime_factor, row.wire_msgs, row.lookup_p99, row.timeouts
            );
            row.push_into(&mut table);
        }
    }

    // The measurement row: a faulty wire. Lost queries strand probes
    // until the retry budget or probe timeout fires, so checks decide
    // on partial information — here decision quality finally diverges
    // from the synchronous reference.
    let lossy = EventSimConfig {
        proto: ProtocolSimConfig {
            fault: autobal_chord::FaultPlan {
                seed: seed ^ 0x10,
                loss_rate: 0.05,
                ..autobal_chord::FaultPlan::default()
            },
            ..proto_cfg()
        },
        event: EventConfig {
            latency: 10,
            stabilize_every: 200,
            ..EventConfig::default()
        },
        ..EventSimConfig::default()
    };
    let row = event_row(&lossy, seed, "event latency=10 loss=5%".to_string());
    println!(
        "  latency  10 loss 5%: gini {:.3}, factor {:.3}, wire {} msgs, p99 {:.0}, timeouts {}",
        row.gini, row.runtime_factor, row.wire_msgs, row.lookup_p99, row.timeouts
    );
    row.push_into(&mut table);

    write_out(&args.out, "eventtime.md", &table.to_markdown());
    write_out(&args.out, "eventtime.csv", &table.to_csv());
}
