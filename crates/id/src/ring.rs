//! Clockwise-arc geometry on the 160-bit identifier circle.
//!
//! Chord assigns each key to the first node whose identifier is equal to
//! or follows the key clockwise; equivalently a node owns every key in the
//! half-open arc `(predecessor, self]`. All the containment predicates
//! here follow that convention and handle wrap-around through zero, plus
//! the degenerate single-node ring where a node is its own predecessor and
//! owns everything.

use crate::Id;

/// True iff `x` lies in the clockwise half-open arc `(a, b]`.
///
/// When `a == b` the arc is the *entire* ring (a single node owns every
/// key), matching Chord's convention.
#[inline]
pub fn in_arc(a: Id, b: Id, x: Id) -> bool {
    if a == b {
        return true;
    }
    if a < b {
        a < x && x <= b
    } else {
        // Arc wraps through zero.
        x > a || x <= b
    }
}

/// True iff `x` lies in the clockwise open arc `(a, b)`.
///
/// When `a == b` the arc is the whole ring minus the shared endpoint —
/// the convention Chord's `notify`/stabilize step uses.
#[inline]
pub fn in_open_arc(a: Id, b: Id, x: Id) -> bool {
    if a == b {
        return x != a;
    }
    if a < b {
        a < x && x < b
    } else {
        x > a || x < b
    }
}

/// True iff `x` lies in the clockwise half-open arc `[a, b)`.
#[inline]
pub fn in_arc_incl_start(a: Id, b: Id, x: Id) -> bool {
    if a == b {
        return true;
    }
    if a < b {
        a <= x && x < b
    } else {
        x >= a || x < b
    }
}

/// Clockwise distance from `from` to `to` (how far you walk clockwise to
/// get from `from` to `to`); `0` when they coincide.
#[inline]
pub fn distance(from: Id, to: Id) -> Id {
    to.wrapping_sub(from)
}

/// Length of the arc `(pred, node]` — the measure of key space `node`
/// owns. A single-node ring (`pred == node`) owns the full ring, which we
/// report as [`Id::MAX`] (one less than the true 2^160, which does not
/// fit; the error is negligible for every statistic we compute).
#[inline]
pub fn arc_len(pred: Id, node: Id) -> Id {
    if pred == node {
        Id::MAX
    } else {
        node.wrapping_sub(pred)
    }
}

/// The identifier halfway along the clockwise arc from `a` to `b`; the
/// spot where a node plants a Sybil to split the arc `(a, b]` in half.
///
/// For `a == b` (full ring) this is the antipode of `a`.
#[inline]
pub fn midpoint(a: Id, b: Id) -> Id {
    let d = b.wrapping_sub(a);
    if d.is_zero() {
        // Full ring: halfway around.
        return a.wrapping_add(Id::pow2(159));
    }
    a.wrapping_add(d.half())
}

/// The point a fraction `num/den` of the way clockwise from `a` to `b`.
/// Used by tests and by placement policies that avoid exact midpoints.
///
/// # Panics
/// Panics if `den == 0` or `num > den`.
pub fn fraction_point(a: Id, b: Id, num: u32, den: u32) -> Id {
    assert!(den > 0 && num <= den);
    let d = b.wrapping_sub(a);
    // Compute d * num / den with 160-bit ops: repeated halving only works
    // for powers of two, so do schoolbook multiply-then-divide on limbs
    // via u128 per limb.
    let limbs = d.limbs();
    let mut acc = [0u128; 3];
    for (i, &l) in limbs.iter().enumerate() {
        acc[i] = l as u128 * num as u128;
    }
    // Propagate carries.
    let mut carry = 0u128;
    let mut prod = [0u64; 3];
    for i in 0..3 {
        let v = acc[i] + carry;
        prod[i] = v as u64;
        carry = v >> 64;
    }
    // Divide the 3-limb product by den, most-significant first.
    let mut rem = carry; // bits above limb 2 (can be nonzero only transiently)
    let mut quot = [0u64; 3];
    for i in (0..3).rev() {
        let cur = (rem << 64) | prod[i] as u128;
        quot[i] = (cur / den as u128) as u64;
        rem = cur % den as u128;
    }
    let step = Id::from_limbs(quot[0], quot[1], quot[2]);
    a.wrapping_add(step)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::from(v)
    }

    #[test]
    fn in_arc_simple() {
        assert!(in_arc(id(10), id(20), id(15)));
        assert!(in_arc(id(10), id(20), id(20))); // end inclusive
        assert!(!in_arc(id(10), id(20), id(10))); // start exclusive
        assert!(!in_arc(id(10), id(20), id(25)));
        assert!(!in_arc(id(10), id(20), id(5)));
    }

    #[test]
    fn in_arc_wrapping() {
        let a = Id::MAX.wrapping_sub(id(5));
        let b = id(5);
        assert!(in_arc(a, b, Id::ZERO));
        assert!(in_arc(a, b, Id::MAX));
        assert!(in_arc(a, b, id(5)));
        assert!(!in_arc(a, b, a));
        assert!(!in_arc(a, b, id(6)));
        assert!(!in_arc(a, b, id(1000)));
    }

    #[test]
    fn degenerate_arc_is_full_ring() {
        assert!(in_arc(id(7), id(7), id(7)));
        assert!(in_arc(id(7), id(7), id(123456)));
        assert!(in_arc(id(7), id(7), Id::ZERO));
    }

    #[test]
    fn open_arc_excludes_both_ends() {
        assert!(in_open_arc(id(10), id(20), id(15)));
        assert!(!in_open_arc(id(10), id(20), id(10)));
        assert!(!in_open_arc(id(10), id(20), id(20)));
        // Degenerate: everything except the endpoint.
        assert!(in_open_arc(id(7), id(7), id(8)));
        assert!(!in_open_arc(id(7), id(7), id(7)));
    }

    #[test]
    fn incl_start_arc() {
        assert!(in_arc_incl_start(id(10), id(20), id(10)));
        assert!(!in_arc_incl_start(id(10), id(20), id(20)));
        let a = Id::MAX;
        let b = id(3);
        assert!(in_arc_incl_start(a, b, Id::MAX));
        assert!(in_arc_incl_start(a, b, Id::ZERO));
        assert!(!in_arc_incl_start(a, b, id(3)));
    }

    #[test]
    fn complementary_arcs_partition_the_ring() {
        // For a != b, every x is in exactly one of (a,b] and (b,a].
        let a = id(1000);
        let b = id(77);
        for xv in [0u128, 1, 77, 78, 999, 1000, 1001, u64::MAX as u128] {
            let x = id(xv);
            assert!(in_arc(a, b, x) ^ in_arc(b, a, x), "x = {xv}");
        }
    }

    #[test]
    fn distance_and_arc_len() {
        assert_eq!(distance(id(10), id(25)), id(15));
        assert_eq!(distance(id(25), id(10)), Id::MAX.wrapping_sub(id(14)));
        assert_eq!(arc_len(id(10), id(25)), id(15));
        assert_eq!(arc_len(id(7), id(7)), Id::MAX);
    }

    #[test]
    fn midpoint_bisects() {
        let m = midpoint(id(10), id(20));
        assert_eq!(m, id(15));
        // Wrapping arc: from MAX-1 to 3 has length 5, midpoint 2 past MAX-1.
        let a = Id::MAX.wrapping_sub(Id::ONE);
        let m2 = midpoint(a, id(3));
        assert_eq!(m2, a.wrapping_add(id(2)));
        assert!(in_arc(a, id(3), m2));
    }

    #[test]
    fn midpoint_of_full_ring_is_antipode() {
        let a = id(42);
        assert_eq!(midpoint(a, a), a.wrapping_add(Id::pow2(159)));
    }

    #[test]
    fn fraction_point_endpoints_and_middle() {
        assert_eq!(fraction_point(id(100), id(200), 0, 4), id(100));
        assert_eq!(fraction_point(id(100), id(200), 4, 4), id(200));
        assert_eq!(fraction_point(id(100), id(200), 1, 2), id(150));
        assert_eq!(fraction_point(id(100), id(200), 1, 4), id(125));
    }

    #[test]
    fn fraction_point_wrapping_arc() {
        let a = Id::MAX.wrapping_sub(id(9)); // 10 before wrap
        let b = id(10);
        let q = fraction_point(a, b, 1, 2);
        assert_eq!(q, Id::ZERO);
    }

    #[test]
    fn fraction_point_large_ids_no_overflow() {
        let a = Id::ZERO;
        let b = Id::MAX;
        let half = fraction_point(a, b, 1, 2);
        // MAX/2 = 2^159 - 1 (integer division).
        assert_eq!(half, Id::pow2(159).wrapping_sub(Id::ONE));
        let third = fraction_point(a, b, 1, 3);
        assert!(third < half);
        let two_thirds = fraction_point(a, b, 2, 3);
        assert!(two_thirds > half);
    }
}
