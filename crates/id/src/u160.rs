//! A 160-bit unsigned integer with wrapping arithmetic modulo 2^160.
//!
//! Stored as three little-endian 64-bit limbs; the top limb only ever
//! holds 32 significant bits, and every operation renormalizes so the
//! invariant `limbs[2] < 2^32` always holds.

use core::cmp::Ordering;
use core::fmt;

/// Mask for the 32 significant bits of the top limb.
const TOP_MASK: u64 = (1u64 << 32) - 1;

/// A 160-bit ring identifier.
///
/// `Id` is the position of a node, Sybil, or task key on the Chord
/// identifier circle. Arithmetic wraps modulo 2^160, so `a + d` walks `d`
/// steps clockwise and `b - a` is the clockwise distance from `a` to `b`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Id {
    /// Little-endian limbs; `limbs[2] < 2^32`.
    limbs: [u64; 3],
}

impl Id {
    /// The additive identity (position zero on the ring).
    pub const ZERO: Id = Id { limbs: [0, 0, 0] };

    /// The largest identifier, `2^160 - 1`.
    pub const MAX: Id = Id {
        limbs: [u64::MAX, u64::MAX, TOP_MASK],
    };

    /// Identifier `1`.
    pub const ONE: Id = Id { limbs: [1, 0, 0] };

    /// Builds an identifier from little-endian 64-bit limbs, truncating the
    /// top limb to 32 bits so the result is a canonical 160-bit value.
    #[inline]
    pub const fn from_limbs(lo: u64, mid: u64, hi: u64) -> Id {
        Id {
            limbs: [lo, mid, hi & TOP_MASK],
        }
    }

    /// The little-endian limbs `[lo, mid, hi]` (with `hi < 2^32`).
    #[inline]
    pub const fn limbs(self) -> [u64; 3] {
        self.limbs
    }

    /// Builds an identifier from a 20-byte big-endian digest, e.g. a SHA-1
    /// output.
    pub fn from_be_bytes(bytes: [u8; 20]) -> Id {
        let mut hi = [0u8; 8];
        hi[4..].copy_from_slice(&bytes[0..4]);
        let mut mid = [0u8; 8];
        mid.copy_from_slice(&bytes[4..12]);
        let mut lo = [0u8; 8];
        lo.copy_from_slice(&bytes[12..20]);
        Id {
            limbs: [
                u64::from_be_bytes(lo),
                u64::from_be_bytes(mid),
                u64::from_be_bytes(hi),
            ],
        }
    }

    /// Serializes to a 20-byte big-endian digest (inverse of
    /// [`Id::from_be_bytes`]).
    pub fn to_be_bytes(self) -> [u8; 20] {
        let mut out = [0u8; 20];
        out[0..4].copy_from_slice(&self.limbs[2].to_be_bytes()[4..]);
        out[4..12].copy_from_slice(&self.limbs[1].to_be_bytes());
        out[12..20].copy_from_slice(&self.limbs[0].to_be_bytes());
        out
    }

    /// Wrapping addition modulo 2^160.
    #[inline]
    pub fn wrapping_add(self, rhs: Id) -> Id {
        let (l0, c0) = self.limbs[0].overflowing_add(rhs.limbs[0]);
        let (l1a, c1a) = self.limbs[1].overflowing_add(rhs.limbs[1]);
        let (l1, c1b) = l1a.overflowing_add(c0 as u64);
        let carry1 = (c1a as u64) + (c1b as u64);
        let l2 = self.limbs[2]
            .wrapping_add(rhs.limbs[2])
            .wrapping_add(carry1);
        Id {
            limbs: [l0, l1, l2 & TOP_MASK],
        }
    }

    /// Wrapping subtraction modulo 2^160. `b.wrapping_sub(a)` is the
    /// clockwise distance from `a` to `b` on the ring.
    #[inline]
    pub fn wrapping_sub(self, rhs: Id) -> Id {
        let (l0, b0) = self.limbs[0].overflowing_sub(rhs.limbs[0]);
        let (l1a, b1a) = self.limbs[1].overflowing_sub(rhs.limbs[1]);
        let (l1, b1b) = l1a.overflowing_sub(b0 as u64);
        let borrow1 = (b1a as u64) + (b1b as u64);
        let l2 = self.limbs[2]
            .wrapping_sub(rhs.limbs[2])
            .wrapping_sub(borrow1);
        Id {
            limbs: [l0, l1, l2 & TOP_MASK],
        }
    }

    /// `2^k` for `k < 160`; the finger-table offsets of Chord.
    ///
    /// # Panics
    /// Panics if `k >= 160`.
    #[inline]
    pub fn pow2(k: u32) -> Id {
        assert!(k < 160, "2^{k} does not fit in a 160-bit identifier");
        let mut limbs = [0u64; 3];
        limbs[(k / 64) as usize] = 1u64 << (k % 64);
        Id { limbs }
    }

    /// Logical right shift by `n` bits (`n < 160`), filling with zeros.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, n: u32) -> Id {
        assert!(n < 160);
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut limbs = [0u64; 3];
        for (i, limb) in limbs.iter_mut().enumerate().take(3 - limb_shift) {
            let src = i + limb_shift;
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift != 0 && src + 1 < 3 {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            *limb = v;
        }
        Id {
            limbs: [limbs[0], limbs[1], limbs[2] & TOP_MASK],
        }
    }

    /// Logical left shift by `n` bits (`n < 160`), wrapping mod 2^160.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, n: u32) -> Id {
        assert!(n < 160);
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut limbs = [0u64; 3];
        for i in (limb_shift..3).rev() {
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift != 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            limbs[i] = v;
        }
        Id {
            limbs: [limbs[0], limbs[1], limbs[2] & TOP_MASK],
        }
    }

    /// Halves the value (arithmetically `self / 2`); used to find arc
    /// midpoints.
    #[inline]
    pub fn half(self) -> Id {
        self.shr(1)
    }

    /// True iff this is the zero identifier.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.limbs == [0, 0, 0]
    }

    /// The fraction of the full ring this identifier represents, in
    /// `[0, 1)`. Uses the top 64 bits, which is far more precision than an
    /// `f64` mantissa can hold anyway.
    pub fn to_unit_fraction(self) -> f64 {
        // Top 64 bits of the 160-bit value: (hi << 32) | (mid >> 32).
        let top = (self.limbs[2] << 32) | (self.limbs[1] >> 32);
        // Keep only 53 bits so the value is exactly representable; a raw
        // `top as f64 / 2^64` would round 2^64 - 1 up to exactly 1.0 and
        // break the `[0, 1)` contract.
        (top >> 11) as f64 / 2f64.powi(53)
    }

    /// Lossy conversion to `f64` (the full 160-bit magnitude). Useful for
    /// statistics over arc lengths where relative precision suffices.
    pub fn to_f64(self) -> f64 {
        self.limbs[0] as f64
            + self.limbs[1] as f64 * 2f64.powi(64)
            + self.limbs[2] as f64 * 2f64.powi(128)
    }

    /// Parses a 40-character hexadecimal string.
    pub fn from_hex(s: &str) -> Option<Id> {
        let s = s.trim();
        if s.len() != 40 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut bytes = [0u8; 20];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hexpair = core::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(hexpair, 16).ok()?;
        }
        Some(Id::from_be_bytes(bytes))
    }

    /// Formats as a 40-character lowercase hex string.
    pub fn to_hex(self) -> String {
        self.to_be_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Draws an identifier uniformly at random from the full 160-bit range.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Id {
        Id {
            limbs: [rng.gen(), rng.gen(), rng.gen::<u64>() & TOP_MASK],
        }
    }
}

impl From<u64> for Id {
    fn from(v: u64) -> Id {
        Id { limbs: [v, 0, 0] }
    }
}

impl From<u128> for Id {
    fn from(v: u128) -> Id {
        Id {
            limbs: [v as u64, (v >> 64) as u64, 0],
        }
    }
}

impl Ord for Id {
    #[inline]
    fn cmp(&self, other: &Id) -> Ordering {
        for i in (0..3).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Id {
    #[inline]
    fn partial_cmp(&self, other: &Id) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.to_hex())
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviated form for logs: first 8 hex digits.
        let hex = self.to_hex();
        write!(f, "{}…", &hex[..8])
    }
}

impl core::ops::Add for Id {
    type Output = Id;
    fn add(self, rhs: Id) -> Id {
        self.wrapping_add(rhs)
    }
}

impl core::ops::Sub for Id {
    type Output = Id;
    fn sub(self, rhs: Id) -> Id {
        self.wrapping_sub(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_max_roundtrip_bytes() {
        assert_eq!(Id::from_be_bytes([0; 20]), Id::ZERO);
        assert_eq!(Id::from_be_bytes([0xff; 20]), Id::MAX);
        assert_eq!(Id::MAX.to_be_bytes(), [0xff; 20]);
    }

    #[test]
    fn add_wraps_at_2_pow_160() {
        assert_eq!(Id::MAX.wrapping_add(Id::ONE), Id::ZERO);
        assert_eq!(Id::MAX.wrapping_add(Id::from(2u64)), Id::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Id::ZERO.wrapping_sub(Id::ONE), Id::MAX);
        let two = Id::from(2u64);
        assert_eq!(Id::ONE.wrapping_sub(two), Id::MAX);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Id::from_limbs(u64::MAX, 0, 0);
        let b = a.wrapping_add(Id::ONE);
        assert_eq!(b, Id::from_limbs(0, 1, 0));
        let c = Id::from_limbs(u64::MAX, u64::MAX, 0).wrapping_add(Id::ONE);
        assert_eq!(c, Id::from_limbs(0, 0, 1));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = Id::from_limbs(0, 1, 0);
        assert_eq!(a.wrapping_sub(Id::ONE), Id::from_limbs(u64::MAX, 0, 0));
        let b = Id::from_limbs(0, 0, 1);
        assert_eq!(
            b.wrapping_sub(Id::ONE),
            Id::from_limbs(u64::MAX, u64::MAX, 0)
        );
    }

    #[test]
    fn pow2_spans_all_three_limbs() {
        assert_eq!(Id::pow2(0), Id::ONE);
        assert_eq!(Id::pow2(63), Id::from_limbs(1 << 63, 0, 0));
        assert_eq!(Id::pow2(64), Id::from_limbs(0, 1, 0));
        assert_eq!(Id::pow2(159), Id::from_limbs(0, 0, 1 << 31));
    }

    #[test]
    #[should_panic]
    fn pow2_rejects_160() {
        let _ = Id::pow2(160);
    }

    #[test]
    fn ordering_is_big_integer_order() {
        assert!(Id::ZERO < Id::ONE);
        assert!(Id::ONE < Id::pow2(64));
        assert!(Id::pow2(64) < Id::pow2(159));
        assert!(Id::pow2(159) < Id::MAX);
    }

    #[test]
    fn shr_moves_bits_down() {
        assert_eq!(Id::pow2(159).shr(159), Id::ONE);
        assert_eq!(Id::pow2(64).shr(1), Id::pow2(63));
        assert_eq!(Id::from(6u64).shr(1), Id::from(3u64));
    }

    #[test]
    fn shl_moves_bits_up_and_truncates() {
        assert_eq!(Id::ONE.shl(159), Id::pow2(159));
        assert_eq!(Id::pow2(159).shl(1), Id::ZERO);
        assert_eq!(Id::from(3u64).shl(1), Id::from(6u64));
    }

    #[test]
    fn half_of_max_is_two_pow_159_minus_one() {
        let expected = Id::pow2(159).wrapping_sub(Id::ONE);
        assert_eq!(Id::MAX.half(), expected);
    }

    #[test]
    fn unit_fraction_endpoints() {
        assert_eq!(Id::ZERO.to_unit_fraction(), 0.0);
        assert!(Id::MAX.to_unit_fraction() > 0.999_999);
        assert!(Id::MAX.to_unit_fraction() < 1.0);
        let half = Id::pow2(159);
        assert!((half.to_unit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hex_roundtrip() {
        let id = Id::from_limbs(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210, 0xdead_beef);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(Id::from_hex(&hex), Some(id));
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert_eq!(Id::from_hex("xyz"), None);
        assert_eq!(Id::from_hex(&"g".repeat(40)), None);
        assert_eq!(Id::from_hex(&"a".repeat(39)), None);
        assert_eq!(Id::from_hex(&"a".repeat(41)), None);
    }

    #[test]
    fn from_u128_preserves_value() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let id = Id::from(v);
        assert_eq!(id.limbs()[0], v as u64);
        assert_eq!(id.limbs()[1], (v >> 64) as u64);
        assert_eq!(id.limbs()[2], 0);
    }

    #[test]
    fn to_f64_is_monotone_on_samples() {
        let samples = [
            Id::ZERO,
            Id::from(1u64),
            Id::pow2(64),
            Id::pow2(100),
            Id::pow2(159),
            Id::MAX,
        ];
        for w in samples.windows(2) {
            assert!(w[0].to_f64() < w[1].to_f64());
        }
    }

    #[test]
    fn clockwise_distance_via_sub() {
        // Distance from MAX-1 to 1 going clockwise through zero is 3.
        let a = Id::MAX.wrapping_sub(Id::ONE);
        let b = Id::from(1u64);
        assert_eq!(b.wrapping_sub(a), Id::from(3u64));
    }
}
