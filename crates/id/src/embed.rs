//! Unit-circle embedding of ring identifiers.
//!
//! The paper visualizes the DHT (Figures 2 and 3) by mapping each 160-bit
//! identifier onto the perimeter of the unit circle:
//!
//! ```text
//! x = sin(2π · id / 2^160)        y = cos(2π · id / 2^160)
//! ```
//!
//! so identifier 0 sits at the top (12 o'clock) and identifiers advance
//! clockwise — the usual way Chord rings are drawn.

use crate::Id;

/// A point on (or near) the unit circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// Maps an identifier to its unit-circle position using the paper's
/// `(sin, cos)` convention.
pub fn ring_xy(id: Id) -> Point {
    let theta = 2.0 * std::f64::consts::PI * id.to_unit_fraction();
    Point {
        x: theta.sin(),
        y: theta.cos(),
    }
}

/// Maps an identifier to a circle of radius `r` centered at `(cx, cy)` —
/// convenient for SVG canvases where y grows downward.
pub fn ring_xy_scaled(id: Id, cx: f64, cy: f64, r: f64) -> Point {
    let p = ring_xy(id);
    Point {
        x: cx + r * p.x,
        // Flip y so clockwise on the ring stays clockwise on screen.
        y: cy - r * p.y,
    }
}

/// The angle (radians, in `[0, 2π)`) of an identifier, measured clockwise
/// from 12 o'clock.
pub fn angle(id: Id) -> f64 {
    2.0 * std::f64::consts::PI * id.to_unit_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn zero_is_at_twelve_oclock() {
        let p = ring_xy(Id::ZERO);
        assert!(close(p.x, 0.0) && close(p.y, 1.0));
    }

    #[test]
    fn quarter_points() {
        // 2^158 = quarter ring -> 3 o'clock (x=1, y=0).
        let q = ring_xy(Id::pow2(158));
        assert!(close(q.x, 1.0) && close(q.y, 0.0));
        // Half ring -> 6 o'clock.
        let h = ring_xy(Id::pow2(159));
        assert!(close(h.x, 0.0) && close(h.y, -1.0));
        // Three quarters -> 9 o'clock.
        let t = ring_xy(Id::pow2(158).wrapping_add(Id::pow2(159)));
        assert!(close(t.x, -1.0) && close(t.y, 0.0));
    }

    #[test]
    fn all_points_on_unit_circle() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xe3bed);
        for _ in 0..200 {
            let p = ring_xy(Id::random(&mut rng));
            let r2 = p.x * p.x + p.y * p.y;
            assert!(close(r2, 1.0));
        }
    }

    #[test]
    fn scaled_embedding_centers_and_flips() {
        let p = ring_xy_scaled(Id::ZERO, 100.0, 100.0, 50.0);
        assert!(close(p.x, 100.0) && close(p.y, 50.0)); // top of circle
        let q = ring_xy_scaled(Id::pow2(158), 100.0, 100.0, 50.0);
        assert!(close(q.x, 150.0) && close(q.y, 100.0)); // right of circle
    }

    #[test]
    fn angle_is_monotone_in_id() {
        // Use ids that differ in their top 53 bits: the embedding only
        // keeps f64-mantissa precision, so nearby low ids may collide.
        let ids = [
            Id::pow2(120),
            Id::pow2(140),
            Id::pow2(158),
            Id::pow2(159),
            Id::MAX,
        ];
        for w in ids.windows(2) {
            assert!(angle(w[0]) < angle(w[1]));
        }
        assert!(angle(Id::from(1u64)) >= 0.0);
        assert!(angle(Id::MAX) < 2.0 * std::f64::consts::PI);
    }
}
