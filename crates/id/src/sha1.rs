//! SHA-1 implemented from scratch per RFC 3174 / FIPS 180-1.
//!
//! The paper generates every node ID and task key by "feeding random
//! numbers into the SHA1 hash function". SHA-1 is cryptographically broken
//! for collision resistance, but that is irrelevant here: the DHT only
//! needs its *output distribution*, which remains indistinguishable from
//! uniform. Implementing it in-repo keeps the workspace dependency-free
//! and lets tests pin the exact RFC test vectors.

use crate::Id;

/// Streaming SHA-1 hasher.
///
/// ```
/// use autobal_id::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     hex(&h.finalize()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// fn hex(d: &[u8; 20]) -> String {
///     d.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the RFC 3174 initial state.
    pub fn new() -> Sha1 {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;

        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the partial buffer; the remainder
                // handling below must not clobber buf_len.
                return;
            }
        }

        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes short of a block boundary.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The two updates above also advanced self.len, but the length
        // field must reflect the original message only.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One compression-function application on a 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Hashes `data` in one shot.
pub fn digest(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Hashes `data` and interprets the digest as a ring [`Id`] — the way the
/// paper assigns both node IDs and task keys.
pub fn sha1_id(data: &[u8]) -> Id {
    Id::from_be_bytes(digest(data))
}

/// Hashes a `u64` counter/random draw, the paper's "random numbers into
/// SHA1" key-generation scheme.
pub fn sha1_id_of_u64(v: u64) -> Id {
    sha1_id(&v.to_be_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8; 20]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn rfc_vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn rfc_vector_two_blocks() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn rfc_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let msg: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let want = digest(&msg);
        for split in 0..msg.len() {
            let mut h = Sha1::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn length_padding_boundaries() {
        // Messages of length 55, 56, 57, 63, 64, 65 exercise the padding
        // edge cases (55 fits one block; 56+ spills to a second).
        let known = [
            (55usize, "c1c8bbdc22796e28c0e15163d20899b65621d65a"),
            (56, "c2db330f6083854c99d4b5bfb6e8f29f201be699"),
            (64, "0098ba824b5c16427bd7a1122a5a442a25ec644d"),
        ];
        for (n, want) in known {
            let msg = vec![b'a'; n];
            assert_eq!(hex(&digest(&msg)), want, "len {n}");
        }
    }

    #[test]
    fn sha1_id_matches_digest() {
        let id = sha1_id(b"hello");
        assert_eq!(id.to_be_bytes().to_vec(), digest(b"hello").to_vec());
    }

    #[test]
    fn u64_keying_is_deterministic_and_spread() {
        let a = sha1_id_of_u64(1);
        let b = sha1_id_of_u64(1);
        let c = sha1_id_of_u64(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
