//! # autobal-id
//!
//! Identifier arithmetic for a Chord-style distributed hash table.
//!
//! This crate provides the three foundations every other crate in the
//! workspace builds on:
//!
//! * [`Id`] — a 160-bit unsigned integer with wrapping (mod 2^160)
//!   arithmetic, matching the output width of SHA-1. All Chord ring
//!   positions, task keys, and finger targets are `Id`s.
//! * [`sha1`] — a from-scratch implementation of the SHA-1 hash function
//!   (RFC 3174). The paper generates node IDs and task keys by feeding
//!   random numbers into SHA-1; we do exactly the same.
//! * [`ring`] — clockwise-arc geometry on the identifier circle:
//!   containment tests for half-open arcs `(a, b]`, clockwise distances,
//!   and arc midpoints (used when a node plants a Sybil inside a gap).
//!
//! The [`embed`] module maps identifiers to points on the unit circle,
//! reproducing the visualizations of Figures 2 and 3 of the paper.
//!
//! ## Example
//!
//! ```
//! use autobal_id::{Id, sha1::sha1_id, ring};
//!
//! let a = sha1_id(b"node-a");
//! let b = sha1_id(b"node-b");
//! let key = sha1_id(b"some-task");
//!
//! // Exactly one of the two complementary arcs contains the key.
//! assert!(ring::in_arc(a, b, key) ^ ring::in_arc(b, a, key));
//! ```

pub mod embed;
pub mod ring;
pub mod sha1;
mod u160;

pub use u160::Id;

/// The number of bits in an identifier (SHA-1 output width).
pub const ID_BITS: u32 = 160;
