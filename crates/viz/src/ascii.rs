//! Terminal histograms, ring dashboards, and sparklines.

/// One worker on a ring dashboard. `frac` is the unit-circle position
/// (0 at 12 o'clock, advancing clockwise — the convention of
/// `autobal_id::embed`); the renderer knows nothing about where the
/// numbers came from, so the module stays metric-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct RingMark {
    /// Worker label, printed next to heavy markers.
    pub label: u64,
    /// Position around the ring in `[0, 1)`.
    pub frac: f64,
    pub load: u64,
    /// Virtual nodes (1 + Sybils); `> 1` renders as `S`.
    pub vnodes: u64,
    /// Quarantine marker (suspected liar); renders as `!`.
    pub flagged: bool,
}

/// Eight-level block sparkline (`▁▂▃▄▅▆▇█`), scaled to the series max.
/// An empty series renders as the empty string; an all-zero series as
/// a row of `▁`.
pub fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                BLOCKS[0]
            } else {
                let idx = ((v as u128 * (BLOCKS.len() as u128 - 1)).div_ceil(max as u128)) as usize;
                BLOCKS[idx.min(BLOCKS.len() - 1)]
            }
        })
        .collect()
}

/// Renders a ring of workers as a character-cell circle of the given
/// diameter (in columns; rows are halved to offset character aspect).
/// Marker precedence per worker: `!` (flagged) over `S` (vnodes > 1)
/// over a load-heat glyph (`.`, `o`, `O`, `@` by quartile of the max
/// load). The ring outline itself is drawn with `·`.
pub fn render_ring(title: &str, marks: &[RingMark], diameter: usize) -> String {
    let w = diameter.max(8);
    let h = w / 2 + 1;
    let mut grid = vec![vec![' '; w + 1]; h + 1];
    let (cx, cy) = (w as f64 / 2.0, h as f64 / 2.0);
    let (rx, ry) = (cx - 1.0, cy - 1.0);
    let cell = |frac: f64| -> (usize, usize) {
        let theta = 2.0 * std::f64::consts::PI * frac;
        // 0 at 12 o'clock, clockwise; y grows downward on screen.
        let x = cx + rx * theta.sin();
        let y = cy - ry * theta.cos();
        ((x.round() as usize).min(w), (y.round() as usize).min(h))
    };
    // Ring outline, sampled densely enough to stay connected.
    for i in 0..(w * 4) {
        let (x, y) = cell(i as f64 / (w * 4) as f64);
        if let Some(c) = grid.get_mut(y).and_then(|row| row.get_mut(x)) {
            *c = '·';
        }
    }
    let max_load = marks.iter().map(|m| m.load).max().unwrap_or(0).max(1);
    const HEAT: [char; 4] = ['.', 'o', 'O', '@'];
    for m in marks {
        let glyph = if m.flagged {
            '!'
        } else if m.vnodes > 1 {
            'S'
        } else {
            let q = ((m.load as u128 * HEAT.len() as u128) / (max_load as u128 + 1)) as usize;
            HEAT[q.min(HEAT.len() - 1)]
        };
        let (x, y) = cell(m.frac.rem_euclid(1.0));
        if let Some(c) = grid.get_mut(y).and_then(|row| row.get_mut(x)) {
            *c = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for row in &grid {
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str("· ring   .oO@ load heat   S sybils   ! quarantined\n");
    out
}

/// Per-worker load bars: one row per mark, heaviest scale shared, with
/// Sybil counts and quarantine flags inline. Rows keep the input order.
pub fn render_load_bars(title: &str, marks: &[RingMark], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = marks.iter().map(|m| m.load).max().unwrap_or(0);
    if max == 0 || marks.is_empty() {
        out.push_str("(idle)\n");
        return out;
    }
    for m in marks {
        let bar_len = ((m.load as f64 / max as f64) * width as f64).round() as usize;
        let bar: String = "█".repeat(bar_len);
        let mut tag = String::new();
        if m.vnodes > 1 {
            tag.push_str(&format!(" S{}", m.vnodes - 1));
        }
        if m.flagged {
            tag.push_str(" !");
        }
        out.push_str(&format!(
            "{:>6} |{bar:<width$}| {}{tag}\n",
            format!("w{}", m.label),
            m.load,
        ));
    }
    out
}

/// Renders `(lo, hi, count)` histogram rows as a left-to-right bar chart.
/// `width` is the maximum bar width in characters.
///
/// ```
/// let rows = [(0u64, 10u64, 4u64), (10, 20, 8)];
/// let s = autobal_viz::render_histogram("demo", &rows, 20);
/// assert!(s.contains("demo"));
/// assert!(s.contains('█'));
/// ```
pub fn render_histogram(title: &str, rows: &[(u64, u64, u64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|r| r.2).max().unwrap_or(0);
    if max == 0 {
        out.push_str("(empty)\n");
        return out;
    }
    let label_width = rows
        .iter()
        .map(|r| format!("{}-{}", r.0, r.1).len())
        .max()
        .unwrap_or(0);
    for &(lo, hi, count) in rows {
        let bar_len = ((count as f64 / max as f64) * width as f64).round() as usize;
        let bar: String = "█".repeat(bar_len);
        out.push_str(&format!(
            "{:>label_width$} |{bar:<width$}| {count}\n",
            format!("{lo}-{hi}"),
        ));
    }
    out
}

/// Renders two histograms side by side for comparison (the paper's
/// two-network overlay figures). Bins must be aligned; pass the rows of
/// each network over the same edges.
pub fn render_comparison(
    title: &str,
    label_a: &str,
    rows_a: &[(u64, u64, u64)],
    label_b: &str,
    rows_b: &[(u64, u64, u64)],
    width: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows_a
        .iter()
        .chain(rows_b.iter())
        .map(|r| r.2)
        .max()
        .unwrap_or(0);
    if max == 0 {
        out.push_str("(empty)\n");
        return out;
    }
    out.push_str(&format!("A = {label_a}, B = {label_b}\n"));
    let n = rows_a.len().max(rows_b.len());
    for i in 0..n {
        let (lo, hi) = rows_a
            .get(i)
            .or_else(|| rows_b.get(i))
            .map(|r| (r.0, r.1))
            .unwrap_or((0, 0));
        let ca = rows_a.get(i).map_or(0, |r| r.2);
        let cb = rows_b.get(i).map_or(0, |r| r.2);
        let bar = |c: u64| "█".repeat(((c as f64 / max as f64) * width as f64).round() as usize);
        out.push_str(&format!(
            "{:>12} A|{:<width$}| {ca}\n{:>12} B|{:<width$}| {cb}\n",
            format!("{lo}-{hi}"),
            bar(ca),
            "",
            bar(cb),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(label: u64, frac: f64, load: u64, vnodes: u64, flagged: bool) -> RingMark {
        RingMark {
            label,
            frac,
            load,
            vnodes,
            flagged,
        }
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[0, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn ring_places_markers_with_precedence() {
        let marks = [
            mark(0, 0.0, 10, 1, false),
            mark(1, 0.25, 3, 4, false),
            mark(2, 0.5, 1, 1, true),
        ];
        let s = render_ring("ring", &marks, 24);
        assert!(s.contains('·'), "outline missing: {s}");
        assert!(s.contains('S'), "sybil marker missing: {s}");
        assert!(s.contains('!'), "quarantine marker missing: {s}");
        assert!(s.contains('@'), "heavy-load glyph missing: {s}");
        assert!(s.starts_with("ring\n"));
    }

    #[test]
    fn load_bars_flag_sybils_and_quarantine() {
        let marks = [mark(3, 0.0, 8, 3, false), mark(7, 0.5, 2, 1, true)];
        let s = render_load_bars("loads", &marks, 10);
        assert!(s.contains("w3"));
        assert!(s.contains("S2"), "{s}");
        assert!(s.contains('!'), "{s}");
        let empty = render_load_bars("loads", &[], 10);
        assert!(empty.contains("(idle)"));
    }

    #[test]
    fn bars_scale_with_counts() {
        let s = render_histogram("t", &[(0, 5, 1), (5, 10, 10)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t");
        let ones = lines[1].matches('█').count();
        let tens = lines[2].matches('█').count();
        assert_eq!(tens, 10);
        assert!((1..=2).contains(&ones));
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        let s = render_histogram("t", &[(0, 5, 0)], 10);
        assert!(s.contains("(empty)"));
        let s2 = render_histogram("t", &[], 10);
        assert!(s2.contains("(empty)"));
    }

    #[test]
    fn comparison_interleaves_series() {
        let a = [(0u64, 5u64, 3u64)];
        let b = [(0u64, 5u64, 6u64)];
        let s = render_comparison("cmp", "net-a", &a, "net-b", &b, 12);
        assert!(s.contains("A = net-a, B = net-b"));
        assert!(s.contains(" 3\n"));
        assert!(s.contains(" 6\n"));
    }

    #[test]
    fn comparison_handles_unequal_lengths() {
        let a = [(0u64, 5u64, 2u64), (5, 10, 4)];
        let b = [(0u64, 5u64, 1u64)];
        let s = render_comparison("cmp", "a", &a, "b", &b, 8);
        // Second bin renders with B count 0.
        assert!(s.contains("5-10"));
    }
}
