//! Terminal histograms.

/// Renders `(lo, hi, count)` histogram rows as a left-to-right bar chart.
/// `width` is the maximum bar width in characters.
///
/// ```
/// let rows = [(0u64, 10u64, 4u64), (10, 20, 8)];
/// let s = autobal_viz::render_histogram("demo", &rows, 20);
/// assert!(s.contains("demo"));
/// assert!(s.contains('█'));
/// ```
pub fn render_histogram(title: &str, rows: &[(u64, u64, u64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|r| r.2).max().unwrap_or(0);
    if max == 0 {
        out.push_str("(empty)\n");
        return out;
    }
    let label_width = rows
        .iter()
        .map(|r| format!("{}-{}", r.0, r.1).len())
        .max()
        .unwrap_or(0);
    for &(lo, hi, count) in rows {
        let bar_len = ((count as f64 / max as f64) * width as f64).round() as usize;
        let bar: String = "█".repeat(bar_len);
        out.push_str(&format!(
            "{:>label_width$} |{bar:<width$}| {count}\n",
            format!("{lo}-{hi}"),
        ));
    }
    out
}

/// Renders two histograms side by side for comparison (the paper's
/// two-network overlay figures). Bins must be aligned; pass the rows of
/// each network over the same edges.
pub fn render_comparison(
    title: &str,
    label_a: &str,
    rows_a: &[(u64, u64, u64)],
    label_b: &str,
    rows_b: &[(u64, u64, u64)],
    width: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows_a
        .iter()
        .chain(rows_b.iter())
        .map(|r| r.2)
        .max()
        .unwrap_or(0);
    if max == 0 {
        out.push_str("(empty)\n");
        return out;
    }
    out.push_str(&format!("A = {label_a}, B = {label_b}\n"));
    let n = rows_a.len().max(rows_b.len());
    for i in 0..n {
        let (lo, hi) = rows_a
            .get(i)
            .or_else(|| rows_b.get(i))
            .map(|r| (r.0, r.1))
            .unwrap_or((0, 0));
        let ca = rows_a.get(i).map_or(0, |r| r.2);
        let cb = rows_b.get(i).map_or(0, |r| r.2);
        let bar = |c: u64| "█".repeat(((c as f64 / max as f64) * width as f64).round() as usize);
        out.push_str(&format!(
            "{:>12} A|{:<width$}| {ca}\n{:>12} B|{:<width$}| {cb}\n",
            format!("{lo}-{hi}"),
            bar(ca),
            "",
            bar(cb),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_with_counts() {
        let s = render_histogram("t", &[(0, 5, 1), (5, 10, 10)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t");
        let ones = lines[1].matches('█').count();
        let tens = lines[2].matches('█').count();
        assert_eq!(tens, 10);
        assert!((1..=2).contains(&ones));
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        let s = render_histogram("t", &[(0, 5, 0)], 10);
        assert!(s.contains("(empty)"));
        let s2 = render_histogram("t", &[], 10);
        assert!(s2.contains("(empty)"));
    }

    #[test]
    fn comparison_interleaves_series() {
        let a = [(0u64, 5u64, 3u64)];
        let b = [(0u64, 5u64, 6u64)];
        let s = render_comparison("cmp", "net-a", &a, "net-b", &b, 12);
        assert!(s.contains("A = net-a, B = net-b"));
        assert!(s.contains(" 3\n"));
        assert!(s.contains(" 6\n"));
    }

    #[test]
    fn comparison_handles_unequal_lengths() {
        let a = [(0u64, 5u64, 2u64), (5, 10, 4)];
        let b = [(0u64, 5u64, 1u64)];
        let s = render_comparison("cmp", "a", &a, "b", &b, 8);
        // Second bin renders with B count 0.
        assert!(s.contains("5-10"));
    }
}
