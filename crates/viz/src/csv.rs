//! CSV series writers for figure data.

/// One histogram row: `(bin_lo, bin_hi, count)`.
pub type HistRow = (u64, u64, u64);

/// Writes aligned histogram series: one row per bin with each network's
/// count in its own column — the exact data behind the paper's overlay
/// histograms.
///
/// All series must share the same bin edges (pad with zero-count rows if
/// needed before calling).
pub fn histogram_series_csv(series: &[(&str, &[HistRow])]) -> String {
    let mut out = String::from("bin_lo,bin_hi");
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    let bins = series.iter().map(|(_, rows)| rows.len()).max().unwrap_or(0);
    for i in 0..bins {
        let (lo, hi) = series
            .iter()
            .find_map(|(_, rows)| rows.get(i).map(|r| (r.0, r.1)))
            .unwrap_or((0, 0));
        out.push_str(&format!("{lo},{hi}"));
        for (_, rows) in series {
            out.push_str(&format!(",{}", rows.get(i).map_or(0, |r| r.2)));
        }
        out.push('\n');
    }
    out
}

/// Writes `(x, y…)` line series with a shared x column.
pub fn xy_series_csv(x_name: &str, xs: &[f64], series: &[(&str, &[f64])]) -> String {
    let mut out = String::from(x_name);
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => out.push_str(&format!(",{y}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_csv_layout() {
        let a = [(0u64, 10u64, 5u64), (10, 20, 2)];
        let b = [(0u64, 10u64, 1u64), (10, 20, 9)];
        let csv = histogram_series_csv(&[("none", &a), ("churn", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "bin_lo,bin_hi,none,churn");
        assert_eq!(lines[1], "0,10,5,1");
        assert_eq!(lines[2], "10,20,2,9");
    }

    #[test]
    fn histogram_csv_pads_missing_bins() {
        let a = [(0u64, 10u64, 5u64), (10, 20, 2)];
        let b = [(0u64, 10u64, 1u64)];
        let csv = histogram_series_csv(&[("a", &a), ("b", &b)]);
        assert!(csv.lines().nth(2).unwrap().ends_with(",2,0"));
    }

    #[test]
    fn xy_csv_layout() {
        let xs = [0.0, 1.0];
        let s1 = [5.0, 6.0];
        let csv = xy_series_csv("tick", &xs, &[("work", &s1)]);
        assert_eq!(csv, "tick,work\n0,5\n1,6\n");
    }

    #[test]
    fn xy_csv_short_series_leaves_blank() {
        let xs = [0.0, 1.0];
        let s1 = [5.0];
        let csv = xy_series_csv("x", &xs, &[("y", &s1)]);
        assert!(csv.ends_with("1,\n"));
    }
}
