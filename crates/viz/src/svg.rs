//! A minimal SVG emitter for the paper's two figure shapes: grouped bar
//! charts (workload histograms) and ring scatters (the Chord circle of
//! Figures 2–3). Pure string assembly — no dependencies.

use autobal_id::{embed, Id};

/// Series colors (hex), cycled.
const PALETTE: [&str; 4] = ["#4878cf", "#d65f5f", "#6acc65", "#b47cc7"];

/// A grouped bar chart with one group per bin and one bar per series.
#[derive(Debug, Clone)]
pub struct BarChart {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    /// Bin labels along the x axis.
    pub bins: Vec<String>,
    /// `(series name, one value per bin)`.
    pub series: Vec<(String, Vec<f64>)>,
    pub width: u32,
    pub height: u32,
}

impl BarChart {
    pub fn new(title: impl Into<String>) -> BarChart {
        BarChart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            bins: Vec::new(),
            series: Vec::new(),
            width: 900,
            height: 420,
        }
    }

    /// Builds the chart directly from aligned `(lo, hi, count)` histogram
    /// rows.
    pub fn from_histogram_rows(
        title: impl Into<String>,
        series: &[(&str, &[crate::csv::HistRow])],
    ) -> BarChart {
        let mut chart = BarChart::new(title);
        let bins = series.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for i in 0..bins {
            let (lo, hi) = series
                .iter()
                .find_map(|(_, rows)| rows.get(i).map(|r| (r.0, r.1)))
                .unwrap_or((0, 0));
            chart.bins.push(format!("{lo}–{hi}"));
        }
        for (name, rows) in series {
            let vals: Vec<f64> = (0..bins)
                .map(|i| rows.get(i).map_or(0.0, |r| r.2 as f64))
                .collect();
            chart.series.push((name.to_string(), vals));
        }
        chart.x_label = "tasks per node".into();
        chart.y_label = "nodes".into();
        chart
    }

    /// Renders the chart to an SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let margin = 50.0;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        let max_val = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1.0);

        let mut s = String::new();
        s.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n"
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
            w / 2.0,
            escape(&self.title)
        ));
        // Axes.
        s.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n",
            h - margin,
            w - margin,
            h - margin
        ));
        s.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{margin}\" x2=\"{margin}\" y2=\"{}\" stroke=\"#333\"/>\n",
            h - margin
        ));
        // Y-axis ticks (4).
        for t in 0..=4 {
            let frac = t as f64 / 4.0;
            let y = h - margin - frac * plot_h;
            let val = frac * max_val;
            s.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{:.0}</text>\n",
                margin - 5.0,
                y + 3.0,
                val
            ));
            s.push_str(&format!(
                "<line x1=\"{margin}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>\n",
                w - margin
            ));
        }
        // Bars.
        let nbins = self.bins.len().max(1);
        let nseries = self.series.len().max(1);
        let group_w = plot_w / nbins as f64;
        let bar_w = (group_w * 0.8) / nseries as f64;
        for (si, (_, vals)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (bi, &v) in vals.iter().enumerate() {
                let bh = (v / max_val) * plot_h;
                let x = margin + bi as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
                let y = h - margin - bh;
                s.push_str(&format!(
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{bh:.1}\" \
                     fill=\"{color}\"/>\n"
                ));
            }
        }
        // Bin labels (thinned to ~12 to stay readable).
        let stride = (nbins / 12).max(1);
        for (bi, label) in self.bins.iter().enumerate().step_by(stride) {
            let x = margin + (bi as f64 + 0.5) * group_w;
            s.push_str(&format!(
                "<text x=\"{x:.1}\" y=\"{}\" text-anchor=\"middle\" font-size=\"9\">{}</text>\n",
                h - margin + 14.0,
                escape(label)
            ));
        }
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let y = margin + si as f64 * 16.0;
            s.push_str(&format!(
                "<rect x=\"{}\" y=\"{}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
                 <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n",
                w - margin - 150.0,
                y,
                w - margin - 133.0,
                y + 10.0,
                escape(name)
            ));
        }
        // Axis labels.
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{}</text>\n",
            w / 2.0,
            h - 8.0,
            escape(&self.x_label)
        ));
        s.push_str(&format!(
            "<text x=\"14\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\" \
             transform=\"rotate(-90 14 {})\">{}</text>\n",
            h / 2.0,
            h / 2.0,
            escape(&self.y_label)
        ));
        s.push_str("</svg>\n");
        s
    }
}

/// A multi-series line chart (e.g. work-per-tick over time).
#[derive(Debug, Clone)]
pub struct LineChart {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    /// `(series name, y values)`; x is the index (tick).
    pub series: Vec<(String, Vec<f64>)>,
    pub width: u32,
    pub height: u32,
}

impl LineChart {
    pub fn new(title: impl Into<String>) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: "tick".into(),
            y_label: String::new(),
            series: Vec::new(),
            width: 900,
            height: 420,
        }
    }

    /// Adds a named series.
    pub fn push_series(&mut self, name: impl Into<String>, ys: Vec<f64>) {
        self.series.push((name.into(), ys));
    }

    /// Renders to an SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let margin = 50.0;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        let max_y = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let max_x = self
            .series
            .iter()
            .map(|(_, v)| v.len())
            .max()
            .unwrap_or(1)
            .max(2) as f64
            - 1.0;

        let mut s = String::new();
        s.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n"
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
            w / 2.0,
            escape(&self.title)
        ));
        s.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n\
             <line x1=\"{margin}\" y1=\"{margin}\" x2=\"{margin}\" y2=\"{}\" stroke=\"#333\"/>\n",
            h - margin,
            w - margin,
            h - margin,
            h - margin
        ));
        for t in 0..=4 {
            let frac = t as f64 / 4.0;
            let y = h - margin - frac * plot_h;
            s.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{:.0}</text>\n\
                 <line x1=\"{margin}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#eee\"/>\n",
                margin - 5.0,
                y + 3.0,
                frac * max_y,
                w - margin
            ));
        }
        for (si, (name, ys)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let pts: Vec<String> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| {
                    let px = margin + (i as f64 / max_x) * plot_w;
                    let py = h - margin - (y / max_y) * plot_h;
                    format!("{px:.1},{py:.1}")
                })
                .collect();
            if !pts.is_empty() {
                s.push_str(&format!(
                    "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" \
                     points=\"{}\"/>\n",
                    pts.join(" ")
                ));
            }
            let ly = margin + si as f64 * 16.0;
            s.push_str(&format!(
                "<rect x=\"{}\" y=\"{ly}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
                 <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n",
                w - margin - 150.0,
                w - margin - 133.0,
                ly + 10.0,
                escape(name)
            ));
        }
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{}</text>\n",
            w / 2.0,
            h - 8.0,
            escape(&self.x_label)
        ));
        s.push_str("</svg>\n");
        s
    }
}

/// The Chord ring visualization of Figures 2–3: nodes as circles, task
/// keys as small crosses, all on the unit circle.
#[derive(Debug, Clone)]
pub struct RingScatter {
    pub title: String,
    pub nodes: Vec<Id>,
    pub tasks: Vec<Id>,
    pub size: u32,
}

impl RingScatter {
    pub fn new(title: impl Into<String>, nodes: Vec<Id>, tasks: Vec<Id>) -> RingScatter {
        RingScatter {
            title: title.into(),
            nodes,
            tasks,
            size: 500,
        }
    }

    pub fn to_svg(&self) -> String {
        let s = self.size as f64;
        let (cx, cy, r) = (s / 2.0, s / 2.0 + 10.0, s / 2.0 - 40.0);
        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{s}\" height=\"{}\" \
             viewBox=\"0 0 {s} {}\" font-family=\"sans-serif\">\n",
            s + 20.0,
            s + 20.0
        ));
        out.push_str(&format!(
            "<text x=\"{cx}\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            escape(&self.title)
        ));
        out.push_str(&format!(
            "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{r}\" fill=\"none\" stroke=\"#999\"/>\n"
        ));
        for &t in &self.tasks {
            let p = embed::ring_xy_scaled(t, cx, cy, r);
            out.push_str(&format!(
                "<path d=\"M {x0} {y} L {x1} {y} M {x} {y0} L {x} {y1}\" stroke=\"#4878cf\" \
                 stroke-width=\"1\"/>\n",
                x0 = p.x - 3.0,
                x1 = p.x + 3.0,
                y0 = p.y - 3.0,
                y1 = p.y + 3.0,
                x = p.x,
                y = p.y
            ));
        }
        for &n in &self.nodes {
            let p = embed::ring_xy_scaled(n, cx, cy, r);
            out.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"6\" fill=\"#d65f5f\"/>\n",
                p.x, p.y
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_svg_is_well_formed_enough() {
        let a = [(0u64, 10u64, 5u64), (10, 20, 2)];
        let b = [(0u64, 10u64, 1u64), (10, 20, 9)];
        let chart = BarChart::from_histogram_rows("demo", &[("none", &a), ("churn", &b)]);
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 4 + 2); // 4 bars + 2 legend chips
        assert!(svg.contains("none"));
        assert!(svg.contains("churn"));
    }

    #[test]
    fn bar_chart_handles_empty() {
        let chart = BarChart::new("empty");
        let svg = chart.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn titles_are_escaped() {
        let chart = BarChart::new("a < b & c");
        let svg = chart.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn line_chart_draws_polylines_and_legend() {
        let mut c = LineChart::new("work per tick");
        c.push_series("none", vec![10.0, 9.0, 8.0]);
        c.push_series("random", vec![10.0, 10.0]);
        let svg = c.to_svg();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("random"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn line_chart_empty_series_is_safe() {
        let mut c = LineChart::new("empty");
        c.push_series("nothing", vec![]);
        let svg = c.to_svg();
        assert_eq!(svg.matches("<polyline").count(), 0);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn ring_scatter_draws_every_point() {
        let nodes: Vec<Id> = (1..=3u64).map(|v| Id::from(v * 1000)).collect();
        let tasks: Vec<Id> = (1..=5u64).map(|v| Id::from(v * 777)).collect();
        let svg = RingScatter::new("ring", nodes, tasks).to_svg();
        // 1 ring circle + 3 node circles.
        assert_eq!(svg.matches("<circle").count(), 4);
        assert_eq!(svg.matches("<path").count(), 5);
    }
}
