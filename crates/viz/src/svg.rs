//! A minimal SVG emitter for the paper's two figure shapes: grouped bar
//! charts (workload histograms) and ring scatters (the Chord circle of
//! Figures 2–3). Pure string assembly — no dependencies.

use autobal_id::{embed, Id};

/// Series colors (hex), cycled.
const PALETTE: [&str; 4] = ["#4878cf", "#d65f5f", "#6acc65", "#b47cc7"];

/// A grouped bar chart with one group per bin and one bar per series.
#[derive(Debug, Clone)]
pub struct BarChart {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    /// Bin labels along the x axis.
    pub bins: Vec<String>,
    /// `(series name, one value per bin)`.
    pub series: Vec<(String, Vec<f64>)>,
    pub width: u32,
    pub height: u32,
}

impl BarChart {
    pub fn new(title: impl Into<String>) -> BarChart {
        BarChart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            bins: Vec::new(),
            series: Vec::new(),
            width: 900,
            height: 420,
        }
    }

    /// Builds the chart directly from aligned `(lo, hi, count)` histogram
    /// rows.
    pub fn from_histogram_rows(
        title: impl Into<String>,
        series: &[(&str, &[crate::csv::HistRow])],
    ) -> BarChart {
        let mut chart = BarChart::new(title);
        let bins = series.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for i in 0..bins {
            let (lo, hi) = series
                .iter()
                .find_map(|(_, rows)| rows.get(i).map(|r| (r.0, r.1)))
                .unwrap_or((0, 0));
            chart.bins.push(format!("{lo}–{hi}"));
        }
        for (name, rows) in series {
            let vals: Vec<f64> = (0..bins)
                .map(|i| rows.get(i).map_or(0.0, |r| r.2 as f64))
                .collect();
            chart.series.push((name.to_string(), vals));
        }
        chart.x_label = "tasks per node".into();
        chart.y_label = "nodes".into();
        chart
    }

    /// Renders the chart to an SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let margin = 50.0;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        let max_val = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1.0);

        let mut s = String::new();
        s.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n"
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
            w / 2.0,
            escape(&self.title)
        ));
        // Axes.
        s.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n",
            h - margin,
            w - margin,
            h - margin
        ));
        s.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{margin}\" x2=\"{margin}\" y2=\"{}\" stroke=\"#333\"/>\n",
            h - margin
        ));
        // Y-axis ticks (4).
        for t in 0..=4 {
            let frac = t as f64 / 4.0;
            let y = h - margin - frac * plot_h;
            let val = frac * max_val;
            s.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{:.0}</text>\n",
                margin - 5.0,
                y + 3.0,
                val
            ));
            s.push_str(&format!(
                "<line x1=\"{margin}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>\n",
                w - margin
            ));
        }
        // Bars.
        let nbins = self.bins.len().max(1);
        let nseries = self.series.len().max(1);
        let group_w = plot_w / nbins as f64;
        let bar_w = (group_w * 0.8) / nseries as f64;
        for (si, (_, vals)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (bi, &v) in vals.iter().enumerate() {
                let bh = (v / max_val) * plot_h;
                let x = margin + bi as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
                let y = h - margin - bh;
                s.push_str(&format!(
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{bh:.1}\" \
                     fill=\"{color}\"/>\n"
                ));
            }
        }
        // Bin labels (thinned to ~12 to stay readable).
        let stride = (nbins / 12).max(1);
        for (bi, label) in self.bins.iter().enumerate().step_by(stride) {
            let x = margin + (bi as f64 + 0.5) * group_w;
            s.push_str(&format!(
                "<text x=\"{x:.1}\" y=\"{}\" text-anchor=\"middle\" font-size=\"9\">{}</text>\n",
                h - margin + 14.0,
                escape(label)
            ));
        }
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let y = margin + si as f64 * 16.0;
            s.push_str(&format!(
                "<rect x=\"{}\" y=\"{}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
                 <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n",
                w - margin - 150.0,
                y,
                w - margin - 133.0,
                y + 10.0,
                escape(name)
            ));
        }
        // Axis labels.
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{}</text>\n",
            w / 2.0,
            h - 8.0,
            escape(&self.x_label)
        ));
        s.push_str(&format!(
            "<text x=\"14\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\" \
             transform=\"rotate(-90 14 {})\">{}</text>\n",
            h / 2.0,
            h / 2.0,
            escape(&self.y_label)
        ));
        s.push_str("</svg>\n");
        s
    }
}

/// A multi-series line chart (e.g. work-per-tick over time).
#[derive(Debug, Clone)]
pub struct LineChart {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    /// `(series name, y values)`; x is the index (tick).
    pub series: Vec<(String, Vec<f64>)>,
    pub width: u32,
    pub height: u32,
}

impl LineChart {
    pub fn new(title: impl Into<String>) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: "tick".into(),
            y_label: String::new(),
            series: Vec::new(),
            width: 900,
            height: 420,
        }
    }

    /// Adds a named series.
    pub fn push_series(&mut self, name: impl Into<String>, ys: Vec<f64>) {
        self.series.push((name.into(), ys));
    }

    /// Renders to an SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let margin = 50.0;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        let max_y = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let max_x = self
            .series
            .iter()
            .map(|(_, v)| v.len())
            .max()
            .unwrap_or(1)
            .max(2) as f64
            - 1.0;

        let mut s = String::new();
        s.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n"
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
            w / 2.0,
            escape(&self.title)
        ));
        s.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n\
             <line x1=\"{margin}\" y1=\"{margin}\" x2=\"{margin}\" y2=\"{}\" stroke=\"#333\"/>\n",
            h - margin,
            w - margin,
            h - margin,
            h - margin
        ));
        for t in 0..=4 {
            let frac = t as f64 / 4.0;
            let y = h - margin - frac * plot_h;
            s.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{:.0}</text>\n\
                 <line x1=\"{margin}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#eee\"/>\n",
                margin - 5.0,
                y + 3.0,
                frac * max_y,
                w - margin
            ));
        }
        for (si, (name, ys)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let pts: Vec<String> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| {
                    let px = margin + (i as f64 / max_x) * plot_w;
                    let py = h - margin - (y / max_y) * plot_h;
                    format!("{px:.1},{py:.1}")
                })
                .collect();
            if !pts.is_empty() {
                s.push_str(&format!(
                    "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" \
                     points=\"{}\"/>\n",
                    pts.join(" ")
                ));
            }
            let ly = margin + si as f64 * 16.0;
            s.push_str(&format!(
                "<rect x=\"{}\" y=\"{ly}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
                 <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n",
                w - margin - 150.0,
                w - margin - 133.0,
                ly + 10.0,
                escape(name)
            ));
        }
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{}</text>\n",
            w / 2.0,
            h - 8.0,
            escape(&self.x_label)
        ));
        s.push_str("</svg>\n");
        s
    }
}

/// The Chord ring visualization of Figures 2–3: nodes as circles, task
/// keys as small crosses, all on the unit circle.
#[derive(Debug, Clone)]
pub struct RingScatter {
    pub title: String,
    pub nodes: Vec<Id>,
    pub tasks: Vec<Id>,
    pub size: u32,
}

impl RingScatter {
    pub fn new(title: impl Into<String>, nodes: Vec<Id>, tasks: Vec<Id>) -> RingScatter {
        RingScatter {
            title: title.into(),
            nodes,
            tasks,
            size: 500,
        }
    }

    pub fn to_svg(&self) -> String {
        let s = self.size as f64;
        let (cx, cy, r) = (s / 2.0, s / 2.0 + 10.0, s / 2.0 - 40.0);
        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{s}\" height=\"{}\" \
             viewBox=\"0 0 {s} {}\" font-family=\"sans-serif\">\n",
            s + 20.0,
            s + 20.0
        ));
        out.push_str(&format!(
            "<text x=\"{cx}\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            escape(&self.title)
        ));
        out.push_str(&format!(
            "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{r}\" fill=\"none\" stroke=\"#999\"/>\n"
        ));
        for &t in &self.tasks {
            let p = embed::ring_xy_scaled(t, cx, cy, r);
            out.push_str(&format!(
                "<path d=\"M {x0} {y} L {x1} {y} M {x} {y0} L {x} {y1}\" stroke=\"#4878cf\" \
                 stroke-width=\"1\"/>\n",
                x0 = p.x - 3.0,
                x1 = p.x + 3.0,
                y0 = p.y - 3.0,
                y1 = p.y + 3.0,
                x = p.x,
                y = p.y
            ));
        }
        for &n in &self.nodes {
            let p = embed::ring_xy_scaled(n, cx, cy, r);
            out.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"6\" fill=\"#d65f5f\"/>\n",
                p.x, p.y
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

/// One worker on a [`RingHeat`] dashboard: position as a unit-circle
/// fraction (0 at 12 o'clock, clockwise), plus the plain numbers the
/// renderer colors by. Metric-agnostic by design — the caller decides
/// what "load" means.
#[derive(Debug, Clone, PartialEq)]
pub struct RingHeatSlot {
    pub label: u64,
    /// Position around the ring in `[0, 1)`.
    pub frac: f64,
    pub load: u64,
    /// Virtual nodes (1 + Sybils); `> 1` draws sybil tick marks.
    pub vnodes: u64,
    /// Quarantine marker: draws a warning ring around the node.
    pub flagged: bool,
}

/// The live-monitor ring: each worker's *ownership arc* (from its
/// predecessor to itself, the key range it serves) stroked by load
/// heat, node dots sized by virtual-node count, and quarantine rings.
#[derive(Debug, Clone)]
pub struct RingHeat {
    pub title: String,
    pub slots: Vec<RingHeatSlot>,
    pub size: u32,
}

/// Linear blue→red heat color for `value / max`.
fn heat_color(value: u64, max: u64) -> String {
    let t = if max == 0 {
        0.0
    } else {
        (value as f64 / max as f64).clamp(0.0, 1.0)
    };
    let r = (40.0 + t * 180.0) as u32;
    let b = (200.0 - t * 160.0) as u32;
    format!("#{r:02x}50{b:02x}")
}

impl RingHeat {
    pub fn new(title: impl Into<String>, slots: Vec<RingHeatSlot>) -> RingHeat {
        RingHeat {
            title: title.into(),
            slots,
            size: 520,
        }
    }

    /// Renders the dashboard ring to an SVG document.
    pub fn to_svg(&self) -> String {
        let s = self.size as f64;
        let (cx, cy, r) = (s / 2.0, s / 2.0 + 10.0, s / 2.0 - 50.0);
        let xy = |frac: f64| -> (f64, f64) {
            let theta = 2.0 * std::f64::consts::PI * frac;
            (cx + r * theta.sin(), cy - r * theta.cos())
        };
        let mut slots = self.slots.clone();
        slots.sort_by(|a, b| a.frac.total_cmp(&b.frac));
        let max_load = slots.iter().map(|t| t.load).max().unwrap_or(0);

        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{s}\" height=\"{}\" \
             viewBox=\"0 0 {s} {}\" font-family=\"sans-serif\">\n",
            s + 20.0,
            s + 20.0
        ));
        out.push_str(&format!(
            "<text x=\"{cx}\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            escape(&self.title)
        ));
        out.push_str(&format!(
            "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{r}\" fill=\"none\" stroke=\"#ddd\"/>\n"
        ));
        // Ownership arcs: worker i serves the arc from its predecessor
        // (wrapping) to itself, drawn clockwise and colored by load.
        let n = slots.len();
        for (i, slot) in slots.iter().enumerate() {
            let pred = if n < 2 {
                // A single worker owns the whole ring; approximate the
                // full circle with an arc that starts just after itself.
                slot.frac + 1e-4
            } else {
                slots[(i + n - 1) % n].frac
            };
            let span = (slot.frac - pred).rem_euclid(1.0);
            let (x0, y0) = xy(pred);
            let (x1, y1) = xy(slot.frac);
            let large = if span > 0.5 { 1 } else { 0 };
            out.push_str(&format!(
                "<path d=\"M {x0:.1} {y0:.1} A {r:.1} {r:.1} 0 {large} 1 {x1:.1} {y1:.1}\" \
                 fill=\"none\" stroke=\"{}\" stroke-width=\"7\"/>\n",
                heat_color(slot.load, max_load)
            ));
        }
        // Node dots, sybil ticks, quarantine rings.
        for slot in &slots {
            let (x, y) = xy(slot.frac);
            if slot.flagged {
                out.push_str(&format!(
                    "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"11\" fill=\"none\" \
                     stroke=\"#d62728\" stroke-width=\"2\" stroke-dasharray=\"3 2\"/>\n"
                ));
            }
            out.push_str(&format!(
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"5\" fill=\"#333\"/>\n"
            ));
            // One tick per Sybil, fanned outward from the node.
            for k in 1..slot.vnodes.min(9) {
                let off = slot.frac + k as f64 * 0.004;
                let theta = 2.0 * std::f64::consts::PI * off;
                let (ox, oy) = (theta.sin(), -theta.cos());
                out.push_str(&format!(
                    "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
                     stroke=\"#b47cc7\" stroke-width=\"2\"/>\n",
                    cx + (r + 8.0) * ox,
                    cy + (r + 8.0) * oy,
                    cx + (r + 16.0) * ox,
                    cy + (r + 16.0) * oy
                ));
            }
        }
        out.push_str(&format!(
            "<text x=\"{cx}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\" fill=\"#555\">\
             arc heat = load · purple ticks = sybils · dashed red = quarantined</text>\n",
            s + 12.0
        ));
        out.push_str("</svg>\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_svg_is_well_formed_enough() {
        let a = [(0u64, 10u64, 5u64), (10, 20, 2)];
        let b = [(0u64, 10u64, 1u64), (10, 20, 9)];
        let chart = BarChart::from_histogram_rows("demo", &[("none", &a), ("churn", &b)]);
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 4 + 2); // 4 bars + 2 legend chips
        assert!(svg.contains("none"));
        assert!(svg.contains("churn"));
    }

    #[test]
    fn bar_chart_handles_empty() {
        let chart = BarChart::new("empty");
        let svg = chart.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn titles_are_escaped() {
        let chart = BarChart::new("a < b & c");
        let svg = chart.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn line_chart_draws_polylines_and_legend() {
        let mut c = LineChart::new("work per tick");
        c.push_series("none", vec![10.0, 9.0, 8.0]);
        c.push_series("random", vec![10.0, 10.0]);
        let svg = c.to_svg();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("random"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn line_chart_empty_series_is_safe() {
        let mut c = LineChart::new("empty");
        c.push_series("nothing", vec![]);
        let svg = c.to_svg();
        assert_eq!(svg.matches("<polyline").count(), 0);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn ring_heat_draws_arcs_markers_and_ticks() {
        let slots = vec![
            RingHeatSlot {
                label: 0,
                frac: 0.1,
                load: 30,
                vnodes: 1,
                flagged: false,
            },
            RingHeatSlot {
                label: 1,
                frac: 0.6,
                load: 5,
                vnodes: 3,
                flagged: true,
            },
        ];
        let svg = RingHeat::new("ring", slots).to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one ownership arc each");
        assert_eq!(
            svg.matches("stroke-dasharray").count(),
            1,
            "quarantine ring"
        );
        assert_eq!(svg.matches("<line").count(), 2, "two sybil ticks");
        // Heaviest load is full red, lightest near blue.
        assert!(svg.contains(&heat_color(30, 30)));
        assert!(svg.contains(&heat_color(5, 30)));
    }

    #[test]
    fn ring_heat_single_and_empty_are_safe() {
        let svg = RingHeat::new(
            "one",
            vec![RingHeatSlot {
                label: 0,
                frac: 0.0,
                load: 1,
                vnodes: 1,
                flagged: false,
            }],
        )
        .to_svg();
        assert!(svg.contains("</svg>"));
        let empty = RingHeat::new("none", Vec::new()).to_svg();
        assert!(empty.contains("</svg>"));
    }

    #[test]
    fn ring_scatter_draws_every_point() {
        let nodes: Vec<Id> = (1..=3u64).map(|v| Id::from(v * 1000)).collect();
        let tasks: Vec<Id> = (1..=5u64).map(|v| Id::from(v * 777)).collect();
        let svg = RingScatter::new("ring", nodes, tasks).to_svg();
        // 1 ring circle + 3 node circles.
        assert_eq!(svg.matches("<circle").count(), 4);
        assert_eq!(svg.matches("<path").count(), 5);
    }
}
