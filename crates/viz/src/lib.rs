//! # autobal-viz
//!
//! Dependency-free rendering of the paper's figures:
//!
//! * [`ascii`] — terminal histograms for quick inspection.
//! * [`csv`] — series writers for downstream plotting.
//! * [`svg`] — a tiny SVG emitter: grouped bar charts (the Figure 1 and
//!   4–14 workload histograms) and ring scatters (Figures 2–3).

pub mod ascii;
pub mod csv;
pub mod svg;

pub use ascii::{render_histogram, render_load_bars, render_ring, sparkline, RingMark};
pub use svg::{BarChart, LineChart, RingHeat, RingHeatSlot, RingScatter};
