//! # autobal-meminstr
//!
//! A dependency-free counting [`GlobalAlloc`] used by the allocation
//! regression tests and the `repro perf` plane. It forwards every call
//! to the [`System`] allocator and counts events in two scopes:
//!
//! * **process-wide** — atomic totals, cheap enough to leave on;
//! * **per-thread** — a `const`-initialized thread-local counter, so a
//!   test can assert "this exact stretch of code on this thread made N
//!   allocations" without rayon workers or other test threads bleeding
//!   into the count.
//!
//! Install it in a test binary and measure a window with
//! [`allocation_delta`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: autobal_meminstr::CountingAlloc = autobal_meminstr::CountingAlloc::new();
//!
//! let (allocs, result) = autobal_meminstr::allocation_delta(|| hot_loop());
//! assert_eq!(allocs, 0);
//! ```
//!
//! The counters deliberately count *events*, not a live-bytes balance:
//! a regression test cares about "did the hot loop touch the allocator
//! at all", and event counts cannot be masked by a matching free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init: plain memory, so the initializer itself can never
    // recurse into the allocator.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocation events across all threads since process start.
pub fn total_allocations() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested across all threads since process start.
pub fn total_bytes() -> u64 {
    TOTAL_BYTES.load(Ordering::Relaxed)
}

/// Allocation events on the calling thread since it started.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Runs `f` and returns how many allocation events the calling thread
/// performed inside it, along with `f`'s result.
pub fn allocation_delta<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = thread_allocations();
    let result = f();
    (thread_allocations() - before, result)
}

fn record(bytes: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    // During thread teardown the thread-local may already be gone;
    // dropping the per-thread count there is fine — the process-wide
    // totals still see the event.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

/// The counting allocator. Zero-sized; forwards to [`System`].
pub struct CountingAlloc;

impl CountingAlloc {
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: pure pass-through to `System`; the counters never allocate
// (atomics and a const-initialized thread-local `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place is still an allocator round trip the hot
        // path promised not to make.
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as #[global_allocator] here (that would count the
    // whole test harness); the unit tests drive the trait directly.

    #[test]
    fn counters_record_events() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before_total = total_allocations();
        let before_thread = thread_allocations();
        let before_bytes = total_bytes();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            a.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(total_allocations() - before_total, 3);
        assert_eq!(thread_allocations() - before_thread, 3);
        assert_eq!(total_bytes() - before_bytes, 64 + 64 + 128);
    }

    #[test]
    fn allocation_delta_scopes_a_window() {
        let (n, v) = allocation_delta(|| 6 * 7);
        assert_eq!((n, v), (0, 42));
    }
}
