//! Arc-range sharded ring storage and the parallel tick engine.
//!
//! [`ShardedRing`] partitions the 160-bit identifier circle into
//! `S` contiguous arc-range shards (shard `s` owns ids whose top 96
//! bits fall in `[s·2⁹⁶/S, (s+1)·2⁹⁶/S)`), each holding its virtual
//! nodes in a struct-of-arrays layout: an ordered id→slot index next to
//! parallel `owners`/`tasks` columns, so the hot tick loop walks dense
//! vectors instead of chasing `BTreeMap<Id, VNode>` nodes.
//!
//! ## Determinism contract
//!
//! The sharded engine is **bit-for-bit identical** to the classic
//! [`Ring`] for every operation sequence, at every shard count, at
//! every thread count. Structural operations (join splits, departure
//! merges, task placement) are executed in the same global id order the
//! classic engine uses — a shard boundary never changes *what* happens,
//! only *where* the state lives. The work phase exploits one algebraic
//! fact: the xorshift64* pop generator's state evolution is independent
//! of the vector lengths being popped, and each worker's pop count for
//! a tick (`min(capacity, load)`) is known before any pop happens. So
//! the tick barrier (a) computes per-worker prefix offsets into the
//! tick's pop stream sequentially, (b) materializes the whole state
//! stream once, and (c) lets every shard replay its slice of the stream
//! against its own task vectors — in parallel, with no cross-shard
//! effects, reproducing the sequential engine's pops exactly. Cross-
//! shard structural effects (a Sybil landing in another shard's arc, a
//! departure merging into a successor across a boundary) happen in the
//! sequential strategy phase, outside the parallel window, which is the
//! deterministic-merge discipline the tick barrier enforces.
//!
//! [`RingStore`] is the engine selector the simulator embeds: `Solo`
//! is the classic ordered-map ring (shards = 1), `Sharded` the
//! struct-of-arrays engine (shards ≥ 2).

use crate::ring::{
    advance_pop_state, extend_sorted, pop_index, Ring, RingError, POOL_CAP, POP_SEED,
};
use crate::worker::WorkerId;
use autobal_id::{ring as arc, Id};
use autobal_metrics::DistSummary;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Hard cap on the shard count (a partitioning knob, not a scaling
/// limit — more shards than cores only adds merge bookkeeping).
pub const MAX_SHARDS: usize = 64;

/// Owner sentinel marking a freed slot in the struct-of-arrays columns.
const FREE_OWNER: WorkerId = usize::MAX;

/// Which shard an identifier belongs to: the top 96 bits of the id,
/// scaled by the shard count. Monotone in the id, so concatenating the
/// shards' ordered indexes in shard order yields the global id order.
#[inline]
pub(crate) fn shard_of(id: Id, shards: usize) -> usize {
    let [_, mid, hi] = id.limbs();
    // `hi` < 2³² (160-bit ids), so key96 < 2⁹⁶ and the product fits u128.
    let key96 = ((hi as u128) << 64) | (mid as u128);
    ((key96 * shards as u128) >> 96) as usize
}

/// One contiguous arc-range shard in struct-of-arrays layout.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    /// Ordered id → slot index (the shard's fragment of the ring order).
    index: BTreeMap<Id, usize>,
    /// Slot → owning worker (`FREE_OWNER` when the slot is free).
    owners: Vec<WorkerId>,
    /// Slot → remaining task keys (ascending; same representation and
    /// element order as [`crate::ring::VNode::tasks`]).
    tasks: Vec<Vec<Id>>,
    /// Free slot list (slots keep their columns; vectors are recycled
    /// through the ring-level pool instead).
    free: Vec<usize>,
    /// `(slot, owner)` pairs for slots with a nonempty task queue — the
    /// planned tick's working set. Valid only while the ring-level
    /// `live_epoch` matches `muts` (rebuilt by `refresh_live`); pruned
    /// in place as queues drain, so tail-of-run ticks touch only the
    /// handful of still-loaded slots instead of every column.
    live: Vec<(u32, u32)>,
}

impl Shard {
    /// Files a vnode into a free (or fresh) slot.
    fn insert(&mut self, id: Id, owner: WorkerId, tasks: Vec<Id>) {
        let slot = match self.free.pop() {
            Some(s) if s < self.owners.len() => s,
            _ => {
                self.owners.push(FREE_OWNER);
                self.tasks.push(Vec::new());
                self.owners.len() - 1
            }
        };
        if let (Some(o), Some(t)) = (self.owners.get_mut(slot), self.tasks.get_mut(slot)) {
            *o = owner;
            *t = tasks;
            self.index.insert(id, slot);
        }
    }

    /// Unfiles a vnode, returning its owner and task vector.
    fn remove(&mut self, id: Id) -> Option<(WorkerId, Vec<Id>)> {
        let slot = self.index.remove(&id)?;
        let owner = self.owners.get(slot).copied()?;
        let tasks = std::mem::take(self.tasks.get_mut(slot)?);
        if let Some(o) = self.owners.get_mut(slot) {
            *o = FREE_OWNER;
        }
        self.free.push(slot);
        Some((owner, tasks))
    }

    /// Replays this shard's slice of the tick's pop-state stream: for
    /// every live slot, pops `pops[owner]` tasks using the states at
    /// `offs[owner]..` — exactly the states the sequential engine would
    /// have drawn for that worker. Returns the number of tasks popped.
    ///
    /// Slots are visited in column order, not ring order: each state in
    /// the stream is pre-assigned to one worker by the planning pass,
    /// so replay order cannot change which state pops which queue. The
    /// dense `owners` scan is what the struct-of-arrays layout buys —
    /// no per-pop (or even per-vnode) ordered-map walk on the hot tick.
    fn pop_batch(&mut self, offs: &[u64], pops: &[u32], stream: &[u64]) -> u64 {
        let Shard { tasks, live, .. } = self;
        let mut done = 0u64;
        let mut i = 0;
        while let Some(&(slot, owner)) = live.get(i) {
            let Some(&k) = pops.get(owner as usize) else {
                i += 1;
                continue;
            };
            if k == 0 {
                i += 1;
                continue;
            }
            let Some(&off) = offs.get(owner as usize) else {
                i += 1;
                continue;
            };
            let Some(tv) = tasks.get_mut(slot as usize) else {
                i += 1;
                continue;
            };
            let Some(states) = stream.get(off as usize..off as usize + k as usize) else {
                i += 1;
                continue;
            };
            for &st in states {
                let len = tv.len();
                if len == 0 {
                    break;
                }
                tv.swap_remove(pop_index(st, len));
                done += 1;
            }
            if tv.is_empty() {
                // Drained: prune from the working set. The swapped-in
                // pair is visited next (no `i` bump) — visit order is
                // free to vary because every stream state is already
                // assigned to one worker.
                live.swap_remove(i);
            } else {
                i += 1;
            }
        }
        done
    }

    /// Rebuilds the live `(slot, owner)` working set from the columns.
    fn rebuild_live(&mut self) {
        let Shard {
            owners,
            tasks,
            live,
            ..
        } = self;
        live.clear();
        for (slot, &owner) in owners.iter().enumerate() {
            if owner == FREE_OWNER {
                continue;
            }
            if tasks.get(slot).is_none_or(|t| t.is_empty()) {
                continue;
            }
            live.push((slot as u32, owner as u32));
        }
    }

    /// Mergeable load summary over this shard's live slots.
    fn summary(&self) -> DistSummary {
        let mut s = DistSummary::default();
        for (_, &slot) in self.index.iter() {
            s.observe(self.tasks.get(slot).map_or(0, |t| t.len() as u64));
        }
        s
    }
}

/// The sharded struct-of-arrays ring engine. Mirrors [`Ring`]'s public
/// surface operation for operation (see the module docs for the
/// determinism contract).
#[derive(Debug, Clone)]
pub struct ShardedRing {
    shards: Vec<Shard>,
    /// Total live vnodes across all shards.
    len: usize,
    total_tasks: u64,
    /// xorshift state for uniform task consumption (deterministic; same
    /// stream as the classic engine).
    pop_rng: u64,
    /// Reusable split buffer (as in [`Ring`]): holds the newcomer's
    /// keys during `insert_vnode` so steady-state splits never allocate.
    scratch: Vec<Id>,
    /// Retired task vectors, recycled on the next split.
    pool: Vec<Vec<Id>>,
    /// Per-worker pop-stream offsets for the fast tick (reused buffer,
    /// filled by the simulator's sequential planning pass).
    pub(crate) offs: Vec<u64>,
    /// Per-worker pop counts for the fast tick (reused buffer).
    pub(crate) pops: Vec<u32>,
    /// The tick's pre-generated pop-state stream (reused buffer).
    stream: Vec<u64>,
    /// Structural mutation counter: every insert/remove/assign/single
    /// pop bumps it, invalidating the shards' `live` working sets.
    muts: u64,
    /// Value of `muts` when the `live` sets were last rebuilt; batch
    /// pops prune the sets in place without bumping `muts`, so between
    /// structural mutations the rebuild is skipped entirely.
    live_epoch: u64,
}

impl ShardedRing {
    /// A new empty ring partitioned into `shards` arcs (clamped to
    /// `1..=MAX_SHARDS`).
    pub fn new(shards: usize) -> ShardedRing {
        let shards = shards.clamp(1, MAX_SHARDS);
        ShardedRing {
            shards: std::iter::repeat_with(Shard::default)
                .take(shards)
                .collect(),
            len: 0,
            total_tasks: 0,
            pop_rng: POP_SEED,
            scratch: Vec::new(),
            pool: Vec::new(),
            offs: Vec::new(),
            pops: Vec::new(),
            stream: Vec::new(),
            muts: 1,
            live_epoch: 0,
        }
    }

    /// Brings every shard's live working set up to date with the
    /// columns; a no-op between structural mutations.
    fn refresh_live(&mut self) {
        if self.live_epoch == self.muts {
            return;
        }
        for sh in self.shards.iter_mut() {
            sh.rebuild_live();
        }
        self.live_epoch = self.muts;
    }

    /// Number of arc-range shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of virtual nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total remaining tasks across the ring.
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    #[inline]
    fn shard_idx(&self, id: Id) -> usize {
        shard_of(id, self.shards.len())
    }

    pub fn contains(&self, id: Id) -> bool {
        self.shards
            .get(self.shard_idx(id))
            .is_some_and(|sh| sh.index.contains_key(&id))
    }

    /// Remaining tasks at one virtual node.
    pub fn load(&self, id: Id) -> u64 {
        self.shards
            .get(self.shard_idx(id))
            .and_then(|sh| {
                let slot = *sh.index.get(&id)?;
                sh.tasks.get(slot)
            })
            .map_or(0, |t| t.len() as u64)
    }

    /// The worker controlling the vnode at `id`, if present.
    pub fn vnode_owner(&self, id: Id) -> Option<WorkerId> {
        let sh = self.shards.get(self.shard_idx(id))?;
        let slot = *sh.index.get(&id)?;
        sh.owners.get(slot).copied()
    }

    /// The virtual node whose arc contains `key` (first id ≥ key,
    /// wrapping to the smallest id).
    pub fn owner_of_key(&self, key: Id) -> Option<Id> {
        if self.len == 0 {
            return None;
        }
        let s = self.shard_idx(key);
        if let Some(sh) = self.shards.get(s) {
            if let Some((&id, _)) = sh.index.range(key..).next() {
                return Some(id);
            }
        }
        self.first_nonempty_after(s)
    }

    /// Clockwise neighbor of `id` (excluding itself; `id` itself when it
    /// is the only node). `id` need not be present.
    pub fn successor_of(&self, id: Id) -> Option<Id> {
        if self.len == 0 {
            return None;
        }
        let s = self.shard_idx(id);
        if let Some(sh) = self.shards.get(s) {
            if let Some((&i, _)) = sh
                .index
                .range((Bound::Excluded(id), Bound::Unbounded))
                .next()
            {
                return Some(i);
            }
        }
        self.first_nonempty_after(s)
    }

    /// Counter-clockwise neighbor of `id` (excluding itself).
    pub fn predecessor_of(&self, id: Id) -> Option<Id> {
        if self.len == 0 {
            return None;
        }
        let s = self.shard_idx(id);
        if let Some(sh) = self.shards.get(s) {
            if let Some((&i, _)) = sh.index.range(..id).next_back() {
                return Some(i);
            }
        }
        // Walk counter-clockwise through shards s-1, …, 0, then wrap
        // n-1, …, s: the first non-empty shard's largest id is the
        // predecessor (or, wrapped, the global maximum).
        let n = self.shards.len();
        for d in 1..=n {
            let t = (s + n - d) % n;
            if let Some(sh) = self.shards.get(t) {
                if let Some((&i, _)) = sh.index.iter().next_back() {
                    return Some(i);
                }
            }
        }
        None
    }

    /// The smallest id in the first non-empty shard clockwise after
    /// shard `s` (cyclically, ending at `s` itself). Ids in shards
    /// after `s` all sort above shard `s`'s arc, so this is both "next
    /// id after the arc" and, once wrapped past the top, the global
    /// minimum — exactly the classic engine's `or_else(global min)`.
    fn first_nonempty_after(&self, s: usize) -> Option<Id> {
        let n = self.shards.len();
        for d in 1..=n {
            let t = (s + d) % n;
            if let Some(sh) = self.shards.get(t) {
                if let Some((&i, _)) = sh.index.iter().next() {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Up to `k` distinct clockwise successors of `id`, nearest first.
    pub fn successors(&self, id: Id, k: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(k);
        let mut cur = id;
        for _ in 0..k {
            match self.successor_of(cur) {
                Some(s) if s != id => {
                    out.push(s);
                    cur = s;
                }
                _ => break,
            }
        }
        out
    }

    /// Up to `k` distinct counter-clockwise predecessors, nearest first.
    pub fn predecessors(&self, id: Id, k: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(k);
        let mut cur = id;
        for _ in 0..k {
            match self.predecessor_of(cur) {
                Some(p) if p != id => {
                    out.push(p);
                    cur = p;
                }
                _ => break,
            }
        }
        out
    }

    /// Inserts a virtual node at `id` for `owner`, splitting the
    /// successor's task set exactly as [`Ring::insert_vnode`] does —
    /// the successor may live in any shard.
    pub fn insert_vnode(&mut self, id: Id, owner: WorkerId) -> Result<u64, RingError> {
        self.muts = self.muts.wrapping_add(1);
        let s = self.shard_idx(id);
        if self
            .shards
            .get(s)
            .is_some_and(|sh| sh.index.contains_key(&id))
        {
            return Err(RingError::Occupied(id));
        }
        if self.len == 0 {
            if let Some(sh) = self.shards.get_mut(s) {
                sh.insert(id, owner, Vec::new());
                self.len = 1;
            }
            return Ok(0);
        }
        let Some(succ_id) = self.owner_of_key(id) else {
            return Err(RingError::Unknown(id));
        };
        let ss = self.shard_idx(succ_id);
        self.scratch.clear();
        {
            let ShardedRing {
                shards, scratch, ..
            } = self;
            let Some(sh) = shards.get_mut(ss) else {
                return Err(RingError::Unknown(succ_id));
            };
            let Some(&slot) = sh.index.get(&succ_id) else {
                return Err(RingError::Unknown(succ_id));
            };
            let Some(tv) = sh.tasks.get_mut(slot) else {
                return Err(RingError::Unknown(succ_id));
            };
            // Same stable in-place partition as the classic engine:
            // keepers stay in (id, succ_id], the newcomer's keys stream
            // into scratch in their original (ascending) order.
            tv.retain(|&k| {
                let keep = arc::in_arc(id, succ_id, k);
                if !keep {
                    scratch.push(k);
                }
                keep
            });
        }
        let acquired = self.scratch.len() as u64;
        let mut tasks = self.pool.pop().unwrap_or_default();
        tasks.extend_from_slice(&self.scratch);
        if let Some(sh) = self.shards.get_mut(s) {
            sh.insert(id, owner, tasks);
            self.len += 1;
        }
        Ok(acquired)
    }

    /// Removes the virtual node at `id`, merging its remaining tasks
    /// into its successor (which may live in any shard). Returns
    /// `(owner, tasks_moved, successor)`.
    pub fn remove_vnode(&mut self, id: Id) -> Result<(WorkerId, u64, Id), RingError> {
        self.muts = self.muts.wrapping_add(1);
        let s = self.shard_idx(id);
        if !self
            .shards
            .get(s)
            .is_some_and(|sh| sh.index.contains_key(&id))
        {
            return Err(RingError::Unknown(id));
        }
        if self.len == 1 {
            let idle = self
                .shards
                .get(s)
                .and_then(|sh| {
                    let slot = *sh.index.get(&id)?;
                    sh.tasks.get(slot)
                })
                .is_some_and(|t| t.is_empty());
            if !idle {
                return Err(RingError::LastVNode);
            }
            let Some((owner, tasks)) = self.shards.get_mut(s).and_then(|sh| sh.remove(id)) else {
                return Err(RingError::Unknown(id));
            };
            self.len = 0;
            self.recycle(tasks);
            return Ok((owner, 0, id));
        }
        let Some(succ_id) = self.successor_of(id) else {
            return Err(RingError::Unknown(id));
        };
        let Some((owner, tasks)) = self.shards.get_mut(s).and_then(|sh| sh.remove(id)) else {
            return Err(RingError::Unknown(id));
        };
        self.len -= 1;
        let moved = tasks.len() as u64;
        let ss = self.shard_idx(succ_id);
        if let Some(tv) = self.shards.get_mut(ss).and_then(|sh| {
            let slot = *sh.index.get(&succ_id)?;
            sh.tasks.get_mut(slot)
        }) {
            tv.extend_from_slice(&tasks);
        }
        self.recycle(tasks);
        Ok((owner, moved, succ_id))
    }

    /// Parks a retired task vector for reuse by a later split.
    fn recycle(&mut self, mut tasks: Vec<Id>) {
        if self.pool.len() < POOL_CAP && tasks.capacity() > 0 {
            tasks.clear();
            self.pool.push(tasks);
        }
    }

    /// Distributes a batch of task keys onto their owning virtual nodes
    /// (initial placement). Identical placement to
    /// [`Ring::assign_tasks`]: the walk simply crosses shard boundaries
    /// as it sweeps the global id order.
    pub fn assign_tasks(&mut self, mut keys: Vec<Id>) {
        debug_assert!(self.len > 0, "assign_tasks on empty ring");
        self.muts = self.muts.wrapping_add(1);
        keys.sort_unstable();
        self.total_tasks += keys.len() as u64;
        let mut start = 0usize;
        let mut first = None;
        let mut prev = None;
        for sh in self.shards.iter_mut() {
            let Shard { index, tasks, .. } = sh;
            for (&b, &slot) in index.iter() {
                let Some(a) = prev else {
                    first = Some(b);
                    prev = Some(b);
                    continue;
                };
                // keys in (a, b]: advance start past ≤ a, then take ≤ b.
                let Some(tail) = keys.get(start..) else {
                    break;
                };
                let lo = tail.partition_point(|&k| k <= a) + start;
                let Some(rest) = keys.get(lo..) else {
                    break;
                };
                let hi = rest.partition_point(|&k| k <= b) + lo;
                if let (Some(tv), Some(chunk)) = (tasks.get_mut(slot), keys.get(lo..hi)) {
                    extend_sorted(tv, chunk);
                }
                start = hi;
                prev = Some(b);
            }
        }
        // Wrap chunk: keys ≤ first id and keys > last id go to first.
        let (Some(first), Some(last)) = (first, prev) else {
            return;
        };
        let head_end = keys.partition_point(|&k| k <= first);
        let tail_start = keys.partition_point(|&k| k <= last);
        let fs = self.shard_idx(first);
        let Some(tv) = self.shards.get_mut(fs).and_then(|sh| {
            let slot = *sh.index.get(&first)?;
            sh.tasks.get_mut(slot)
        }) else {
            return;
        };
        if let Some(head) = keys.get(..head_end) {
            extend_sorted(tv, head);
        }
        if let Some(tail) = keys.get(tail_start..) {
            extend_sorted(tv, tail);
        }
    }

    /// Consumes one uniformly random task from the virtual node —
    /// the sequential path, drawing from the shared pop stream in call
    /// order exactly like [`Ring::pop_task`]. Returns `false` if the
    /// node is absent or idle.
    pub fn pop_task(&mut self, id: Id) -> bool {
        let s = self.shard_idx(id);
        let Some(sh) = self.shards.get_mut(s) else {
            return false;
        };
        let Some(&slot) = sh.index.get(&id) else {
            return false;
        };
        let Some(tv) = sh.tasks.get_mut(slot) else {
            return false;
        };
        let len = tv.len();
        if len == 0 {
            return false;
        }
        self.muts = self.muts.wrapping_add(1);
        self.pop_rng = advance_pop_state(self.pop_rng);
        tv.swap_remove(pop_index(self.pop_rng, len));
        self.total_tasks -= 1;
        true
    }

    /// The parallel work phase of one tick. The caller (the simulator's
    /// sequential planning pass) has filled `offs`/`pops` with each
    /// worker's stream offset and pop count; `total` is the tick's
    /// total pop count. Generates the tick's pop-state stream once,
    /// then replays each shard's slice — in parallel when the ambient
    /// rayon pool has threads to spare, sequentially otherwise; both
    /// paths produce identical state by construction.
    pub(crate) fn run_pops(&mut self, total: u64) {
        self.refresh_live();
        self.stream.clear();
        self.stream.reserve(total as usize);
        let mut s = self.pop_rng;
        for _ in 0..total {
            s = advance_pop_state(s);
            self.stream.push(s);
        }
        self.pop_rng = s;
        let ShardedRing {
            shards,
            offs,
            pops,
            stream,
            ..
        } = self;
        let offs: &[u64] = offs;
        let pops: &[u32] = pops;
        let stream: &[u64] = stream;
        let done: u64 = if shards.len() > 1 && rayon::current_num_threads() > 1 {
            let jobs: Vec<&mut Shard> = shards.iter_mut().collect();
            let per_shard: Vec<u64> = jobs
                .into_par_iter()
                .map(|sh| sh.pop_batch(offs, pops, stream))
                .collect();
            per_shard.iter().sum()
        } else {
            let mut done = 0u64;
            for sh in shards.iter_mut() {
                done += sh.pop_batch(offs, pops, stream);
            }
            done
        };
        debug_assert_eq!(done, total, "fast tick popped a different count");
        self.total_tasks -= total;
    }

    /// The sequential planning pass done ring-side. When the
    /// simulator's worker load ledger is detached (see `Sim::step`),
    /// each live slot's queue length *is* its owner's load — the fast
    /// precondition guarantees one primary vnode per active worker —
    /// so per-worker pop counts can be read straight off the dense
    /// columns without touching the worker table at all. `caps[w]` is
    /// worker `w`'s per-tick capacity (static between churn events).
    ///
    /// Fills `pops` exactly as the worker-scan pass would and assigns
    /// `offs` as the exclusive prefix sum *in worker-index order* — the
    /// ordering contract that makes stream replay bit-identical to the
    /// sequential engine. Returns the tick's total pop count.
    pub(crate) fn plan_pops_from_ring(&mut self, caps: &[u32]) -> u64 {
        self.refresh_live();
        let ShardedRing {
            shards, offs, pops, ..
        } = self;
        let n = caps.len();
        pops.clear();
        pops.resize(n, 0);
        if offs.len() != n {
            offs.clear();
            offs.resize(n, 0);
        }
        for sh in shards.iter() {
            let Shard { tasks, live, .. } = sh;
            for &(slot, owner) in live.iter() {
                let Some(&cap) = caps.get(owner as usize) else {
                    continue;
                };
                let len = tasks.get(slot as usize).map_or(0, |t| t.len()) as u64;
                let p = (cap as u64).min(len) as u32;
                if let Some(q) = pops.get_mut(owner as usize) {
                    *q = p;
                }
            }
        }
        // Exclusive prefix sum in worker-index order — the stream-
        // assignment contract. Offsets are written only for popping
        // workers; stale entries are never read (`pops == 0` guards).
        let mut total = 0u64;
        for (w, &p) in pops.iter().enumerate() {
            if p == 0 {
                continue;
            }
            if let Some(o) = offs.get_mut(w) {
                *o = total;
            }
            total += p as u64;
        }
        total
    }

    /// The ring-order median of a virtual node's remaining task keys
    /// (see [`Ring::median_task_key`]).
    pub fn median_task_key(&self, id: Id) -> Option<Id> {
        let sh = self.shards.get(self.shard_idx(id))?;
        let slot = *sh.index.get(&id)?;
        let tv = sh.tasks.get(slot)?;
        if tv.is_empty() {
            return None;
        }
        let pred = self.predecessor_of(id).unwrap_or(id);
        let mut keys = tv.clone();
        let mid = keys.len() / 2;
        keys.select_nth_unstable_by_key(mid, |k| k.wrapping_sub(pred));
        keys.get(mid).copied()
    }

    /// Per-owner total loads, for snapshot assertions.
    pub fn loads_by_owner(&self, workers: usize) -> Vec<u64> {
        let mut out = vec![0u64; workers];
        for sh in &self.shards {
            for (_, &slot) in sh.index.iter() {
                let Some(&owner) = sh.owners.get(slot) else {
                    continue;
                };
                let load = sh.tasks.get(slot).map_or(0, |t| t.len() as u64);
                if let Some(o) = out.get_mut(owner) {
                    *o += load;
                }
            }
        }
        out
    }

    /// Remaining task keys at one virtual node, in internal queue order.
    pub fn tasks(&self, id: Id) -> Option<&[Id]> {
        let sh = self.shards.get(self.shard_idx(id))?;
        let slot = *sh.index.get(&id)?;
        sh.tasks.get(slot).map(Vec::as_slice)
    }

    /// `(id, owner, tasks)` for every vnode in global ring (ascending
    /// id) order — shards concatenate to the global order because
    /// [`shard_of`] is monotone in the id.
    pub fn rows(&self) -> Vec<(Id, WorkerId, Vec<Id>)> {
        let mut out = Vec::with_capacity(self.len);
        for sh in &self.shards {
            for (&id, &slot) in sh.index.iter() {
                let owner = sh.owners.get(slot).copied().unwrap_or(FREE_OWNER);
                let tasks = sh.tasks.get(slot).cloned().unwrap_or_default();
                out.push((id, owner, tasks));
            }
        }
        out
    }

    /// `(id, load)` for every vnode in global ring (ascending id) order.
    pub fn vnode_loads(&self) -> Vec<(Id, u64)> {
        let mut out = Vec::with_capacity(self.len);
        for sh in &self.shards {
            for (&id, &slot) in sh.index.iter() {
                out.push((id, sh.tasks.get(slot).map_or(0, |t| t.len() as u64)));
            }
        }
        out
    }

    /// Per-shard mergeable load summaries (the tick-barrier feed for
    /// the metrics plane: each shard reports independently, the merge
    /// is order-free and exact).
    pub fn shard_summaries(&self) -> Vec<DistSummary> {
        self.shards.iter().map(Shard::summary).collect()
    }

    /// The merged whole-ring summary; equals folding every vnode load
    /// through one [`DistSummary`].
    pub fn summary(&self) -> DistSummary {
        let mut total = DistSummary::default();
        for s in self.shards.iter().map(Shard::summary) {
            total.merge(&s);
        }
        total
    }

    /// Verifies internal invariants (accurate totals, shard filing,
    /// keys within their owner arcs). Test/debug helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0u64;
        let mut live = 0usize;
        for (si, sh) in self.shards.iter().enumerate() {
            for (&id, &slot) in sh.index.iter() {
                live += 1;
                if self.shard_idx(id) != si {
                    return Err(format!(
                        "vnode {id} filed in shard {si}, belongs in {}",
                        self.shard_idx(id)
                    ));
                }
                if sh.owners.get(slot).copied().unwrap_or(FREE_OWNER) == FREE_OWNER {
                    return Err(format!("vnode {id} points at freed slot {slot}"));
                }
                let Some(tv) = sh.tasks.get(slot) else {
                    return Err(format!("vnode {id} points at missing slot {slot}"));
                };
                counted += tv.len() as u64;
                let pred = self.predecessor_of(id).unwrap_or(id);
                for &k in tv.iter() {
                    if pred != id && !arc::in_arc(pred, id, k) {
                        return Err(format!("key {k} at {id} outside arc ({pred}, {id}]"));
                    }
                }
            }
        }
        if live != self.len {
            return Err(format!("len {} but counted {live} vnodes", self.len));
        }
        if counted != self.total_tasks {
            return Err(format!(
                "total_tasks {} but counted {counted}",
                self.total_tasks
            ));
        }
        Ok(())
    }
}

/// The engine selector the simulator embeds: the classic ordered-map
/// ring for a single shard, the struct-of-arrays engine otherwise.
/// Every forwarded operation is bit-for-bit identical across variants.
#[derive(Debug, Clone)]
pub enum RingStore {
    /// The classic [`Ring`] (shards = 1).
    Solo(Ring),
    /// The arc-range sharded engine (shards ≥ 2).
    Sharded(ShardedRing),
}

impl RingStore {
    /// Picks the engine for a resolved shard count.
    pub fn with_shards(shards: usize) -> RingStore {
        if shards <= 1 {
            RingStore::Solo(Ring::new())
        } else {
            RingStore::Sharded(ShardedRing::new(shards))
        }
    }

    /// Number of arc-range shards (1 for the classic engine).
    pub fn shard_count(&self) -> usize {
        match self {
            RingStore::Solo(_) => 1,
            RingStore::Sharded(s) => s.shard_count(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            RingStore::Solo(r) => r.len(),
            RingStore::Sharded(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn total_tasks(&self) -> u64 {
        match self {
            RingStore::Solo(r) => r.total_tasks(),
            RingStore::Sharded(s) => s.total_tasks(),
        }
    }

    pub fn contains(&self, id: Id) -> bool {
        match self {
            RingStore::Solo(r) => r.contains(id),
            RingStore::Sharded(s) => s.contains(id),
        }
    }

    pub fn load(&self, id: Id) -> u64 {
        match self {
            RingStore::Solo(r) => r.load(id),
            RingStore::Sharded(s) => s.load(id),
        }
    }

    /// The worker controlling the vnode at `id`, if present.
    pub fn vnode_owner(&self, id: Id) -> Option<WorkerId> {
        match self {
            RingStore::Solo(r) => r.vnode(id).map(|v| v.owner),
            RingStore::Sharded(s) => s.vnode_owner(id),
        }
    }

    pub fn owner_of_key(&self, key: Id) -> Option<Id> {
        match self {
            RingStore::Solo(r) => r.owner_of_key(key),
            RingStore::Sharded(s) => s.owner_of_key(key),
        }
    }

    pub fn successor_of(&self, id: Id) -> Option<Id> {
        match self {
            RingStore::Solo(r) => r.successor_of(id),
            RingStore::Sharded(s) => s.successor_of(id),
        }
    }

    pub fn predecessor_of(&self, id: Id) -> Option<Id> {
        match self {
            RingStore::Solo(r) => r.predecessor_of(id),
            RingStore::Sharded(s) => s.predecessor_of(id),
        }
    }

    pub fn successors(&self, id: Id, k: usize) -> Vec<Id> {
        match self {
            RingStore::Solo(r) => r.successors(id, k),
            RingStore::Sharded(s) => s.successors(id, k),
        }
    }

    pub fn predecessors(&self, id: Id, k: usize) -> Vec<Id> {
        match self {
            RingStore::Solo(r) => r.predecessors(id, k),
            RingStore::Sharded(s) => s.predecessors(id, k),
        }
    }

    pub fn insert_vnode(&mut self, id: Id, owner: WorkerId) -> Result<u64, RingError> {
        match self {
            RingStore::Solo(r) => r.insert_vnode(id, owner),
            RingStore::Sharded(s) => s.insert_vnode(id, owner),
        }
    }

    pub fn remove_vnode(&mut self, id: Id) -> Result<(WorkerId, u64, Id), RingError> {
        match self {
            RingStore::Solo(r) => r.remove_vnode(id),
            RingStore::Sharded(s) => s.remove_vnode(id),
        }
    }

    pub fn assign_tasks(&mut self, keys: Vec<Id>) {
        match self {
            RingStore::Solo(r) => r.assign_tasks(keys),
            RingStore::Sharded(s) => s.assign_tasks(keys),
        }
    }

    pub fn pop_task(&mut self, id: Id) -> bool {
        match self {
            RingStore::Solo(r) => r.pop_task(id),
            RingStore::Sharded(s) => s.pop_task(id),
        }
    }

    pub fn median_task_key(&self, id: Id) -> Option<Id> {
        match self {
            RingStore::Solo(r) => r.median_task_key(id),
            RingStore::Sharded(s) => s.median_task_key(id),
        }
    }

    pub fn loads_by_owner(&self, workers: usize) -> Vec<u64> {
        match self {
            RingStore::Solo(r) => r.loads_by_owner(workers),
            RingStore::Sharded(s) => s.loads_by_owner(workers),
        }
    }

    /// Remaining task keys at one virtual node, in internal queue order.
    pub fn tasks(&self, id: Id) -> Option<&[Id]> {
        match self {
            RingStore::Solo(r) => r.vnode(id).map(|v| v.tasks.as_slice()),
            RingStore::Sharded(s) => s.tasks(id),
        }
    }

    /// `(id, owner, tasks)` for every vnode in global ring order.
    pub fn rows(&self) -> Vec<(Id, WorkerId, Vec<Id>)> {
        match self {
            RingStore::Solo(r) => r
                .iter()
                .map(|(id, v)| (*id, v.owner, v.tasks.clone()))
                .collect(),
            RingStore::Sharded(s) => s.rows(),
        }
    }

    /// `(id, load)` for every vnode in global ring order.
    pub fn vnode_loads(&self) -> Vec<(Id, u64)> {
        match self {
            RingStore::Solo(r) => r
                .iter()
                .map(|(id, v)| (*id, v.tasks.len() as u64))
                .collect(),
            RingStore::Sharded(s) => s.vnode_loads(),
        }
    }

    /// Mergeable whole-ring load summary (per-shard partials merged at
    /// the barrier for the sharded engine).
    pub fn summary(&self) -> DistSummary {
        match self {
            RingStore::Solo(r) => {
                let mut s = DistSummary::default();
                for (_, v) in r.iter() {
                    s.observe(v.tasks.len() as u64);
                }
                s
            }
            RingStore::Sharded(s) => s.summary(),
        }
    }

    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            RingStore::Solo(r) => r.check_invariants(),
            RingStore::Sharded(s) => s.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn rid(rng: &mut ChaCha8Rng) -> Id {
        Id::random(rng)
    }

    /// Drives the same operation soup through a classic ring and a
    /// sharded ring, asserting identical observable state throughout.
    fn differential_soup(shards: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut solo = Ring::new();
        let mut sharded = ShardedRing::new(shards);
        let mut ids: Vec<Id> = Vec::new();
        // Seed population + tasks.
        for w in 0..40usize {
            let id = rid(&mut rng);
            assert_eq!(
                solo.insert_vnode(id, w).unwrap(),
                sharded.insert_vnode(id, w).unwrap()
            );
            ids.push(id);
        }
        let keys: Vec<Id> = (0..4_000).map(|_| rid(&mut rng)).collect();
        solo.assign_tasks(keys.clone());
        sharded.assign_tasks(keys);
        for step in 0..600 {
            match rng.gen_range(0..4u32) {
                0 => {
                    let id = rid(&mut rng);
                    let owner = rng.gen_range(0..64usize);
                    let a = solo.insert_vnode(id, owner);
                    let b = sharded.insert_vnode(id, owner);
                    assert_eq!(a, b, "insert parity at step {step}");
                    if a.is_ok() {
                        ids.push(id);
                    }
                }
                1 if ids.len() > 1 => {
                    let at = rng.gen_range(0..ids.len());
                    let id = ids.swap_remove(at);
                    let a = solo.remove_vnode(id);
                    let b = sharded.remove_vnode(id);
                    assert_eq!(a, b, "remove parity at step {step}");
                }
                2 if !ids.is_empty() => {
                    let id = ids[rng.gen_range(0..ids.len())];
                    assert_eq!(solo.pop_task(id), sharded.pop_task(id));
                }
                _ => {
                    let probe = rid(&mut rng);
                    assert_eq!(solo.owner_of_key(probe), sharded.owner_of_key(probe));
                    assert_eq!(solo.successor_of(probe), sharded.successor_of(probe));
                    assert_eq!(solo.predecessor_of(probe), sharded.predecessor_of(probe));
                }
            }
            assert_eq!(solo.total_tasks(), sharded.total_tasks());
            assert_eq!(solo.len(), sharded.len());
        }
        sharded.check_invariants().unwrap();
        solo.check_invariants().unwrap();
        for &id in &ids {
            assert_eq!(solo.load(id), sharded.load(id));
            assert_eq!(solo.median_task_key(id), sharded.median_task_key(id));
        }
        let solo_loads: Vec<(Id, u64)> = solo
            .iter()
            .map(|(id, v)| (*id, v.tasks.len() as u64))
            .collect();
        assert_eq!(solo_loads, sharded.vnode_loads());
    }

    #[test]
    fn op_soup_matches_classic_ring_across_shard_counts() {
        for shards in [2, 3, 8, 64] {
            differential_soup(shards, 0xC0FFEE ^ shards as u64);
        }
    }

    #[test]
    fn shard_of_is_monotone_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for shards in [1usize, 2, 3, 8, 64] {
            let mut pairs: Vec<(Id, usize)> = (0..500)
                .map(|_| rid(&mut rng))
                .map(|i| (i, shard_of(i, shards)))
                .collect();
            pairs.sort();
            for w in pairs.windows(2) {
                assert!(w[0].1 <= w[1].1, "shard_of must be monotone");
            }
            assert!(pairs.iter().all(|&(_, s)| s < shards));
        }
        assert_eq!(shard_of(Id::ZERO, 64), 0);
        assert_eq!(shard_of(Id::MAX, 64), 63);
    }

    #[test]
    fn summaries_merge_to_whole_ring() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ring = ShardedRing::new(8);
        for w in 0..50usize {
            ring.insert_vnode(rid(&mut rng), w).unwrap();
        }
        ring.assign_tasks((0..2_000).map(|_| rid(&mut rng)).collect());
        let merged = ring.summary();
        assert_eq!(merged.n, 50);
        assert_eq!(merged.total, 2_000);
        let mut refold = DistSummary::default();
        for s in ring.shard_summaries() {
            refold.merge(&s);
        }
        assert_eq!(refold, merged);
        let max = ring
            .vnode_loads()
            .into_iter()
            .map(|(_, l)| l)
            .max()
            .unwrap();
        assert_eq!(merged.max, max);
    }

    #[test]
    fn fast_pop_stream_matches_sequential_pops() {
        // Two identical rings, one popped sequentially (the classic
        // draw order), one through the planned-stream fast path.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let build = |shards: usize, rng: &mut ChaCha8Rng| {
            let mut r = ShardedRing::new(shards);
            let ids: Vec<Id> = (0..30).map(|_| Id::random(&mut *rng)).collect();
            for (w, &id) in ids.iter().enumerate() {
                r.insert_vnode(id, w).unwrap();
            }
            (r, ids)
        };
        let mut seq_rng = rng.clone();
        let (mut seq, ids) = build(4, &mut seq_rng);
        let (mut fast, ids2) = build(4, &mut rng);
        assert_eq!(ids, ids2);
        let keys: Vec<Id> = (0..900).map(|_| rid(&mut rng)).collect();
        seq.assign_tasks(keys.clone());
        fast.assign_tasks(keys);
        for _tick in 0..5 {
            // Plan: every worker pops min(2, load) — capacity 2.
            let mut total = 0u64;
            fast.offs.clear();
            fast.pops.clear();
            fast.offs.resize(ids.len(), 0);
            fast.pops.resize(ids.len(), 0);
            for (w, &id) in ids.iter().enumerate() {
                let p = fast.load(id).min(2);
                fast.offs[w] = total;
                fast.pops[w] = p as u32;
                total += p;
            }
            fast.run_pops(total);
            // Sequential: same worker order, same per-worker counts.
            for &id in &ids {
                let p = seq.load(id).min(2);
                for _ in 0..p {
                    assert!(seq.pop_task(id));
                }
            }
            assert_eq!(seq.total_tasks(), fast.total_tasks());
            for &id in &ids {
                assert_eq!(seq.load(id), fast.load(id));
            }
        }
        assert_eq!(seq.vnode_loads(), fast.vnode_loads());
        seq.check_invariants().unwrap();
        fast.check_invariants().unwrap();
    }

    #[test]
    fn ring_store_selects_engine_by_shard_count() {
        assert!(matches!(RingStore::with_shards(1), RingStore::Solo(_)));
        assert!(matches!(RingStore::with_shards(4), RingStore::Sharded(_)));
        assert_eq!(RingStore::with_shards(4).shard_count(), 4);
        assert_eq!(RingStore::with_shards(1).shard_count(), 1);
    }

    #[test]
    fn last_vnode_rules_match_classic() {
        let mut r = ShardedRing::new(4);
        let id = Id::from(42u64);
        r.insert_vnode(id, 0).unwrap();
        r.assign_tasks(vec![Id::from(7u64)]);
        assert_eq!(r.remove_vnode(id), Err(RingError::LastVNode));
        assert!(r.pop_task(id));
        assert_eq!(r.remove_vnode(id), Ok((0, 0, id)));
        assert!(r.is_empty());
        assert_eq!(r.remove_vnode(id), Err(RingError::Unknown(id)));
    }
}
