//! The tick-driven simulation engine (§V "Simulation Setup").

use crate::config::{Heterogeneity, SimConfig, WorkMeasurement};
use crate::metrics::{RunResult, SimMessageStats, Snapshot, TickSeries};
use crate::ring::RingError;
use crate::shard::RingStore;
use crate::strategy::{
    invitation::{pick_helper, HelperCandidate},
    ActionError, Actions, ChurnOps, InviteOutcome, LocalView, OracleView, Strategy, StrategyParams,
    StrategyStack, Substrate,
};
use crate::trace::{EventLog, SimEvent};
use crate::worker::{Worker, WorkerId, WorkerState};
use autobal_id::{ring, Id};
use autobal_metrics::{
    names as metric_names, profile, LoadDist, MetricsHub, MetricsSink, RingSlot,
};
use autobal_stats::rng::{domains, substream, DetRng};
use autobal_telemetry::{MessageStatus, Trace, TraceSink};
use rand::Rng;

/// One simulated network executing a distributed computation.
///
/// Construct with [`Sim::new`] (random SHA-1-style placement, as in the
/// paper) or [`Sim::with_placement`] (explicit node ids and task keys,
/// used for the evenly-spaced ring of Figure 3 and deterministic tests),
/// then call [`Sim::run`] — or drive tick by tick with [`Sim::step`].
pub struct Sim {
    pub(crate) cfg: SimConfig,
    pub(crate) ring: RingStore,
    pub(crate) workers: Vec<Worker>,
    /// Worker ids currently parked in the churn waiting pool.
    pub(crate) waiting: Vec<WorkerId>,
    pub(crate) tick: u64,
    pub(crate) msgs: SimMessageStats,
    pub(crate) rng_churn: DetRng,
    pub(crate) rng_strategy: DetRng,
    active_count: usize,
    work_history: Vec<u64>,
    snapshots: Vec<Snapshot>,
    peak_vnodes: usize,
    series: TickSeries,
    /// Incremental mirror of the active workers' cached loads (see
    /// `autobal-metrics`): every load delta updates it in O(log L), so
    /// series and metrics sampling read Gini/percentiles without the
    /// per-sample copy-and-sort — bit-equal to the batch recompute
    /// because both feed the same exact integer sums through
    /// `autobal_stats::fairness`.
    dist: LoadDist,
    /// Whether the load dist is maintained (any sampling armed).
    dist_on: bool,
    /// Whether ticks may run with the worker load ledger detached:
    /// sharded engine, no churn, no strategy, no sampling or snapshots
    /// armed — nothing can observe per-worker loads mid-run, so the
    /// planned tick reads loads from the ring's dense columns instead
    /// of streaming the whole worker table (see `step`).
    ledger_detached_ok: bool,
    /// Per-worker tick capacities cached for the ring-side planner
    /// (static while the ledger-detached gate holds: no churn means no
    /// worker set changes, and strengths never change).
    caps: Vec<u32>,
    /// True while worker `load` caches lag the ring because detached
    /// ticks have run since the last [`Sim::sync_loads`].
    loads_desynced: bool,
    /// Streaming metrics recorder; free when `record_metrics` is off.
    pub(crate) hub: MetricsHub,
    pub(crate) events: EventLog,
    /// Span-structured flight recorder (see `autobal-telemetry`);
    /// disabled unless `SimConfig::record_trace` — every emission is a
    /// single-branch no-op then.
    pub(crate) trace: Trace,
    /// Strategy layers dispatched each tick/check (trait objects from
    /// [`crate::strategy::stack_for`]).
    strategies: StrategyStack,
}

impl Sim {
    /// Builds a network with `cfg.nodes` uniformly random node ids and
    /// `cfg.tasks` uniformly random task keys (statistically identical
    /// to the paper's "random numbers into SHA1" — see DESIGN.md).
    ///
    /// # Panics
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig, seed: u64) -> Sim {
        let mut placement = substream(seed, 0, domains::PLACEMENT);
        let mut tasks_rng = substream(seed, 0, domains::TASKS);
        let node_ids = unique_random_ids(cfg.nodes, &mut placement);
        let task_keys: Vec<Id> = (0..cfg.tasks).map(|_| Id::random(&mut tasks_rng)).collect();
        Sim::with_placement(cfg, seed, node_ids, task_keys)
    }

    /// Builds a network from explicit node ids and task keys.
    ///
    /// # Panics
    /// Panics on invalid config, duplicate node ids, or
    /// `node_ids.len() != cfg.nodes`.
    pub fn with_placement(cfg: SimConfig, seed: u64, node_ids: Vec<Id>, task_keys: Vec<Id>) -> Sim {
        cfg.validate().expect("invalid SimConfig");
        assert_eq!(
            node_ids.len(),
            cfg.nodes,
            "node_ids length must equal cfg.nodes"
        );
        assert_eq!(
            task_keys.len() as u64,
            cfg.tasks,
            "task_keys length must equal cfg.tasks"
        );

        let mut strength_rng = substream(seed, 0, domains::STRENGTH);
        let heterogeneous = cfg.heterogeneity == Heterogeneity::Heterogeneous;
        let draw_strength = |rng: &mut DetRng| -> u32 {
            if heterogeneous {
                rng.gen_range(1..=cfg.max_sybils.max(1))
            } else {
                1
            }
        };

        let mut ring = RingStore::with_shards(cfg.resolved_shards());
        let mut workers = Vec::with_capacity(cfg.nodes * 2);
        for id in node_ids {
            let s = draw_strength(&mut strength_rng);
            let widx = workers.len();
            workers.push(Worker::active(id, s));
            ring.insert_vnode(id, widx)
                .expect("duplicate node id in placement");
        }
        // Classic static virtual servers (baseline comparator): extra
        // ring positions per worker, placed before tasks land.
        if cfg.virtual_nodes_per_worker > 1 {
            let mut statics_rng = substream(seed, 0, domains::STATICS);
            for (widx, w) in workers.iter_mut().enumerate() {
                for _ in 1..cfg.virtual_nodes_per_worker {
                    let pos = loop {
                        let p = Id::random(&mut statics_rng);
                        if !ring.contains(p) {
                            break p;
                        }
                    };
                    ring.insert_vnode(pos, widx).expect("fresh position");
                    w.statics.push(pos);
                }
            }
        }
        ring.assign_tasks(task_keys);
        let loads = ring.loads_by_owner(workers.len());
        for (w, &l) in workers.iter_mut().zip(&loads) {
            w.load = l;
        }

        // The churn waiting pool "begins at the same initial size as the
        // network" (§IV-A); it only matters when churn is possible.
        let mut waiting = Vec::new();
        if cfg.churn_enabled() {
            for _ in 0..cfg.nodes {
                let s = draw_strength(&mut strength_rng);
                waiting.push(workers.len());
                workers.push(Worker::waiting(s));
            }
        }

        let active_count = cfg.nodes;
        let peak = ring.len();
        let cfg_record_events = cfg.record_events;
        let cfg_max_ticks = cfg.effective_max_ticks();
        let mut trace = Trace::new(cfg.record_trace);
        trace.run_start(0, "oracle", cfg.strategy.label(), seed);
        let strategies = crate::strategy::stack_for(&cfg);
        let dist_on = cfg.record_metrics || cfg.series_interval.is_some();
        let mut dist = LoadDist::new();
        if dist_on {
            for w in workers.iter().filter(|w| w.is_active()) {
                dist.insert(w.load);
            }
        }
        let hub = MetricsHub::new(cfg.record_metrics).with_ring(cfg.metrics_ring);
        let ledger_detached_ok = matches!(cfg.strategy, crate::config::StrategyKind::None)
            && !cfg.churn_enabled()
            && !dist_on
            && cfg.snapshot_ticks.is_empty()
            && matches!(ring, RingStore::Sharded(_));
        let caps: Vec<u32> = if ledger_detached_ok {
            let sb = cfg.work_measurement == WorkMeasurement::StrengthPerTick;
            workers
                .iter()
                .map(|w| w.capacity(sb).min(u32::MAX as u64) as u32)
                .collect()
        } else {
            Vec::new()
        };
        Sim {
            cfg,
            ring,
            workers,
            waiting,
            tick: 0,
            msgs: SimMessageStats::default(),
            rng_churn: substream(seed, 0, domains::CHURN),
            rng_strategy: substream(seed, 0, domains::STRATEGY),
            active_count,
            // Seed enough room for the common case (runs end well under
            // the tick cap); capped so absurd caps don't reserve memory.
            work_history: Vec::with_capacity((cfg_max_ticks.min(65_536)) as usize),
            snapshots: Vec::new(),
            peak_vnodes: peak,
            series: TickSeries::default(),
            dist,
            dist_on,
            ledger_detached_ok,
            caps,
            loads_desynced: false,
            hub,
            events: EventLog::new(cfg_record_events),
            trace,
            strategies,
        }
    }

    /// Current tick (0 before the first step).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Tasks still unconsumed.
    pub fn remaining_tasks(&self) -> u64 {
        self.ring.total_tasks()
    }

    /// Number of active (ring-participating) workers.
    pub fn active_workers(&self) -> usize {
        self.active_count
    }

    /// Read-only view of the ring storage engine.
    pub fn ring(&self) -> &RingStore {
        &self.ring
    }

    /// Read-only worker table.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Message counters so far.
    pub fn messages(&self) -> SimMessageStats {
        self.msgs
    }

    /// Per-active-worker loads (the quantity the paper's histograms bin).
    ///
    /// Always truthful: while the load ledger is detached (see `step`)
    /// the loads are read back from the ring instead of the stale
    /// worker caches.
    pub fn active_loads(&self) -> Vec<u64> {
        if self.loads_desynced {
            let loads = self.ring.loads_by_owner(self.workers.len());
            return self
                .workers
                .iter()
                .zip(&loads)
                .filter(|(w, _)| w.is_active())
                .map(|(_, &l)| l)
                .collect();
        }
        self.workers
            .iter()
            .filter(|w| w.is_active())
            .map(|w| w.load)
            .collect()
    }

    /// Re-derives every active worker's cached load from the ring.
    /// No-op unless detached ticks have run since the last sync.
    fn sync_loads(&mut self) {
        if !self.loads_desynced {
            return;
        }
        let loads = self.ring.loads_by_owner(self.workers.len());
        for (w, &l) in self.workers.iter_mut().zip(&loads) {
            if w.is_active() {
                w.load = l;
            }
        }
        self.loads_desynced = false;
    }

    /// Captures a snapshot of the current workload distribution.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_loads(self.tick, self.active_loads(), self.ring.len())
    }

    /// Advances the simulation one tick: strategy actions, then work.
    /// Returns the number of tasks consumed this tick.
    pub fn step(&mut self) -> u64 {
        self.tick += 1;

        // Dispatch through the strategy stack (taken out and restored
        // around the calls so the layers can borrow the simulator).
        let stack = std::mem::take(&mut self.strategies);
        // 1. Churn layers fire every tick — as the Churn strategy
        //    itself, or as background turbulence under another strategy
        //    (§VI-B-1).
        {
            let _p = profile::span("churn");
            stack.on_tick(self);
        }
        // 2. Sybil layers check every `check_interval` ticks.
        if self.tick.is_multiple_of(self.cfg.check_interval) {
            let _p = profile::span("checks");
            stack.on_check(self);
        }
        self.strategies = stack;
        let _p = profile::span("work");

        // 3. Every active worker consumes up to its capacity.
        let strength_based = self.cfg.work_measurement == WorkMeasurement::StrengthPerTick;
        let mut consumed = 0u64;
        // Sharded fast path: when every active worker controls exactly
        // its primary (no Sybils or static virtual servers, which is
        // `ring.len() == active_count`), each worker's pop count for
        // the tick is `min(capacity, load)` — known before any pop. A
        // sequential planning pass assigns each worker its offset into
        // the tick's pop-state stream (and settles load caches and the
        // load distribution in the classic per-worker order), then the
        // shards replay their slices of the stream independently —
        // bit-for-bit the pops the loop below would have made.
        let fast =
            matches!(self.ring, RingStore::Sharded(_)) && self.ring.len() == self.active_count;
        // Detached-ledger tick: with nothing armed that could observe
        // per-worker loads mid-run (see `ledger_detached_ok`), the
        // planning pass reads loads from the ring's dense queue-length
        // columns and skips the worker-table stream entirely — per-tick
        // memory traffic drops from the whole `Worker` array to the
        // shards' owner/length columns. Worker `load` caches go stale
        // and are re-derived from the ring by `sync_loads` before
        // anything can read them.
        let detached = fast && self.ledger_detached_ok;
        if self.loads_desynced && !detached {
            self.sync_loads();
        }
        if detached {
            if let RingStore::Sharded(sr) = &mut self.ring {
                consumed = sr.plan_pops_from_ring(&self.caps);
                sr.run_pops(consumed);
                self.loads_desynced = true;
            }
        } else if fast {
            if let RingStore::Sharded(sr) = &mut self.ring {
                sr.offs.clear();
                sr.pops.clear();
                sr.offs.resize(self.workers.len(), 0);
                sr.pops.resize(self.workers.len(), 0);
                for (idx, w) in self.workers.iter_mut().enumerate() {
                    if !w.is_active() {
                        continue;
                    }
                    let cap = w.capacity(strength_based);
                    let load = w.load;
                    if cap == 0 || load == 0 {
                        continue;
                    }
                    let p = cap.min(load);
                    sr.offs[idx] = consumed;
                    sr.pops[idx] = p as u32;
                    consumed += p;
                    if self.dist_on {
                        self.dist.update(load, load - p);
                    }
                    w.load = load - p;
                }
                sr.run_pops(consumed);
            }
        } else {
            let ring = &mut self.ring;
            let dist = &mut self.dist;
            let dist_on = self.dist_on;
            for w in self.workers.iter_mut() {
                // Load first: in the drain tail most workers sit at 0,
                // and waiting workers always do, so one field read
                // usually settles the whole iteration.
                let load = w.load;
                if load == 0 || !w.is_active() {
                    continue;
                }
                let mut cap = w.capacity(strength_based);
                if cap == 0 {
                    continue;
                }
                // Drain primary first, then Sybils. The vnode iterator
                // borrows the worker immutably while `pop_task` mutates
                // the (disjoint) ring, so no per-worker collection is
                // needed; the load cache is settled after the loop.
                let mut consumed_w = 0u64;
                'outer: for v in w.vnodes() {
                    while cap > 0 && ring.pop_task(v) {
                        cap -= 1;
                        consumed_w += 1;
                        if consumed_w == load {
                            break 'outer;
                        }
                    }
                    if cap == 0 {
                        break;
                    }
                }
                consumed += consumed_w;
                if dist_on {
                    dist.update(load, load - consumed_w);
                }
                w.load = load - consumed_w;
            }
        }
        self.work_history.push(consumed);
        self.hub.inc(metric_names::TICKS);
        self.hub.add(metric_names::TASKS_DONE, consumed);
        self.peak_vnodes = self.peak_vnodes.max(self.ring.len());
        // Strict builds re-verify the ring's structural invariants every
        // tick — a step that corrupts the ring fails at the tick that
        // caused it, not at the test that later trips over it.
        #[cfg(feature = "strict")]
        debug_assert!(
            self.ring.check_invariants().is_ok(),
            "ring invariants violated at tick {}",
            self.tick
        );
        consumed
    }

    /// Records one time-series sample at the current tick. Reads the
    /// incrementally-maintained load distribution — O(log L) instead of
    /// the historical collect-sort-sweep, with bit-equal Gini (see the
    /// `dist` field) — so sampling is allocation-free.
    fn sample_series(&mut self) {
        let _p = profile::span("sample");
        debug_assert!(self.dist_on, "series sampling requires the load dist");
        debug_assert_eq!(self.dist.len() as usize, self.active_count);
        self.series.ticks.push(self.tick);
        self.series.active_workers.push(self.active_count);
        self.series.vnodes.push(self.ring.len());
        self.series.remaining.push(self.ring.total_tasks());
        self.series.gini.push(self.dist.gini());
        self.series.idle.push(self.dist.zeros() as usize);
    }

    /// Records one metrics sample: ring-shape gauges, fairness gauges
    /// from the incremental distribution, and (when configured) a
    /// per-worker ring snapshot.
    fn sample_metrics(&mut self) {
        let _p = profile::span("sample");
        self.hub
            .set_gauge(metric_names::VNODES, self.ring.len() as u64);
        self.hub
            .set_gauge(metric_names::TASKS_REMAINING, self.ring.total_tasks());
        let ring_slots: Vec<RingSlot> = if self.hub.ring_enabled() {
            self.workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.is_active())
                .map(|(i, w)| RingSlot {
                    worker: i as u64,
                    pos: w.primary.to_hex(),
                    load: w.load,
                    sybils: w.sybils.len() as u64,
                    quarantined: 0,
                })
                .collect()
        } else {
            Vec::new()
        };
        let tick = self.tick;
        self.hub.sample_from_dist(tick, &self.dist, ring_slots);
    }

    /// Runs to completion (or the tick cap) and returns the result.
    pub fn run(mut self) -> RunResult {
        let snapshot_ticks: Vec<u64> = {
            let mut t = self.cfg.snapshot_ticks.clone();
            t.sort_unstable();
            t.dedup();
            t
        };
        if snapshot_ticks.contains(&0) {
            let s = self.snapshot();
            self.snapshots.push(s);
        }
        let series_every = self.cfg.series_interval;
        if series_every.is_some() {
            self.sample_series();
        }
        let metrics_every = self.hub.enabled().then(|| {
            self.cfg
                .metrics_interval
                .or(self.cfg.series_interval)
                .unwrap_or(1)
                .max(1)
        });
        if metrics_every.is_some() {
            self.sample_metrics();
        }
        let cap = self.cfg.effective_max_ticks();
        while self.ring.total_tasks() > 0 && self.tick < cap {
            self.step();
            if snapshot_ticks.binary_search(&self.tick).is_ok() {
                let s = self.snapshot();
                self.snapshots.push(s);
            }
            if let Some(k) = series_every {
                if self.tick.is_multiple_of(k) || self.ring.total_tasks() == 0 {
                    self.sample_series();
                }
            }
            if let Some(k) = metrics_every {
                if self.tick.is_multiple_of(k) || self.ring.total_tasks() == 0 {
                    self.sample_metrics();
                }
            }
        }
        self.sync_loads();
        let completed = self.ring.total_tasks() == 0;
        let ideal = self.cfg.ideal_ticks().max(1);
        self.trace.run_end(self.tick, completed);
        RunResult {
            ticks: self.tick,
            ideal_ticks: ideal,
            runtime_factor: self.tick as f64 / ideal as f64,
            completed,
            work_per_tick: self.work_history,
            snapshots: self.snapshots,
            messages: self.msgs,
            peak_vnodes: self.peak_vnodes,
            final_active_workers: self.active_count,
            series: self.series,
            events: self.events,
            trace: self.trace,
            metrics: self.hub.into_samples(),
        }
    }

    /// Records a load-balancing event into the event log and — when
    /// tracing — as a telemetry `Decision` attached to the current
    /// span. Every observable action funnels through here so the two
    /// records can never drift apart.
    pub(crate) fn emit_event(&mut self, event: SimEvent) {
        if self.trace.enabled() {
            let (name, worker, pos, value) = event.decision_fields();
            self.trace.decision(self.tick, name, worker, &pos, value);
        }
        if self.hub.enabled() {
            let (name, value) = event.metric_fields();
            self.hub.event(name, value);
        }
        self.events.push(event);
    }

    // ---- churn ----------------------------------------------------

    /// A worker leaves the network: every virtual node it controls is
    /// removed (tasks merge into successors), and it enters the waiting
    /// pool.
    pub(crate) fn worker_leave(&mut self, idx: WorkerId) {
        debug_assert!(self.workers[idx].is_active());
        let sybils = std::mem::take(&mut self.workers[idx].sybils);
        for s in sybils {
            let _ = self.remove_vnode_tracked(s);
        }
        let statics = std::mem::take(&mut self.workers[idx].statics);
        for s in statics {
            let _ = self.remove_vnode_tracked(s);
        }
        let primary = self.workers[idx].primary;
        let _ = self.remove_vnode_tracked(primary);
        if self.dist_on {
            self.dist.remove(self.workers[idx].load);
        }
        self.workers[idx].state = WorkerState::Waiting;
        debug_assert_eq!(self.workers[idx].load, 0);
        self.workers[idx].load = 0;
        self.active_count -= 1;
        self.waiting.push(idx);
        self.msgs.churn_leaves += 1;
        let tick = self.tick;
        self.emit_event(SimEvent::WorkerLeft { tick, worker: idx });
    }

    /// A waiting worker joins at a fresh random position, immediately
    /// acquiring the tasks of its new arc ("a node joining … can be a
    /// potential boon … immediately acquire work", §IV-A).
    pub(crate) fn worker_join(&mut self, idx: WorkerId) {
        debug_assert!(!self.workers[idx].is_active());
        self.workers[idx].state = WorkerState::Active;
        self.workers[idx].load = 0;
        if self.dist_on {
            self.dist.insert(0);
        }
        let pos = loop {
            let p = Id::random(&mut self.rng_churn);
            if !self.ring.contains(p) {
                break p;
            }
        };
        self.insert_vnode_tracked(pos, idx).expect("fresh position");
        self.workers[idx].primary = pos;
        // A rejoining worker re-creates its static virtual servers.
        for _ in 1..self.cfg.virtual_nodes_per_worker {
            let pos = loop {
                let p = Id::random(&mut self.rng_churn);
                if !self.ring.contains(p) {
                    break p;
                }
            };
            self.insert_vnode_tracked(pos, idx).expect("fresh position");
            self.workers[idx].statics.push(pos);
        }
        self.active_count += 1;
        self.msgs.churn_joins += 1;
        let tick = self.tick;
        let pos = self.workers[idx].primary;
        let acquired = self.workers[idx].load;
        self.emit_event(SimEvent::WorkerJoined {
            tick,
            worker: idx,
            pos,
            acquired,
        });
    }

    // ---- tracked ring mutations ------------------------------------

    /// Inserts a virtual node and keeps worker load caches consistent.
    /// Returns the number of tasks acquired. The caller must add the
    /// acquired count to the owner's cache *if the owner already has
    /// other vnodes* — for simplicity this helper credits the owner
    /// directly and debits the victim.
    pub(crate) fn insert_vnode_tracked(
        &mut self,
        pos: Id,
        owner: WorkerId,
    ) -> Result<u64, RingError> {
        let acquired = self.ring.insert_vnode(pos, owner)?;
        if acquired > 0 {
            let victim_vnode = self.ring.successor_of(pos).expect("successor after split");
            let victim_owner = self.ring.vnode_owner(victim_vnode).expect("vnode");
            // Mirror both load deltas into the incremental distribution
            // (a self-transfer is a net no-op there).
            if self.dist_on && victim_owner != owner {
                let v = self.workers[victim_owner].load;
                let o = self.workers[owner].load;
                self.dist.update(v, v - acquired);
                self.dist.update(o, o + acquired);
            }
            self.workers[victim_owner].load -= acquired;
            self.workers[owner].load += acquired;
        }
        Ok(acquired)
    }

    /// Removes a virtual node, updating both owners' load caches.
    pub(crate) fn remove_vnode_tracked(&mut self, pos: Id) -> Result<u64, RingError> {
        let (owner, moved, succ) = self.ring.remove_vnode(pos)?;
        if moved > 0 {
            let succ_owner = self.ring.vnode_owner(succ).expect("successor");
            if self.dist_on && succ_owner != owner {
                let o = self.workers[owner].load;
                let s = self.workers[succ_owner].load;
                self.dist.update(o, o - moved);
                self.dist.update(s, s + moved);
            }
            self.workers[owner].load -= moved;
            self.workers[succ_owner].load += moved;
        }
        Ok(moved)
    }

    /// Creates a Sybil for `owner` at `pos`. Returns acquired task count,
    /// or `None` if the position is occupied.
    pub(crate) fn create_sybil(&mut self, owner: WorkerId, pos: Id) -> Option<u64> {
        match self.insert_vnode_tracked(pos, owner) {
            Ok(acquired) => {
                self.workers[owner].sybils.push(pos);
                self.msgs.sybils_created += 1;
                let tick = self.tick;
                self.emit_event(SimEvent::SybilCreated {
                    tick,
                    worker: owner,
                    pos,
                    acquired,
                });
                Some(acquired)
            }
            Err(_) => None,
        }
    }

    /// All of `owner`'s Sybils quit the network (§IV-B: "If a node has at
    /// least one Sybil, but no work, it has its Sybils quit").
    pub(crate) fn retire_sybils(&mut self, owner: WorkerId) {
        let sybils = std::mem::take(&mut self.workers[owner].sybils);
        let n = sybils.len() as u64;
        for s in sybils {
            let _ = self.remove_vnode_tracked(s);
        }
        self.msgs.sybils_retired += n;
        if n > 0 {
            let tick = self.tick;
            self.emit_event(SimEvent::SybilsRetired {
                tick,
                worker: owner,
                count: n as u32,
            });
        }
    }

    /// Whether `idx` is eligible to create a new Sybil right now:
    /// active, at/below the Sybil threshold, with budget to spare.
    fn worker_can_spawn_sybil(&self, idx: WorkerId) -> bool {
        let het = self.cfg.heterogeneity == Heterogeneity::Heterogeneous;
        let w = &self.workers[idx];
        w.is_active()
            && w.load <= self.cfg.sybil_threshold
            && w.sybil_slots_left(self.cfg.max_sybils, het) > 0
    }

    /// Where to plant a Sybil that targets `victim`'s arc: the ID-space
    /// midpoint of the arc by default, or — under the §VII chosen-ID
    /// extension — the victim's remaining-task median, which guarantees
    /// the Sybil acquires exactly half its work.
    fn split_position(&self, victim: Id) -> Option<Id> {
        if self.cfg.chosen_ids {
            if let Some(m) = self.ring.median_task_key(victim) {
                return Some(m);
            }
        }
        let pred = self.ring.predecessor_of(victim)?;
        Some(ring::midpoint(pred, victim))
    }

    /// The per-node strategy context for `worker` (oracle-ring flavor).
    pub(crate) fn node_ctx(&mut self, worker: WorkerId) -> SimNodeCtx<'_> {
        SimNodeCtx { sim: self, worker }
    }

    /// Debug helper: verify load caches against the ring (O(vnodes)).
    #[cfg(test)]
    pub(crate) fn assert_load_caches(&self) {
        let truth = self.ring.loads_by_owner(self.workers.len());
        for (i, w) in self.workers.iter().enumerate() {
            assert_eq!(w.load, truth[i], "load cache of worker {i}");
        }
        if self.dist_on {
            assert_eq!(self.dist.len() as usize, self.active_count, "dist size");
            let total: u128 = self
                .workers
                .iter()
                .filter(|w| w.is_active())
                .map(|w| w.load as u128)
                .sum();
            assert_eq!(self.dist.total(), total, "dist total");
        }
    }
}

// ---- strategy dispatch surfaces -----------------------------------

impl Substrate for Sim {
    fn decision_order(&self) -> Vec<WorkerId> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].is_active())
            .collect()
    }

    fn check_worker(&mut self, w: WorkerId, strategy: &dyn Strategy) {
        // One telemetry span per strategy decision, stamped with the
        // tick; the messages and outcomes the decision causes attach
        // to it. Free (one branch, ROOT_SPAN back) when tracing is off.
        let span = self.trace.open_span(self.tick, strategy.name(), w as u64);
        let mut ctx = self.node_ctx(w);
        strategy.check_node(&mut ctx);
        let tick = self.tick;
        self.trace.close_span(tick, span);
    }

    fn check_omniscient(&mut self, strategy: &dyn Strategy) -> bool {
        strategy.check_global(self);
        true
    }

    fn churn_ops(&mut self) -> &mut dyn ChurnOps {
        self
    }
}

impl ChurnOps for Sim {
    fn leave_candidates(&self) -> Vec<WorkerId> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].is_active())
            .collect()
    }

    fn active_count(&self) -> usize {
        self.active_count
    }

    fn flip(&mut self, p: f64) -> bool {
        self.rng_churn.gen::<f64>() <= p
    }

    fn depart(&mut self, w: WorkerId) {
        self.worker_leave(w);
    }

    fn take_waiting(&mut self) -> Vec<WorkerId> {
        std::mem::take(&mut self.waiting)
    }

    fn requeue_waiting(&mut self, w: WorkerId) {
        self.waiting.push(w);
    }

    fn rejoin(&mut self, w: WorkerId) {
        self.worker_join(w);
    }
}

impl OracleView for Sim {
    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn is_worker_active(&self, w: WorkerId) -> bool {
        self.workers[w].is_active()
    }

    fn worker_load(&self, w: WorkerId) -> u64 {
        self.workers[w].load
    }

    fn worker_can_spawn(&self, w: WorkerId) -> bool {
        self.worker_can_spawn_sybil(w)
    }

    fn vnode_loads(&self) -> Vec<(Id, u64)> {
        self.ring.vnode_loads()
    }

    fn vnode_load(&self, v: Id) -> u64 {
        self.ring.load(v)
    }

    fn median_task_key(&self, v: Id) -> Option<Id> {
        self.ring.median_task_key(v)
    }

    fn spawn_sybil_for(&mut self, w: WorkerId, pos: Id) -> Option<u64> {
        self.create_sybil(w, pos)
    }
}

/// The [`LocalView`]/[`Actions`] pair over the oracle-ring simulator —
/// one worker's honest window onto [`Sim`] state. Everything a strategy
/// can reach through this context is either the worker's own state, its
/// Chord neighbor lists, or a priced message (`query_load`, `invite`).
pub(crate) struct SimNodeCtx<'a> {
    sim: &'a mut Sim,
    worker: WorkerId,
}

impl LocalView for SimNodeCtx<'_> {
    fn params(&self) -> StrategyParams {
        let cfg = &self.sim.cfg;
        StrategyParams {
            sybil_threshold: cfg.sybil_threshold,
            overload_threshold: cfg.overload_threshold(),
            num_neighbors: cfg.num_successors,
            chosen_ids: cfg.chosen_ids,
            strength_aware_invitation: cfg.strength_aware_invitation,
        }
    }

    fn load(&self) -> u64 {
        self.sim.workers[self.worker].load
    }

    fn sybil_count(&self) -> usize {
        self.sim.workers[self.worker].sybils.len()
    }

    fn sybil_slots_left(&self) -> u32 {
        let het = self.sim.cfg.heterogeneity == Heterogeneity::Heterogeneous;
        self.sim.workers[self.worker].sybil_slots_left(self.sim.cfg.max_sybils, het)
    }

    fn primary(&self) -> Id {
        self.sim.workers[self.worker].primary
    }

    fn own_vnode_loads(&self) -> Vec<(Id, u64)> {
        self.sim.workers[self.worker]
            .vnodes()
            .map(|v| (v, self.sim.ring.load(v)))
            .collect()
    }

    fn successor_list(&self) -> Vec<Id> {
        let primary = self.sim.workers[self.worker].primary;
        self.sim
            .ring
            .successors(primary, self.sim.cfg.num_successors)
    }
}

impl Actions for SimNodeCtx<'_> {
    // The oracle ring's transport is infallible: queries always answer
    // and joins only fail on address collisions, so the only error this
    // context ever returns is `ActionError::Occupied`. That keeps the
    // oracle substrate's behavior bit-for-bit identical to the
    // pre-fault-plane code under every strategy.
    fn query_load(&mut self, neighbor: Id) -> Result<u64, ActionError> {
        self.sim.msgs.load_queries += 1;
        let load = self.sim.ring.load(neighbor);
        self.sim
            .trace
            .message(self.sim.tick, "load_query", MessageStatus::Delivered, 0);
        self.sim.hub.message(metric_names::MSG_DELIVERED, 0);
        let tick = self.sim.tick;
        let worker = self.worker;
        self.sim.emit_event(SimEvent::LoadQueried {
            tick,
            worker,
            neighbor,
            load,
        });
        Ok(load)
    }

    fn random_id(&mut self) -> Id {
        Id::random(&mut self.sim.rng_strategy)
    }

    fn spawn_sybil(&mut self, pos: Id) -> Result<u64, ActionError> {
        self.sim
            .create_sybil(self.worker, pos)
            .ok_or(ActionError::Occupied)
    }

    fn retire_sybils(&mut self) {
        self.sim.retire_sybils(self.worker);
    }

    fn split_target(&mut self, victim: Id) -> Option<Id> {
        self.sim.split_position(victim)
    }

    fn note_gap_split(&mut self, pos: Id) {
        let tick = self.sim.tick;
        let worker = self.worker;
        self.sim
            .emit_event(SimEvent::NeighborGapSplit { tick, worker, pos });
    }

    fn invite(&mut self, hot: Id) -> InviteOutcome {
        let sim = &mut *self.sim;
        let inviter = self.worker;
        let preds = sim.ring.predecessors(hot, sim.cfg.num_successors);
        if preds.is_empty() {
            return InviteOutcome::NoNeighbors;
        }
        sim.msgs.invitations_sent += 1;
        let tick = sim.tick;
        sim.trace
            .message(tick, "invitation", MessageStatus::Delivered, 0);
        sim.hub.message(metric_names::MSG_DELIVERED, 0);
        sim.emit_event(SimEvent::InvitationSent {
            tick,
            worker: inviter,
        });
        // Offer the eligible predecessors in list order; an unmapped
        // vnode (impossible on a consistent ring) voids the whole round.
        let candidates: Option<Vec<HelperCandidate>> = preds
            .iter()
            .map(|&p| sim.ring.vnode_owner(p))
            .collect::<Option<Vec<WorkerId>>>()
            .map(|owners| {
                owners
                    .into_iter()
                    .filter(|&o| o != inviter && sim.worker_can_spawn_sybil(o))
                    .map(|o| HelperCandidate {
                        worker: o,
                        strength: sim.workers[o].strength,
                        load: sim.workers[o].load,
                    })
                    .collect()
            });
        let helper = candidates
            .as_deref()
            .and_then(|c| pick_helper(c, sim.cfg.strength_aware_invitation));
        match helper {
            Some(helper) => {
                let pos = sim.split_position(hot).expect("ring non-trivial");
                match sim.create_sybil(helper, pos) {
                    Some(acquired) => {
                        sim.emit_event(SimEvent::InvitationHonored {
                            tick,
                            worker: inviter,
                            helper,
                            acquired,
                        });
                        InviteOutcome::Helped { acquired }
                    }
                    None => {
                        sim.msgs.invitations_refused += 1;
                        sim.emit_event(SimEvent::InvitationRefused {
                            tick,
                            worker: inviter,
                        });
                        InviteOutcome::Refused
                    }
                }
            }
            None => {
                sim.msgs.invitations_refused += 1;
                sim.emit_event(SimEvent::InvitationRefused {
                    tick,
                    worker: inviter,
                });
                InviteOutcome::Refused
            }
        }
    }
}

/// Draws `n` distinct random ids.
fn unique_random_ids(n: usize, rng: &mut DetRng) -> Vec<Id> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = Id::random(rng);
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;

    fn small_cfg(strategy: StrategyKind) -> SimConfig {
        SimConfig {
            nodes: 50,
            tasks: 2_000,
            strategy,
            ..SimConfig::default()
        }
    }

    #[test]
    fn baseline_conserves_and_completes() {
        let sim = Sim::new(small_cfg(StrategyKind::None), 1);
        assert_eq!(sim.remaining_tasks(), 2_000);
        let res = sim.run();
        assert!(res.completed);
        assert_eq!(res.work_per_tick.iter().sum::<u64>(), 2_000);
        // The run takes exactly max-initial-load ticks.
        assert!(res.ticks >= res.ideal_ticks);
    }

    #[test]
    fn baseline_runtime_equals_max_initial_load() {
        let sim = Sim::new(small_cfg(StrategyKind::None), 2);
        let max_load = sim.active_loads().into_iter().max().unwrap();
        let res = sim.run();
        assert_eq!(res.ticks, max_load);
    }

    #[test]
    fn work_per_tick_never_exceeds_capacity() {
        let sim = Sim::new(small_cfg(StrategyKind::None), 3);
        let busy_at_start = sim.active_loads().iter().filter(|&&l| l > 0).count() as u64;
        let res = sim.run();
        assert!(res.work_per_tick.iter().all(|&w| w <= 50));
        // First tick: every node that has work consumes exactly one task
        // (a few arcs may start empty — exponential spacings).
        assert_eq!(res.work_per_tick[0], busy_at_start);
    }

    #[test]
    fn snapshots_are_captured_at_requested_ticks() {
        let mut cfg = small_cfg(StrategyKind::None);
        cfg.snapshot_ticks = vec![0, 5, 10];
        let res = Sim::new(cfg, 4).run();
        assert_eq!(res.snapshots.len(), 3);
        assert_eq!(res.snapshots[0].tick, 0);
        assert_eq!(res.snapshots[1].tick, 5);
        assert_eq!(res.snapshots[2].tick, 10);
        assert_eq!(res.snapshots[0].loads.len(), 50);
        assert_eq!(res.snapshots[0].loads.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn churn_keeps_tasks_conserved() {
        let mut cfg = small_cfg(StrategyKind::Churn);
        cfg.churn_rate = 0.05;
        let mut sim = Sim::new(cfg, 5);
        for _ in 0..20 {
            sim.step();
            sim.ring.check_invariants().unwrap();
            sim.assert_load_caches();
        }
        let consumed: u64 = sim.work_history.iter().sum();
        assert_eq!(sim.remaining_tasks() + consumed, 2_000);
        assert!(sim.messages().churn_leaves > 0 || sim.messages().churn_joins > 0);
    }

    #[test]
    fn churn_speeds_up_the_run() {
        // The paper's central hypothesis: churn load-balances. Compare
        // factors on the same placement seed.
        let base = Sim::new(small_cfg(StrategyKind::Churn), 6).run();
        let mut cfg = small_cfg(StrategyKind::Churn);
        cfg.churn_rate = 0.02;
        let churned = Sim::new(cfg, 6).run();
        assert!(churned.completed);
        assert!(
            churned.runtime_factor < base.runtime_factor,
            "churned {} vs base {}",
            churned.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn churn_never_empties_network() {
        let mut cfg = small_cfg(StrategyKind::Churn);
        cfg.nodes = 2;
        cfg.tasks = 100;
        cfg.churn_rate = 0.9;
        let res = Sim::new(cfg, 7).run();
        assert!(res.completed);
        assert!(res.final_active_workers >= 1);
    }

    #[test]
    fn with_placement_is_deterministic() {
        let ids: Vec<Id> = (1..=10u64).map(|v| Id::from(v * 1000)).collect();
        let keys: Vec<Id> = (0..200u64).map(|v| Id::from(v * 53 + 7)).collect();
        let mut cfg = small_cfg(StrategyKind::None);
        cfg.nodes = 10;
        cfg.tasks = 200;
        let a = Sim::with_placement(cfg.clone(), 8, ids.clone(), keys.clone()).run();
        let b = Sim::with_placement(cfg, 8, ids, keys).run();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.work_per_tick, b.work_per_tick);
    }

    #[test]
    #[should_panic(expected = "node_ids length")]
    fn with_placement_checks_node_count() {
        let cfg = small_cfg(StrategyKind::None);
        let _ = Sim::with_placement(cfg, 0, vec![Id::from(1u64)], vec![]);
    }

    #[test]
    fn strength_based_consumption_uses_strength() {
        let mut cfg = small_cfg(StrategyKind::None);
        cfg.heterogeneity = Heterogeneity::Heterogeneous;
        cfg.work_measurement = WorkMeasurement::StrengthPerTick;
        cfg.max_sybils = 5;
        let sim = Sim::new(cfg, 9);
        let total_strength: u64 = sim
            .workers()
            .iter()
            .filter(|w| w.is_active())
            .map(|w| w.strength as u64)
            .sum();
        assert!(total_strength > 50, "het strengths should exceed n");
        let res = sim.run();
        // First tick consumes ≤ total strength but ≥ active workers with work.
        assert!(res.work_per_tick[0] <= total_strength);
        assert!(res.completed);
    }

    #[test]
    fn same_seed_same_result_full_run() {
        let mut cfg = small_cfg(StrategyKind::RandomInjection);
        cfg.churn_rate = 0.01;
        let a = Sim::new(cfg.clone(), 10).run();
        let b = Sim::new(cfg, 10).run();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn tick_counter_advances() {
        let mut sim = Sim::new(small_cfg(StrategyKind::None), 11);
        assert_eq!(sim.tick(), 0);
        sim.step();
        assert_eq!(sim.tick(), 1);
    }
}

#[cfg(test)]
mod series_tests {
    use super::*;
    use crate::config::StrategyKind;

    #[test]
    fn series_disabled_by_default() {
        let cfg = SimConfig {
            nodes: 20,
            tasks: 500,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 1).run();
        assert!(res.series.is_empty());
    }

    #[test]
    fn series_samples_at_interval_and_end() {
        let cfg = SimConfig {
            nodes: 20,
            tasks: 500,
            series_interval: Some(10),
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 2).run();
        let s = &res.series;
        assert!(!s.is_empty());
        assert_eq!(s.ticks[0], 0);
        assert_eq!(*s.ticks.last().unwrap(), res.ticks);
        // All columns aligned.
        assert_eq!(s.ticks.len(), s.gini.len());
        assert_eq!(s.ticks.len(), s.vnodes.len());
        assert_eq!(s.ticks.len(), s.remaining.len());
        assert_eq!(s.ticks.len(), s.active_workers.len());
        assert_eq!(s.ticks.len(), s.idle.len());
        // Remaining tasks are non-increasing and end at zero.
        assert!(s.remaining.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*s.remaining.last().unwrap(), 0);
    }

    #[test]
    fn series_gini_lower_with_random_injection_than_none() {
        let mk = |strategy| SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy,
            series_interval: Some(5),
            ..SimConfig::default()
        };
        // Same placement seed, different strategies.
        let none = Sim::new(mk(StrategyKind::None), 3).run();
        let random = Sim::new(mk(StrategyKind::RandomInjection), 3).run();
        // Compare at sample index 8 (tick 40), well into the run but
        // long before either finishes.
        let idx = 8;
        assert!(none.series.len() > idx && random.series.len() > idx);
        assert_eq!(none.series.ticks[idx], random.series.ticks[idx]);
        assert!(
            random.series.gini[idx] < none.series.gini[idx],
            "random gini {} vs none {}",
            random.series.gini[idx],
            none.series.gini[idx]
        );
        // Sanity: gini always within [0, 1).
        for &g in none.series.gini.iter().chain(random.series.gini.iter()) {
            assert!((0.0..1.0).contains(&g));
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::config::StrategyKind;
    use crate::trace::SimEvent;

    #[test]
    fn events_disabled_by_default() {
        let cfg = SimConfig {
            nodes: 30,
            tasks: 1_000,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 1).run();
        assert!(res.events.is_empty());
        assert!(res.messages.sybils_created > 0, "actions happened anyway");
    }

    #[test]
    fn event_log_mirrors_message_counters() {
        let cfg = SimConfig {
            nodes: 50,
            tasks: 2_000,
            strategy: StrategyKind::RandomInjection,
            record_events: true,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 2).run();
        let created = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::SybilCreated { .. }))
            .count() as u64;
        assert_eq!(created, res.messages.sybils_created);
        let retired: u64 = res
            .events
            .events()
            .iter()
            .map(|e| match e {
                SimEvent::SybilsRetired { count, .. } => *count as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(retired, res.messages.sybils_retired);
        // Ticks are monotone.
        let ticks: Vec<u64> = res.events.events().iter().map(|e| e.tick()).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn churn_events_track_leaves_and_joins() {
        let cfg = SimConfig {
            nodes: 40,
            tasks: 2_000,
            strategy: StrategyKind::Churn,
            churn_rate: 0.02,
            record_events: true,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 3).run();
        let left = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::WorkerLeft { .. }))
            .count() as u64;
        let joined = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::WorkerJoined { .. }))
            .count() as u64;
        assert_eq!(left, res.messages.churn_leaves);
        assert_eq!(joined, res.messages.churn_joins);
    }

    #[test]
    fn invitation_events_recorded() {
        let cfg = SimConfig {
            nodes: 60,
            tasks: 6_000,
            strategy: StrategyKind::Invitation,
            record_events: true,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 4).run();
        let sent = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::InvitationSent { .. }))
            .count() as u64;
        assert_eq!(sent, res.messages.invitations_sent);
    }

    #[test]
    fn load_queried_events_mirror_query_counter() {
        let cfg = SimConfig {
            nodes: 50,
            tasks: 2_000,
            strategy: StrategyKind::SmartNeighbor,
            record_events: true,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 5).run();
        let queried = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::LoadQueried { .. }))
            .count() as u64;
        assert!(queried > 0, "smart neighbor must probe");
        assert_eq!(queried, res.messages.load_queries);
    }

    #[test]
    fn plain_neighbor_records_gap_splits() {
        let cfg = SimConfig {
            nodes: 50,
            tasks: 2_000,
            strategy: StrategyKind::NeighborInjection,
            record_events: true,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 6).run();
        // Every plain-neighbor Sybil came from a gap estimate; splits
        // can outnumber creations because an occupied midpoint skips
        // the spawn after the split was noted.
        let splits = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::NeighborGapSplit { .. }))
            .count() as u64;
        assert!(splits >= res.messages.sybils_created);
        assert!(splits > 0);
    }

    #[test]
    fn invitation_honored_events_carry_the_helper() {
        let cfg = SimConfig {
            nodes: 60,
            tasks: 6_000,
            strategy: StrategyKind::Invitation,
            record_events: true,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 4).run();
        let honored: Vec<_> = res
            .events
            .events()
            .iter()
            .filter_map(|e| match e {
                SimEvent::InvitationHonored {
                    worker,
                    helper,
                    acquired,
                    ..
                } => Some((*worker, *helper, *acquired)),
                _ => None,
            })
            .collect();
        assert!(!honored.is_empty(), "some invitation must be honored");
        for (worker, helper, _) in &honored {
            assert_ne!(worker, helper, "a worker cannot honor itself");
        }
        // sent = honored + refused (every sent invitation resolves).
        assert_eq!(
            res.messages.invitations_sent,
            honored.len() as u64 + res.messages.invitations_refused
        );
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::config::StrategyKind;
    use autobal_telemetry::{summarize, to_jsonl, TraceBody};

    fn cfg(strategy: StrategyKind) -> SimConfig {
        SimConfig {
            nodes: 40,
            tasks: 1_500,
            strategy,
            record_trace: true,
            ..SimConfig::default()
        }
    }

    #[test]
    fn trace_disabled_by_default_and_costs_nothing() {
        let res = Sim::new(
            SimConfig {
                nodes: 40,
                tasks: 1_500,
                strategy: StrategyKind::RandomInjection,
                ..SimConfig::default()
            },
            1,
        )
        .run();
        assert!(res.trace.is_empty());
        assert!(!res.trace.is_enabled());
    }

    #[test]
    fn trace_is_framed_and_span_structured() {
        let res = Sim::new(cfg(StrategyKind::SmartNeighbor), 2).run();
        let records = res.trace.records();
        assert!(matches!(records[0].body, TraceBody::RunStart { .. }));
        assert!(matches!(
            records[records.len() - 1].body,
            TraceBody::RunEnd { .. }
        ));
        let s = summarize(records);
        assert_eq!(s.substrate, "oracle");
        assert_eq!(s.strategy, "smart");
        assert!(s.spans > 0, "every check opens a span");
        assert_eq!(s.messages.total(), res.messages.load_queries);
        assert_eq!(s.messages.delivered, res.messages.load_queries);
        // Virtual-time stamps are ticks: monotone, bounded by the run.
        let times: Vec<u64> = records.iter().map(|r| r.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t <= res.ticks));
    }

    #[test]
    fn same_seed_traces_are_byte_identical() {
        let a = Sim::new(cfg(StrategyKind::Invitation), 3).run();
        let b = Sim::new(cfg(StrategyKind::Invitation), 3).run();
        assert_eq!(to_jsonl(a.trace.records()), to_jsonl(b.trace.records()));
    }

    #[test]
    fn decisions_match_the_event_log_one_to_one() {
        let mut c = cfg(StrategyKind::RandomInjection);
        c.record_events = true;
        let res = Sim::new(c, 4).run();
        let decisions: Vec<_> = res
            .trace
            .records()
            .iter()
            .filter_map(|r| match &r.body {
                TraceBody::Decision { name, worker, .. } => Some((name.clone(), *worker)),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), res.events.len());
        for (ev, (name, worker)) in res.events.events().iter().zip(&decisions) {
            let (n, w, _, _) = ev.decision_fields();
            assert_eq!((n, w), (name.as_str(), *worker));
        }
    }
}
