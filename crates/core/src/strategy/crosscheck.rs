//! Cross-checking probe defense against Byzantine load reporters.
//!
//! The paper's Sybil strategies steer entirely by the loads neighbors
//! *report*, so one dishonest responder can attract or repel the whole
//! balancing machinery. [`CrossCheck`] wraps any per-node strategy and
//! hardens its `query_load` calls: each probe about a target is asked
//! `k` extra times through distinct relay neighbors
//! ([`Actions::query_load_via`], each billed as a real `LoadQuery`),
//! the answers are combined by a robust **median** aggregator, and
//! reporters whose answers repeatedly deviate from the consensus
//! accumulate suspicion until they are **quarantined** — from then on
//! the wrapped strategy sees them as [`ActionError::Unreachable`] and
//! routes work elsewhere.
//!
//! The wrapper only touches the [`LocalView`]/[`Actions`] surface (no
//! substrate internals, enforced by autobal-lint rule S) and keeps its
//! suspicion table behind a `Mutex` because [`Strategy`] methods take
//! `&self`. It draws no RNG: relay selection walks the successor list
//! in order, so identical runs cross-check identically on every
//! substrate and thread count.

use super::{
    ActionError, Actions, ChurnOps, LocalView, NodeContext, Strategy, StrategyParams, StrategyScope,
};
use autobal_id::Id;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Knobs for the cross-checking defense. The default is disabled
/// (`k == 0`): [`wrap_if_enabled`] returns the inner strategy untouched
/// and not a single extra message is sent.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrossCheckConfig {
    /// Redundant probes per load query, routed via distinct relay
    /// neighbors. `0` disables the wrapper entirely.
    #[cfg_attr(feature = "serde", serde(default))]
    pub k: usize,
    /// A report deviating from the median estimate by more than
    /// `tolerance * max(estimate, 1)` counts as a conflict.
    #[cfg_attr(feature = "serde", serde(default = "default_tolerance"))]
    pub tolerance: f64,
    /// Conflicts a reporter may accumulate before quarantine.
    #[cfg_attr(feature = "serde", serde(default = "default_quarantine_after"))]
    pub quarantine_after: u32,
}

fn default_tolerance() -> f64 {
    0.5
}

fn default_quarantine_after() -> u32 {
    3
}

impl Default for CrossCheckConfig {
    fn default() -> CrossCheckConfig {
        CrossCheckConfig {
            k: 0,
            tolerance: 0.5,
            quarantine_after: 3,
        }
    }
}

impl CrossCheckConfig {
    /// A config probing through `k` relays with the default thresholds.
    pub fn with_budget(k: usize) -> CrossCheckConfig {
        CrossCheckConfig {
            k,
            ..CrossCheckConfig::default()
        }
    }

    /// True when the wrapper would change anything at all.
    pub fn is_active(&self) -> bool {
        self.k > 0
    }

    /// Checks bounds; `Err` carries a human-readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=f64::MAX).contains(&self.tolerance) || self.tolerance.is_nan() {
            return Err(format!(
                "tolerance must be non-negative, got {}",
                self.tolerance
            ));
        }
        if self.quarantine_after == 0 {
            return Err("quarantine_after must be at least 1".into());
        }
        Ok(())
    }
}

/// Per-run defense state shared across all checked nodes: every worker
/// contributes observations about the same reporters, so suspicion
/// accumulates network-wide (gossip-free collective memory — the
/// simplification is documented in DESIGN.md).
#[derive(Debug, Default)]
struct DefenseState {
    suspicion: BTreeMap<Id, u32>,
    quarantined: BTreeSet<Id>,
}

/// A [`Strategy`] decorator adding cross-checked load queries and
/// reporter quarantine around any inner per-node strategy. Transparent
/// to telemetry: `name()` delegates, so decision spans keep the inner
/// strategy's label and parity pins hold when the wrapper is inert.
pub struct CrossCheck {
    inner: Box<dyn Strategy>,
    cfg: CrossCheckConfig,
    state: Mutex<DefenseState>,
}

impl CrossCheck {
    pub fn new(inner: Box<dyn Strategy>, cfg: CrossCheckConfig) -> CrossCheck {
        CrossCheck {
            inner,
            cfg,
            state: Mutex::new(DefenseState::default()),
        }
    }
}

/// Wraps `inner` in a [`CrossCheck`] when the config asks for probes;
/// hands it back untouched (zero overhead, bit-for-bit) when not.
pub fn wrap_if_enabled(inner: Box<dyn Strategy>, cfg: &CrossCheckConfig) -> Box<dyn Strategy> {
    if cfg.is_active() {
        Box::new(CrossCheck::new(inner, *cfg))
    } else {
        inner
    }
}

impl Strategy for CrossCheck {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn scope(&self) -> StrategyScope {
        self.inner.scope()
    }

    fn on_tick(&self, ops: &mut dyn ChurnOps) {
        self.inner.on_tick(ops);
    }

    fn check_node(&self, ctx: &mut dyn NodeContext) {
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut checked = CheckedCtx {
            inner: ctx,
            cfg: &self.cfg,
            state: &mut guard,
        };
        self.inner.check_node(&mut checked);
    }
}

/// The hardened context handed to the inner strategy: every
/// `query_load` becomes a cross-checked round; everything else
/// delegates untouched.
struct CheckedCtx<'a> {
    inner: &'a mut dyn NodeContext,
    cfg: &'a CrossCheckConfig,
    state: &'a mut DefenseState,
}

impl CheckedCtx<'_> {
    /// One report deviates from the estimate beyond tolerance?
    fn conflicts(&self, report: u64, estimate: u64) -> bool {
        let spread = self.cfg.tolerance * estimate.max(1) as f64;
        (report.abs_diff(estimate)) as f64 > spread
    }

    /// Books one conflicting report against `reporter`; quarantines it
    /// at the threshold and tells the substrate when that happens.
    fn suspect(&mut self, reporter: Id) {
        let s = self.state.suspicion.entry(reporter).or_insert(0);
        *s += 1;
        let crossed = *s >= self.cfg.quarantine_after;
        let count = u64::from(*s);
        if crossed && self.state.quarantined.insert(reporter) {
            self.inner.note_quarantine(reporter, count);
        }
    }
}

impl LocalView for CheckedCtx<'_> {
    fn params(&self) -> StrategyParams {
        self.inner.params()
    }
    fn load(&self) -> u64 {
        self.inner.load()
    }
    fn sybil_count(&self) -> usize {
        self.inner.sybil_count()
    }
    fn sybil_slots_left(&self) -> u32 {
        self.inner.sybil_slots_left()
    }
    fn primary(&self) -> Id {
        self.inner.primary()
    }
    fn own_vnode_loads(&self) -> Vec<(Id, u64)> {
        self.inner.own_vnode_loads()
    }
    fn successor_list(&self) -> Vec<Id> {
        self.inner.successor_list()
    }
}

impl Actions for CheckedCtx<'_> {
    fn query_load(&mut self, neighbor: Id) -> Result<u64, ActionError> {
        if self.state.quarantined.contains(&neighbor) {
            // The strategy treats a quarantined reporter like a dead
            // one and routes its balancing elsewhere.
            return Err(ActionError::Unreachable);
        }
        // Direct answer first — the target speaks for itself …
        let direct = self.inner.query_load(neighbor);
        // … then up to `k` second opinions via distinct relays, walking
        // the successor list in its deterministic order.
        let relays: Vec<Id> = self
            .inner
            .successor_list()
            .into_iter()
            .filter(|r| *r != neighbor && !self.state.quarantined.contains(r))
            .take(self.cfg.k)
            .collect();
        let mut reports: Vec<(Id, u64)> = Vec::with_capacity(1 + relays.len());
        if let Ok(v) = direct {
            reports.push((neighbor, v));
        }
        for relay in relays {
            if let Ok(v) = self.inner.query_load_via(relay, neighbor) {
                reports.push((relay, v));
            }
        }
        if reports.is_empty() {
            // Nothing answered; surface the direct error (or a timeout
            // when only relays were tried and all failed).
            return Err(direct.err().unwrap_or(ActionError::TimedOut));
        }
        let mut values: Vec<u64> = reports.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        let estimate = values[(values.len() - 1) / 2];
        let mut agreed = true;
        for &(reporter, v) in &reports {
            if self.conflicts(v, estimate) {
                agreed = false;
                self.suspect(reporter);
            }
        }
        self.inner.note_probe(neighbor, agreed, estimate);
        Ok(estimate)
    }

    fn random_id(&mut self) -> Id {
        self.inner.random_id()
    }
    fn spawn_sybil(&mut self, pos: Id) -> Result<u64, ActionError> {
        self.inner.spawn_sybil(pos)
    }
    fn retire_sybils(&mut self) {
        self.inner.retire_sybils();
    }
    fn split_target(&mut self, victim: Id) -> Option<Id> {
        self.inner.split_target(victim)
    }
    fn invite(&mut self, hot: Id) -> super::InviteOutcome {
        self.inner.invite(hot)
    }
    fn note_gap_split(&mut self, pos: Id) {
        self.inner.note_gap_split(pos);
    }
    fn query_load_via(&mut self, relay: Id, target: Id) -> Result<u64, ActionError> {
        self.inner.query_load_via(relay, target)
    }
    fn note_probe(&mut self, target: Id, agreed: bool, estimate: u64) {
        self.inner.note_probe(target, agreed, estimate);
    }
    fn note_quarantine(&mut self, reporter: Id, suspicion: u64) {
        self.inner.note_quarantine(reporter, suspicion);
    }
}

#[cfg(test)]
mod tests {
    use super::super::InviteOutcome;
    use super::*;

    /// A scripted world: fixed successor list, per-id true loads, one
    /// id that lies when asked directly, honest relays. Records every
    /// billed probe and every telemetry hook.
    struct MockCtx {
        succs: Vec<Id>,
        loads: BTreeMap<Id, u64>,
        liar: Option<Id>,
        lie_value: u64,
        billed: u64,
        probes: Vec<(Id, bool, u64)>,
        quarantines: Vec<(Id, u64)>,
    }

    impl MockCtx {
        fn new(liar: Option<Id>, lie_value: u64) -> MockCtx {
            let succs: Vec<Id> = (1u64..=4).map(Id::from).collect();
            let loads = succs.iter().map(|&s| (s, 40u64)).collect();
            MockCtx {
                succs,
                loads,
                liar,
                lie_value,
                billed: 0,
                probes: Vec::new(),
                quarantines: Vec::new(),
            }
        }
    }

    impl LocalView for MockCtx {
        fn params(&self) -> StrategyParams {
            StrategyParams {
                sybil_threshold: 1,
                overload_threshold: 100,
                num_neighbors: 4,
                chosen_ids: false,
                strength_aware_invitation: false,
            }
        }
        fn load(&self) -> u64 {
            0
        }
        fn sybil_count(&self) -> usize {
            0
        }
        fn sybil_slots_left(&self) -> u32 {
            5
        }
        fn primary(&self) -> Id {
            Id::from(0u64)
        }
        fn own_vnode_loads(&self) -> Vec<(Id, u64)> {
            vec![(Id::from(0u64), 0)]
        }
        fn successor_list(&self) -> Vec<Id> {
            self.succs.clone()
        }
    }

    impl Actions for MockCtx {
        fn query_load(&mut self, neighbor: Id) -> Result<u64, ActionError> {
            self.billed += 1;
            if self.liar == Some(neighbor) {
                return Ok(self.lie_value);
            }
            self.loads
                .get(&neighbor)
                .copied()
                .ok_or(ActionError::Unreachable)
        }
        fn random_id(&mut self) -> Id {
            Id::from(99u64)
        }
        fn spawn_sybil(&mut self, _pos: Id) -> Result<u64, ActionError> {
            Ok(0)
        }
        fn retire_sybils(&mut self) {}
        fn split_target(&mut self, victim: Id) -> Option<Id> {
            Some(victim)
        }
        fn invite(&mut self, _hot: Id) -> InviteOutcome {
            InviteOutcome::NoNeighbors
        }
        fn query_load_via(&mut self, _relay: Id, target: Id) -> Result<u64, ActionError> {
            // Relays are honest in this mock: they report the truth.
            self.billed += 1;
            self.loads
                .get(&target)
                .copied()
                .ok_or(ActionError::Unreachable)
        }
        fn note_probe(&mut self, target: Id, agreed: bool, estimate: u64) {
            self.probes.push((target, agreed, estimate));
        }
        fn note_quarantine(&mut self, reporter: Id, suspicion: u64) {
            self.quarantines.push((reporter, suspicion));
        }
    }

    fn checked_query(
        ctx: &mut MockCtx,
        cfg: &CrossCheckConfig,
        state: &mut DefenseState,
        target: Id,
    ) -> Result<u64, ActionError> {
        let mut checked = CheckedCtx {
            inner: ctx,
            cfg,
            state,
        };
        checked.query_load(target)
    }

    #[test]
    fn median_overrides_a_lying_target() {
        let liar = Id::from(1u64);
        let mut ctx = MockCtx::new(Some(liar), 2); // true load 40, reports 2
        let cfg = CrossCheckConfig::with_budget(2);
        let mut state = DefenseState::default();
        let est = checked_query(&mut ctx, &cfg, &mut state, liar);
        // Reports: direct lie (2) + two honest relays (40, 40) → median 40.
        assert_eq!(est, Ok(40));
        assert_eq!(ctx.billed, 3, "one direct + k relayed probes billed");
        assert_eq!(state.suspicion.get(&liar), Some(&1));
        assert_eq!(ctx.probes, vec![(liar, false, 40)], "conflict recorded");
    }

    #[test]
    fn honest_rounds_agree_and_book_no_suspicion() {
        let target = Id::from(2u64);
        let mut ctx = MockCtx::new(None, 0);
        let cfg = CrossCheckConfig::with_budget(2);
        let mut state = DefenseState::default();
        assert_eq!(checked_query(&mut ctx, &cfg, &mut state, target), Ok(40));
        assert!(state.suspicion.is_empty());
        assert_eq!(ctx.probes, vec![(target, true, 40)]);
        assert!(ctx.quarantines.is_empty());
    }

    #[test]
    fn repeated_conflicts_escalate_to_quarantine() {
        let liar = Id::from(1u64);
        let mut ctx = MockCtx::new(Some(liar), 500);
        let cfg = CrossCheckConfig::with_budget(2);
        let mut state = DefenseState::default();
        for _ in 0..cfg.quarantine_after {
            assert_eq!(checked_query(&mut ctx, &cfg, &mut state, liar), Ok(40));
        }
        assert_eq!(
            ctx.quarantines,
            vec![(liar, u64::from(cfg.quarantine_after))]
        );
        // From now on the liar reads as unreachable and costs nothing.
        let billed = ctx.billed;
        assert_eq!(
            checked_query(&mut ctx, &cfg, &mut state, liar),
            Err(ActionError::Unreachable)
        );
        assert_eq!(ctx.billed, billed, "quarantined probes are free");
        // Honest targets still answer, and the quarantined id is
        // skipped as a relay.
        assert_eq!(
            checked_query(&mut ctx, &cfg, &mut state, Id::from(2u64)),
            Ok(40)
        );
    }

    #[test]
    fn wrapper_is_transparent_and_default_is_inert() {
        let cfg = CrossCheckConfig::default();
        assert!(!cfg.is_active());
        assert!(cfg.validate().is_ok());
        let inner = super::super::strategy_for(crate::config::StrategyKind::SmartNeighbor)
            .expect("smart neighbor exists");
        let name = inner.name();
        let same = wrap_if_enabled(inner, &cfg);
        assert_eq!(same.name(), name, "inert config returns inner untouched");

        let wrapped = wrap_if_enabled(same, &CrossCheckConfig::with_budget(2));
        assert_eq!(wrapped.name(), name, "decorator keeps the inner label");
        assert_eq!(wrapped.scope(), StrategyScope::PerNode);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(CrossCheckConfig {
            tolerance: -0.5,
            ..CrossCheckConfig::default()
        }
        .validate()
        .is_err());
        assert!(CrossCheckConfig {
            tolerance: f64::NAN,
            ..CrossCheckConfig::default()
        }
        .validate()
        .is_err());
        assert!(CrossCheckConfig {
            quarantine_after: 0,
            ..CrossCheckConfig::default()
        }
        .validate()
        .is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn config_roundtrips_through_serde_defaults() {
        let cfg = CrossCheckConfig::with_budget(3);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CrossCheckConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        let partial: CrossCheckConfig = serde_json::from_str(r#"{"k":2}"#).unwrap();
        assert_eq!(partial.k, 2);
        assert_eq!(partial.quarantine_after, 3);
        assert_eq!(partial.tolerance, 0.5);
    }
}
