//! A *centralized* comparator — not one of the paper's strategies.
//!
//! The paper motivates its work by rejecting centralized balancers
//! (single point of failure, §I/§II) but never quantifies what
//! centralization would buy. This strategy plays that role: an
//! omniscient coordinator that, on every check tick, pairs the globally
//! least-loaded eligible workers with the globally most-loaded virtual
//! nodes and splits those nodes at their task medians. It is the
//! best-case any Sybil-based balancer could approach, so the gap between
//! it and random injection measures the price of decentralization.
//!
//! Because it needs [`OracleView`] — the whole worker table and every
//! vnode's load — it dispatches with [`StrategyScope::Omniscient`] and
//! only runs on the oracle-ring substrate; a real Chord network cannot
//! (and must not) provide that view.

// autobal-lint: allow(strategy-locality, "the centralized comparator is the one sanctioned OracleView consumer")
use super::{OracleView, Strategy, StrategyScope};
use autobal_id::Id;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The centralized comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedOracle;

impl Strategy for CentralizedOracle {
    fn name(&self) -> &'static str {
        "centralized-oracle"
    }

    fn scope(&self) -> StrategyScope {
        StrategyScope::Omniscient
    }

    // autobal-lint: allow(strategy-locality, "omniscient dispatch is this strategy's documented role")
    fn check_global(&self, view: &mut dyn OracleView) {
        // Eligible helpers, least-loaded first.
        let mut helpers: Vec<usize> = (0..view.worker_count())
            .filter(|&i| view.is_worker_active(i))
            .collect();
        helpers.sort_unstable_by_key(|&i| view.worker_load(i));
        let helpers: Vec<usize> = helpers
            .into_iter()
            .filter(|&i| view.worker_can_spawn(i))
            .collect();
        if helpers.is_empty() {
            return;
        }

        // Global view of vnode loads (the coordinator's omniscience).
        let mut heap: BinaryHeap<(u64, Reverse<Id>)> = view
            .vnode_loads()
            .into_iter()
            .map(|(id, l)| (l, Reverse(id)))
            .collect();

        for helper in helpers {
            let Some((load, Reverse(victim))) = heap.pop() else {
                break;
            };
            if load < 2 {
                break; // nothing left worth splitting
            }
            // The heap entry may be stale (an earlier split shrank it);
            // use the live load.
            let live = view.vnode_load(victim);
            if live < 2 {
                continue;
            }
            let Some(pos) = view.median_task_key(victim) else {
                continue;
            };
            if let Some(acquired) = view.spawn_sybil_for(helper, pos) {
                heap.push((live - acquired, Reverse(victim)));
                heap.push((acquired, Reverse(pos)));
            } else {
                heap.push((live, Reverse(victim)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{SimConfig, StrategyKind};
    use crate::sim::Sim;

    fn cfg(strategy: StrategyKind) -> SimConfig {
        SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy,
            ..SimConfig::default()
        }
    }

    #[test]
    fn oracle_approaches_ideal() {
        let res = Sim::new(cfg(StrategyKind::CentralizedOracle), 1).run();
        assert!(res.completed);
        assert!(
            res.runtime_factor < 1.6,
            "oracle factor {}",
            res.runtime_factor
        );
    }

    #[test]
    fn oracle_is_at_least_as_good_as_random_injection() {
        let mut oracle_sum = 0.0;
        let mut random_sum = 0.0;
        for seed in 0..5 {
            oracle_sum += Sim::new(cfg(StrategyKind::CentralizedOracle), seed)
                .run()
                .runtime_factor;
            random_sum += Sim::new(cfg(StrategyKind::RandomInjection), seed)
                .run()
                .runtime_factor;
        }
        assert!(
            oracle_sum <= random_sum + 0.25,
            "oracle {oracle_sum} vs random {random_sum}"
        );
    }

    #[test]
    fn oracle_conserves_tasks() {
        let mut sim = Sim::new(cfg(StrategyKind::CentralizedOracle), 2);
        let mut consumed = 0;
        for _ in 0..60 {
            consumed += sim.step();
        }
        assert_eq!(sim.remaining_tasks() + consumed, 10_000);
        sim.ring().check_invariants().unwrap();
    }
}
