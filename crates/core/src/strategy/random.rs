//! §IV-B *Random Injection* — the paper's best-performing strategy.
//!
//! Every check tick, each underutilized node (load ≤ `sybilThreshold`)
//! with Sybil budget remaining creates **one** Sybil at a uniformly
//! random ring address. Because a random address lands in an arc with
//! probability proportional to the arc's length, Sybils preferentially
//! split exactly the over-long arcs that hold the most work — randomized
//! recursive bisection of the hot ranges.

use super::{NodeContext, Strategy};

/// The random-injection strategy, substrate-agnostic.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomInjection;

impl Strategy for RandomInjection {
    fn name(&self) -> &'static str {
        "random-injection"
    }

    fn check_node(&self, ctx: &mut dyn NodeContext) {
        // Stale Sybils quit and the node immediately hunts again with a
        // fresh (single) Sybil in the same decision.
        super::retire_if_idle(ctx);
        if !super::eligible_to_spawn(ctx) {
            return;
        }
        // One Sybil per decision; a rare address collision (or a join
        // lost to network faults) gets a few redraws before giving up
        // until the next check. Redrawing a fresh address on a network
        // failure doubles as the retry: the join routes via different
        // links, so a lossy patch does not pin the node down.
        for _ in 0..4 {
            let pos = ctx.random_id();
            if ctx.spawn_sybil(pos).is_ok() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Heterogeneity, SimConfig, StrategyKind};
    use crate::sim::Sim;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sybils_appear_once_nodes_go_idle() {
        let mut sim = Sim::new(cfg(), 1);
        for _ in 0..20 {
            sim.step();
        }
        assert!(
            sim.messages().sybils_created > 0,
            "idle nodes should have injected Sybils by tick 20"
        );
        // Ring grew beyond the initial 100 vnodes at some point.
        assert!(sim.ring().len() >= 100);
    }

    #[test]
    fn sybil_cap_respected() {
        let mut sim = Sim::new(cfg(), 2);
        for _ in 0..200 {
            sim.step();
            for w in sim.workers() {
                assert!(w.sybils.len() <= 5, "homogeneous cap is maxSybils=5");
            }
        }
    }

    #[test]
    fn heterogeneous_cap_is_strength() {
        let mut c = cfg();
        c.heterogeneity = Heterogeneity::Heterogeneous;
        let mut sim = Sim::new(c, 3);
        for _ in 0..200 {
            sim.step();
            for w in sim.workers() {
                assert!(
                    w.sybils.len() as u32 <= w.strength,
                    "het cap is the node's strength"
                );
            }
        }
    }

    #[test]
    fn beats_no_strategy_substantially() {
        let base = Sim::new(
            SimConfig {
                strategy: StrategyKind::None,
                ..cfg()
            },
            4,
        )
        .run();
        let ri = Sim::new(cfg(), 4).run();
        assert!(ri.completed);
        assert!(
            ri.runtime_factor < base.runtime_factor * 0.6,
            "random injection {} vs baseline {}",
            ri.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn approaches_ideal_runtime() {
        // Paper §VI-B: 1000 tasks/node networks reach factors ≤ 1.7; our
        // 100-task/node mini network should still land well under 3.
        let res = Sim::new(cfg(), 5).run();
        assert!(
            res.runtime_factor < 3.0,
            "runtime factor {}",
            res.runtime_factor
        );
    }

    #[test]
    fn tasks_conserved_through_injections() {
        let mut sim = Sim::new(cfg(), 6);
        let mut consumed = 0;
        for _ in 0..50 {
            consumed += sim.step();
        }
        assert_eq!(sim.remaining_tasks() + consumed, 10_000);
        sim.ring().check_invariants().unwrap();
    }

    #[test]
    fn idle_nodes_with_sybils_retire_them() {
        let res = Sim::new(cfg(), 7).run();
        // By completion everything is idle; retirements must have fired.
        assert!(res.messages.sybils_retired > 0);
    }
}
