//! §IV-D *Invitation* — the reactive strategy.
//!
//! Rather than idle nodes hunting for work (proactive), nodes that find
//! themselves **overburdened** announce for help to their predecessor
//! list. The predecessor with the least work — provided it is at or
//! below the `sybilThreshold` and has Sybil budget left — injects a
//! Sybil into the inviter's range, taking roughly half of its remaining
//! tasks. Invitations are refused when no predecessor qualifies.
//!
//! Overburdened: load > `overload_factor × tasks/nodes`. The paper says
//! nodes decide "using the sybilThreshold parameter" without a formula;
//! since nodes know the job size (§V), the ideal mean is locally
//! computable — see DESIGN.md for this substitution.
//!
//! The strategy itself only decides *when* to call for help and from
//! which of its vnodes; delivering the announcement, filtering eligible
//! predecessors, and performing the helper's join are substrate work
//! behind [`Actions::invite`]. The helper-selection rule both
//! substrates share is [`pick_helper`].

use super::{NodeContext, Strategy};
use crate::worker::WorkerId;

/// The invitation strategy, substrate-agnostic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Invitation;

impl Strategy for Invitation {
    fn name(&self) -> &'static str {
        "invitation"
    }

    fn check_node(&self, ctx: &mut dyn NodeContext) {
        if ctx.load() <= ctx.params().overload_threshold {
            return;
        }
        // The inviter's hottest virtual node is where help is needed.
        // Ties go to the later vnode (matching `Iterator::max_by_key`).
        let mut hot: Option<(autobal_id::Id, u64)> = None;
        for (v, l) in ctx.own_vnode_loads() {
            if hot.is_none_or(|(_, bl)| l >= bl) {
                hot = Some((v, l));
            }
        }
        match hot {
            Some((v, l)) if l > 0 => {
                // A lost announcement (InviteOutcome::Unreachable) needs
                // no special handling: the node is still overburdened
                // next check and re-announces then — invitation is
                // self-retrying by construction.
                let _ = ctx.invite(v);
            }
            _ => {}
        }
    }
}

/// One predecessor a substrate offers as a potential helper, already
/// filtered for eligibility (active, load ≤ sybilThreshold, Sybil
/// budget left, not the inviter), in predecessor-list order.
#[derive(Debug, Clone, Copy)]
pub struct HelperCandidate {
    pub worker: WorkerId,
    pub strength: u32,
    pub load: u64,
}

/// Selects the helping predecessor among eligible candidates. The
/// paper's rule is least-loaded-first; the §VII strength-aware
/// extension prefers the *strongest* eligible helper (ties broken by
/// least load) so work migrates toward capable machines.
pub fn pick_helper(candidates: &[HelperCandidate], strength_first: bool) -> Option<WorkerId> {
    let mut best: Option<(WorkerId, u32, u64)> = None;
    for c in candidates {
        let better = match best {
            None => true,
            Some((_, bs, bl)) => {
                if strength_first {
                    c.strength > bs || (c.strength == bs && c.load < bl)
                } else {
                    c.load < bl
                }
            }
        };
        if better {
            best = Some((c.worker, c.strength, c.load));
        }
    }
    best.map(|(w, _, _)| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, StrategyKind};
    use crate::sim::Sim;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy: StrategyKind::Invitation,
            ..SimConfig::default()
        }
    }

    #[test]
    fn invitations_fire_and_help() {
        let res = Sim::new(cfg(), 1).run();
        assert!(res.completed);
        assert!(res.messages.invitations_sent > 0);
        assert!(res.messages.sybils_created > 0);
    }

    #[test]
    fn beats_baseline() {
        let base = Sim::new(
            SimConfig {
                strategy: StrategyKind::None,
                ..cfg()
            },
            2,
        )
        .run();
        let inv = Sim::new(cfg(), 2).run();
        assert!(
            inv.runtime_factor < base.runtime_factor,
            "invitation {} vs baseline {}",
            inv.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn reactive_messaging_is_lighter_than_smart_neighbor() {
        // §VI-D: invitation "uses less bandwidth" than the proactive
        // query strategies.
        let inv = Sim::new(cfg(), 3).run();
        let smart = Sim::new(
            SimConfig {
                strategy: StrategyKind::SmartNeighbor,
                ..cfg()
            },
            3,
        )
        .run();
        let inv_msgs = inv.messages.invitations_sent + inv.messages.load_queries;
        let smart_msgs = smart.messages.invitations_sent + smart.messages.load_queries;
        assert!(
            inv_msgs < smart_msgs,
            "invitation messages {inv_msgs} vs smart neighbor {smart_msgs}"
        );
    }

    #[test]
    fn refusals_counted_when_helpers_are_busy() {
        // With a sky-high overload factor nothing is overburdened ⇒ no
        // invitations at all; with factor near zero everyone invites and
        // busy helpers refuse.
        let quiet = Sim::new(
            SimConfig {
                overload_factor: 1e9,
                ..cfg()
            },
            4,
        )
        .run();
        assert_eq!(quiet.messages.invitations_sent, 0);

        let noisy = Sim::new(
            SimConfig {
                overload_factor: 0.1,
                ..cfg()
            },
            4,
        )
        .run();
        assert!(noisy.messages.invitations_sent > 0);
        assert!(noisy.messages.invitations_refused > 0);
    }

    #[test]
    fn picks_least_loaded_helper() {
        let cands = [
            HelperCandidate {
                worker: 1,
                strength: 1,
                load: 5,
            },
            HelperCandidate {
                worker: 2,
                strength: 3,
                load: 2,
            },
            HelperCandidate {
                worker: 3,
                strength: 5,
                load: 4,
            },
        ];
        assert_eq!(pick_helper(&cands, false), Some(2));
        // Strength-aware prefers the strongest even if busier.
        assert_eq!(pick_helper(&cands, true), Some(3));
        assert_eq!(pick_helper(&[], false), None);
    }

    #[test]
    fn tasks_conserved() {
        let mut sim = Sim::new(cfg(), 5);
        let mut consumed = 0;
        for _ in 0..60 {
            consumed += sim.step();
        }
        assert_eq!(sim.remaining_tasks() + consumed, 10_000);
        sim.ring().check_invariants().unwrap();
    }
}
