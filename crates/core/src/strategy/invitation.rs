//! §IV-D *Invitation* — the reactive strategy.
//!
//! Rather than idle nodes hunting for work (proactive), nodes that find
//! themselves **overburdened** announce for help to their predecessor
//! list. The predecessor with the least work — provided it is at or
//! below the `sybilThreshold` and has Sybil budget left — injects a
//! Sybil into the inviter's range, taking roughly half of its remaining
//! tasks. Invitations are refused when no predecessor qualifies.
//!
//! Overburdened: load > `overload_factor × tasks/nodes`. The paper says
//! nodes decide "using the sybilThreshold parameter" without a formula;
//! since nodes know the job size (§V), the ideal mean is locally
//! computable — see DESIGN.md for this substitution.

use crate::sim::Sim;
use crate::worker::WorkerId;

/// Runs one invitation round over all workers.
pub(crate) fn act(sim: &mut Sim) {
    let overload = sim.cfg.overload_threshold();
    let k = sim.cfg.num_successors;
    for idx in 0..sim.workers.len() {
        if !sim.workers[idx].is_active() {
            continue;
        }
        if sim.workers[idx].load <= overload {
            continue;
        }
        // The inviter's hottest virtual node is where help is needed.
        let hot = match sim.workers[idx]
            .vnodes()
            .max_by_key(|&v| sim.ring.load(v))
        {
            Some(v) if sim.ring.load(v) > 0 => v,
            _ => continue,
        };
        let preds = sim.ring.predecessors(hot, k);
        if preds.is_empty() {
            continue;
        }
        sim.msgs.invitations_sent += 1;
        let tick = sim.tick();
        sim.events
            .push(crate::trace::SimEvent::InvitationSent { tick, worker: idx });
        match pick_helper(sim, idx, &preds) {
            Some(helper) => {
                let pos = super::split_position(sim, hot).expect("ring non-trivial");
                if sim.create_sybil(helper, pos).is_none() {
                    sim.msgs.invitations_refused += 1;
                    sim.events.push(crate::trace::SimEvent::InvitationRefused {
                        tick,
                        worker: idx,
                    });
                }
            }
            None => {
                sim.msgs.invitations_refused += 1;
                sim.events.push(crate::trace::SimEvent::InvitationRefused {
                    tick,
                    worker: idx,
                });
            }
        }
    }
}

/// Selects the helping predecessor among eligible workers (load ≤
/// sybilThreshold, budget remaining, not the inviter). The paper's rule
/// is least-loaded-first; the §VII strength-aware extension prefers the
/// *strongest* eligible helper (ties broken by least load) so work
/// migrates toward capable machines.
fn pick_helper(sim: &Sim, inviter: WorkerId, preds: &[autobal_id::Id]) -> Option<WorkerId> {
    let strength_first = sim.cfg.strength_aware_invitation;
    let mut best: Option<(WorkerId, u32, u64)> = None;
    for &p in preds {
        let owner = sim.ring.vnode(p)?.owner;
        if owner == inviter {
            continue;
        }
        if !super::can_spawn_sybil(sim, owner) {
            continue;
        }
        let load = sim.workers[owner].load;
        let strength = sim.workers[owner].strength;
        let better = match best {
            None => true,
            Some((_, bs, bl)) => {
                if strength_first {
                    strength > bs || (strength == bs && load < bl)
                } else {
                    load < bl
                }
            }
        };
        if better {
            best = Some((owner, strength, load));
        }
    }
    best.map(|(w, _, _)| w)
}

#[cfg(test)]
mod tests {
    use crate::config::{SimConfig, StrategyKind};
    use crate::sim::Sim;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy: StrategyKind::Invitation,
            ..SimConfig::default()
        }
    }

    #[test]
    fn invitations_fire_and_help() {
        let res = Sim::new(cfg(), 1).run();
        assert!(res.completed);
        assert!(res.messages.invitations_sent > 0);
        assert!(res.messages.sybils_created > 0);
    }

    #[test]
    fn beats_baseline() {
        let base = Sim::new(
            SimConfig {
                strategy: StrategyKind::None,
                ..cfg()
            },
            2,
        )
        .run();
        let inv = Sim::new(cfg(), 2).run();
        assert!(
            inv.runtime_factor < base.runtime_factor,
            "invitation {} vs baseline {}",
            inv.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn reactive_messaging_is_lighter_than_smart_neighbor() {
        // §VI-D: invitation "uses less bandwidth" than the proactive
        // query strategies.
        let inv = Sim::new(cfg(), 3).run();
        let smart = Sim::new(
            SimConfig {
                strategy: StrategyKind::SmartNeighbor,
                ..cfg()
            },
            3,
        )
        .run();
        let inv_msgs = inv.messages.invitations_sent + inv.messages.load_queries;
        let smart_msgs = smart.messages.invitations_sent + smart.messages.load_queries;
        assert!(
            inv_msgs < smart_msgs,
            "invitation messages {inv_msgs} vs smart neighbor {smart_msgs}"
        );
    }

    #[test]
    fn refusals_counted_when_helpers_are_busy() {
        // With a sky-high overload factor nothing is overburdened ⇒ no
        // invitations at all; with factor near zero everyone invites and
        // busy helpers refuse.
        let quiet = Sim::new(
            SimConfig {
                overload_factor: 1e9,
                ..cfg()
            },
            4,
        )
        .run();
        assert_eq!(quiet.messages.invitations_sent, 0);

        let noisy = Sim::new(
            SimConfig {
                overload_factor: 0.1,
                ..cfg()
            },
            4,
        )
        .run();
        assert!(noisy.messages.invitations_sent > 0);
        assert!(noisy.messages.invitations_refused > 0);
    }

    #[test]
    fn tasks_conserved() {
        let mut sim = Sim::new(cfg(), 5);
        let mut consumed = 0;
        for _ in 0..60 {
            consumed += sim.step();
        }
        assert_eq!(sim.remaining_tasks() + consumed, 10_000);
        sim.ring().check_invariants().unwrap();
    }
}
