//! The four autonomous load-balancing strategies of §IV (plus the smart
//! neighbor-injection variant of §VI-C).
//!
//! Induced churn is implemented inside the simulator's tick loop (it
//! fires every tick, not on the 5-tick check cadence); the Sybil-based
//! strategies live here. Each strategy is a free function over the
//! simulator state, invoked on check ticks.
//!
//! Random injection additionally applies the §IV-B housekeeping rule —
//! *"if a node has at least one Sybil, but no work, it has its Sybils
//! quit the network"* — so stale Sybils release their ring positions
//! (and budget) for a fresh attempt in the same decision. The paper
//! describes no such rule for neighbor injection or invitation, and
//! their §VI results (both can trail plain churn) are consistent with
//! nodes getting permanently stuck once their Sybil budget is spent;
//! we reproduce that behavior.

pub mod invitation;
pub mod neighbor;
pub mod oracle;
pub mod random;

use crate::config::Heterogeneity;
use crate::sim::Sim;
use crate::worker::WorkerId;
use autobal_id::{ring, Id};

/// Applies the "idle with Sybils → Sybils quit" rule. Returns `true` if
/// the worker retired Sybils this check (it then takes no further action
/// until the next check).
pub(crate) fn retire_if_idle(sim: &mut Sim, idx: WorkerId) -> bool {
    let w = &sim.workers[idx];
    if w.load == 0 && !w.sybils.is_empty() {
        sim.retire_sybils(idx);
        true
    } else {
        false
    }
}

/// Whether the worker is eligible to create a new Sybil right now:
/// at/below the Sybil threshold with budget to spare.
pub(crate) fn can_spawn_sybil(sim: &Sim, idx: WorkerId) -> bool {
    let het = sim.cfg.heterogeneity == Heterogeneity::Heterogeneous;
    let w = &sim.workers[idx];
    w.is_active()
        && w.load <= sim.cfg.sybil_threshold
        && w.sybil_slots_left(sim.cfg.max_sybils, het) > 0
}

/// Where to plant a Sybil that targets `victim`'s arc: the ID-space
/// midpoint of the arc by default, or — under the §VII chosen-ID
/// extension — the victim's remaining-task median, which guarantees the
/// Sybil acquires exactly half its work. Used by the strategies that
/// know their victim (smart neighbor, invitation); the plain neighbor
/// estimate never learns the victim's tasks, so it always uses the
/// midpoint.
pub(crate) fn split_position(sim: &Sim, victim: Id) -> Option<Id> {
    if sim.cfg.chosen_ids {
        if let Some(m) = sim.ring.median_task_key(victim) {
            return Some(m);
        }
    }
    let pred = sim.ring.predecessor_of(victim)?;
    Some(ring::midpoint(pred, victim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, StrategyKind};

    #[test]
    fn can_spawn_respects_threshold_and_budget() {
        let cfg = SimConfig {
            nodes: 10,
            tasks: 1000,
            sybil_threshold: 0,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg, 1);
        // Freshly placed nodes almost surely all have work; find one with
        // load > 0: not eligible.
        let busy = (0..10).find(|&i| sim.workers()[i].load > 0).unwrap();
        assert!(!can_spawn_sybil(&sim, busy));
        // Drain one worker to zero.
        let victim = busy;
        while sim.workers()[victim].load > 0 {
            let v = sim.workers()[victim].primary;
            sim.ring.pop_task(v);
            sim.workers[victim].load -= 1;
        }
        assert!(can_spawn_sybil(&sim, victim));
    }

    #[test]
    fn retire_if_idle_only_fires_with_sybils_and_no_work() {
        let cfg = SimConfig {
            nodes: 5,
            tasks: 100,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg, 2);
        assert!(!retire_if_idle(&mut sim, 0)); // has work, no sybils
        // Give worker 0 a sybil and drain it completely.
        let pos = autobal_id::Id::from(12345u64);
        sim.create_sybil(0, pos).unwrap();
        while sim.workers()[0].load > 0 {
            let vs: Vec<_> = sim.workers()[0].vnodes().collect();
            for v in vs {
                if sim.ring.pop_task(v) {
                    sim.workers[0].load -= 1;
                    break;
                }
            }
        }
        assert!(retire_if_idle(&mut sim, 0));
        assert!(sim.workers()[0].sybils.is_empty());
        assert_eq!(sim.messages().sybils_retired, 1);
    }
}
